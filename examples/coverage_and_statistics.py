#!/usr/bin/env python
"""Code-coverage facts and statistical comparison of the tools.

Two supporting claims of the paper, made tangible:

1. Section II: static analysis "may achieve 100% code coverage, being
   able to analyze all the possible execution paths" — the CFG substrate
   quantifies what that means for a plugin (functions, entry points the
   plugin never calls itself, acyclic path counts, dead code).
2. Section V: the tool ranking.  The paper reports point estimates; the
   statistics module adds bootstrap confidence intervals and McNemar
   paired tests showing the ranking is not a small-sample artifact.

Run:  python examples/coverage_and_statistics.py   (about a minute)
"""

from repro import PhpSafe, PixyLike, Plugin, RipsLike, build_corpus
from repro.core.review import coverage_summary
from repro.evaluation import (
    evaluate_version,
    pairwise_comparisons,
    tool_intervals,
)

PLUGIN = Plugin(
    name="event-list",
    version="0.9",
    files={
        "event-list.php": """<?php
function el_shortcode($atts) {
    $n = intval($atts['n']);
    if ($n < 1) { return ''; }
    el_render($n);
}
function el_render($n) {
    global $wpdb;
    $rows = $wpdb->get_results('SELECT * FROM wp_events LIMIT ' . $n);
    foreach ($rows as $row) {
        echo '<li>' . esc_html($row->title) . '</li>';
    }
}
function el_admin_hook() {
    // entry point WordPress calls; the plugin itself never does
    if ($_POST['action'] == 'purge') {
        echo 'purged ' . $_POST['count'] . ' events';
    } else {
        echo 'no action';
    }
    return;
    echo 'unreachable tail';  // dead code the CFG flags
}
""",
    },
)


def main() -> None:
    # --- 1. coverage facts (CFG substrate) ------------------------------
    summary = coverage_summary(PLUGIN)
    print("static-coverage facts for", PLUGIN.slug)
    for key, value in summary.items():
        print(f"  {key:28s} {value}")
    assert summary["entry_points_never_called"] >= 1  # el_admin_hook
    assert summary["dead_blocks"] >= 1  # the unreachable echo
    print()

    # --- 2. statistics over the corpus comparison ------------------------
    print("running the 2012 corpus comparison for the statistics...")
    corpus = build_corpus("2012", scale=0.02)
    evaluation = evaluate_version(corpus, [PhpSafe(), RipsLike(), PixyLike()])

    print("\nbootstrap 95% confidence intervals (paper convention):")
    for tool in ("phpSAFE", "RIPS", "Pixy"):
        intervals = tool_intervals(evaluation, tool)
        print(
            f"  {tool:8s} precision {str(intervals['precision']):24s} "
            f"recall {intervals['recall']}"
        )

    print("\nMcNemar paired tests over the confirmed-vulnerability union:")
    for comparison in pairwise_comparisons(evaluation, ("phpSAFE", "RIPS", "Pixy")):
        marker = "significant" if comparison.significant else "not significant"
        print(f"  {comparison}  -> {marker}")

    comparisons = {
        (c.tool_a, c.tool_b): c
        for c in pairwise_comparisons(evaluation, ("phpSAFE", "RIPS", "Pixy"))
    }
    assert comparisons[("phpSAFE", "RIPS")].significant
    assert comparisons[("phpSAFE", "Pixy")].significant
    print(
        "\nthe paper's ranking (phpSAFE > RIPS > Pixy) is statistically "
        "significant on the reproduced corpus."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Reproduce the paper's comparison (Table I) on a mini corpus.

Generates the calibrated synthetic corpus at a small noise scale (the
seeded vulnerability counts are scale-invariant), runs phpSAFE, the
RIPS-like and the Pixy-like baselines over all 35 plugins of both
versions, and prints Table I, Fig. 2 and Table III next to the paper's
published values.

Run:  python examples/tool_comparison.py            (about a minute)
      SCALE=0.25 python examples/tool_comparison.py (bigger corpus)
"""

import os

from repro import PhpSafe, PixyLike, RipsLike, build_both
from repro.evaluation import (
    compute_overlap,
    evaluate_both,
    render_fig2,
    render_robustness,
    render_table1,
    render_table3,
)


def main() -> None:
    scale = float(os.environ.get("SCALE", "0.05"))
    print(f"generating 2012 + 2014 corpora (noise scale {scale})...")
    older, newer = build_both(scale=scale)
    print(
        f"  2012: {older.total_files} files, {older.total_loc} LOC, "
        f"{older.truth.vulnerable_count()} seeded vulnerabilities"
    )
    print(
        f"  2014: {newer.total_files} files, {newer.total_loc} LOC, "
        f"{newer.truth.vulnerable_count()} seeded vulnerabilities\n"
    )

    print("running phpSAFE, RIPS-like and Pixy-like on all 70 plugins...")
    evaluations = evaluate_both(
        [older, newer], lambda: [PhpSafe(), RipsLike(), PixyLike()]
    )

    print()
    print(render_table1(evaluations))
    print()
    print(
        render_fig2(
            compute_overlap(evaluations["2012"]),
            compute_overlap(evaluations["2014"]),
        )
    )
    print()
    print(render_table3(evaluations))
    print()
    print(render_robustness(evaluations))

    # the paper's headline: phpSAFE clearly outperforms the other tools
    for version in ("2012", "2014"):
        evaluation = evaluations[version]
        ps = evaluation.confusion("phpSAFE")
        rips = evaluation.confusion("RIPS")
        pixy = evaluation.confusion("Pixy")
        assert ps.tp > rips.tp > pixy.tp
        assert ps.f_score > rips.f_score > pixy.f_score
    print("\nranking confirmed: phpSAFE > RIPS > Pixy on TP and F-score")


if __name__ == "__main__":
    main()

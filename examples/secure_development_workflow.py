#!/usr/bin/env python
"""The full secure-development workflow the paper envisions.

Section III: "the use of phpSAFE can be part of the software development
lifecycle of a company"; Section VI: developers "may use it for
approving third-party plugins before allowing their integration" and
the tool should track "the evolution of plugin security ... over time".

This example chains every stage on a plugin that evolves over three
releases:

1. **scan** each release statically (phpSAFE),
2. **confirm** the findings dynamically (simulated attack runtime),
3. **record** the scan in the history store and diff against the
   previous release (new / fixed / persistent findings),
4. **gate** the release with the approval policy,
5. for the final release, **auto-fix** the remaining flaw and show the
   patched version finally passing the gate.

Run:  python examples/secure_development_workflow.py
"""

from repro import PhpSafe, Plugin
from repro.core.autofix import apply_fixes
from repro.dynamic import confirm_findings
from repro.history import ApprovalPolicy, HistoryStore

RELEASES = {
    # v1.0: two flaws
    "1.0": """<?php
echo '<h2>' . $_GET['title'] . '</h2>';
$wpdb->query("DELETE FROM notes WHERE id = " . $_GET['id']);
""",
    # v1.1: the SQLi is fixed (prepare), the XSS persists, nothing new
    "1.1": """<?php
echo '<h2>' . $_GET['title'] . '</h2>';
$wpdb->query($wpdb->prepare("DELETE FROM notes WHERE id = %d", $_GET['id']));
""",
    # v1.2: the XSS persists AND a new stored XSS is introduced
    "1.2": """<?php
echo '<h2>' . $_GET['title'] . '</h2>';
$wpdb->query($wpdb->prepare("DELETE FROM notes WHERE id = %d", $_GET['id']));
$rows = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "notes");
foreach ($rows as $row) { echo '<li>' . $row->body . '</li>'; }
""",
}

SCAN_DATES = {"1.0": "2012-11-01", "1.1": "2013-11-01", "1.2": "2014-11-01"}


def main() -> None:
    tool = PhpSafe()
    store = HistoryStore()
    policy = ApprovalPolicy()

    previous_record = None
    for version, source in RELEASES.items():
        plugin = Plugin(name="notes-widget", version=version,
                        files={"notes-widget.php": source})
        report = tool.analyze(plugin)
        verdicts = confirm_findings(plugin, report.findings)
        confirmed = sum(1 for verdict in verdicts if verdict.confirmed)
        record = store.record(report, version=version,
                              scanned_at=SCAN_DATES[version])

        print(f"=== notes-widget {version} ({SCAN_DATES[version]}) ===")
        print(f"  static findings: {len(report.findings)}, "
              f"dynamically confirmed: {confirmed}")
        diff = store.diff_latest("notes-widget")
        if diff is not None:
            print(f"  vs previous: {diff.summary()}")
        decision = policy.evaluate(record, previous=previous_record)
        print(f"  gate: {decision}")
        print()
        previous_record = record

    evolution = store.evolution("notes-widget")
    print("evolution:", " → ".join(f"v{v}:{n}" for v, n in evolution))

    # the persistent XSS (the paper's Section V.D inertia, in miniature)
    final_diff = store.diff_latest("notes-widget")
    assert final_diff is not None
    assert final_diff.persistent, "the reflected XSS was never fixed"

    # --- auto-remediate the final release and re-gate --------------------
    print("\nauto-fixing release 1.2 ...")
    plugin = Plugin(name="notes-widget", version="1.2-patched",
                    files={"notes-widget.php": RELEASES["1.2"]})
    report = tool.analyze(plugin)
    patched, proposals = apply_fixes(plugin, report.findings)
    for proposal in proposals:
        print(f"  {proposal.description}")
    patched_report = tool.analyze(patched)
    record = store.record(patched_report, version="1.2-patched",
                          scanned_at="2014-11-02")
    decision = policy.evaluate(record)
    print(f"  re-gate: {decision}")
    assert decision.approved
    print("\npatched release passes the integration gate.")


if __name__ == "__main__":
    main()

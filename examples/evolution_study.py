#!/usr/bin/env python
"""Plugin-security evolution over two years (paper Sections V.B–V.D).

Generates both corpus snapshots, runs the three tools, and reports:
the growth in distinct vulnerabilities (+~50%), the Table II root-cause
breakdown, and the fix-inertia numbers — how many 2014 vulnerabilities
were already disclosed to developers in the 2012 round.

Run:  python examples/evolution_study.py
"""

from repro import PhpSafe, PixyLike, RipsLike, build_both
from repro.evaluation import (
    analyze_inertia,
    both_versions_breakdown,
    compute_overlap,
    evaluate_both,
    render_inertia,
    render_table2,
    tier_shares,
    vector_breakdown,
)


def main() -> None:
    older, newer = build_both(scale=0.05)
    evaluations = evaluate_both(
        [older, newer], lambda: [PhpSafe(), RipsLike(), PixyLike()]
    )
    eval12, eval14 = evaluations["2012"], evaluations["2014"]

    # --- growth (Section V.B) ------------------------------------------
    overlap12 = compute_overlap(eval12)
    overlap14 = compute_overlap(eval14)
    growth = (overlap14.union_total - overlap12.union_total) / overlap12.union_total
    print(
        f"distinct vulnerabilities: {overlap12.union_total} (2012) -> "
        f"{overlap14.union_total} (2014), {growth:+.0%} "
        "(paper: 394 -> 586, +51%)\n"
    )

    # --- root causes (Section V.C / Table II) ---------------------------
    breakdown12 = vector_breakdown(eval12)
    breakdown14 = vector_breakdown(eval14)
    both = both_versions_breakdown(eval12, eval14)
    print(render_table2(breakdown12, breakdown14, both))
    shares = tier_shares(breakdown14)
    print(
        f"\nexploitability tiers 2014: {shares[1]:.0%} directly "
        f"attacker-controlled, {shares[2]:.0%} via the database, "
        f"{shares[3]:.0%} files/functions/arrays"
        "  (paper: 36% / 62% / 1.8%)\n"
    )

    # --- fix inertia (Section V.D) ---------------------------------------
    inertia = analyze_inertia(eval12, eval14)
    print(render_inertia(inertia))

    assert growth > 0.4
    assert shares[2] > shares[1] > shares[3]  # DB dominates
    assert inertia.carried_share > 0.3
    print(
        "\nconclusion (as in the paper): plugin vulnerability counts grew "
        "~50% in two years,\nthe database is the dominant attack vector, "
        "and ~40% of known vulnerabilities\nremained unfixed a year after "
        "disclosure."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Extend phpSAFE to another CMS — the paper's Section III.A/VI claim.

"this ability can be easily extended to other CMSs, by adding their
input, filtering and sink functions to the configuration files" — the
paper names Drupal and Joomla as future work.  This example builds a
Drupal-7-style profile (its database API, sanitizers and known global
objects) and shows phpSAFE finding flows a WordPress-only configuration
would miss.

Run:  python examples/custom_cms_profile.py
"""

from repro import PhpSafe, generic_php
from repro.config import (
    FilterSpec,
    InputVector,
    KnownInstance,
    SinkSpec,
    SourceSpec,
    VulnKind,
)
from repro.core import PhpSafeOptions

DRUPAL_MODULE = """<?php
// a Drupal-style module: hook functions called by core, not the module
function mymodule_page() {
    // db_query results are user-writable content (DB vector)
    $result = db_query('SELECT title FROM {node}');
    $row = db_fetch_object($result);
    echo '<h1>' . $row->title . '</h1>';
}

function mymodule_safe_page() {
    // Drupal's own sanitizer: no false alarm once the profile knows it
    echo '<p>' . check_plain($_GET['q']) . '</p>';
}

function mymodule_search() {
    // SQLi through Drupal's (D6-era) unparameterized query API
    db_query("SELECT * FROM {node} WHERE title = '" . $_GET['term'] . "'");
}
"""


def drupal_profile():
    """Generic PHP knowledge + Drupal API entries."""
    xss_only = frozenset({VulnKind.XSS})
    sqli_only = frozenset({VulnKind.SQLI})
    return generic_php("drupal-base").extended(
        "drupal",
        sources=[
            SourceSpec("db_query", InputVector.DB),
            SourceSpec("db_fetch_object", InputVector.DB),
            SourceSpec("db_fetch_array", InputVector.DB),
            SourceSpec("db_result", InputVector.DB),
            SourceSpec("variable_get", InputVector.DB),
        ],
        filters=[
            FilterSpec("check_plain", xss_only),
            FilterSpec("check_markup", xss_only),
            FilterSpec("filter_xss", xss_only),
            FilterSpec("db_escape_string", sqli_only),
        ],
        sinks=[
            SinkSpec("db_query", VulnKind.SQLI, tainted_args=(0,)),
            SinkSpec("drupal_set_message", VulnKind.XSS, tainted_args=(0,)),
        ],
        instances=[KnownInstance("user", "stdClass", "the global $user object")],
    )


def main() -> None:
    wordpress_tool = PhpSafe()  # default WordPress profile
    drupal_tool = PhpSafe(profile=drupal_profile())

    for label, tool in (("WordPress profile", wordpress_tool),
                        ("Drupal profile", drupal_tool)):
        report = tool.analyze_source(DRUPAL_MODULE, filename="mymodule.module.php")
        kinds = sorted(f.kind.value for f in report.findings)
        print(f"{label:18s} -> {len(report.findings)} finding(s): {kinds}")
        for finding in report.findings:
            print(f"    {finding.describe()}")
        print()

    drupal_report = drupal_tool.analyze_source(DRUPAL_MODULE)
    wp_report = wordpress_tool.analyze_source(DRUPAL_MODULE)
    # the Drupal profile sees the db_query source/sink pair the
    # WordPress profile cannot, without false-alarming on check_plain
    assert len(drupal_report.findings) > len(wp_report.findings)
    assert sorted(f.kind.value for f in drupal_report.findings) == ["sqli", "xss"]
    print("the Drupal profile finds the stored XSS and the SQLi,")
    print("and stays silent on the check_plain()-escaped echo")

    # profiles also compose with the feature flags (ablation knobs)
    no_uncalled = PhpSafe(
        profile=drupal_profile(), options=PhpSafeOptions(analyze_uncalled=False)
    )
    report = no_uncalled.analyze_source(DRUPAL_MODULE)
    assert not report.findings  # all flows live in hook functions
    print("(and with analyze_uncalled=False every hook-borne flow is missed)")


if __name__ == "__main__":
    main()

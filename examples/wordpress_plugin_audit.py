#!/usr/bin/env python
"""Audit a multi-file OOP WordPress plugin — the paper's core use case.

Builds a small plugin the way real ones are structured (main file +
includes + a class), audits it with phpSAFE, and prints a review report
with the resources Section III.D describes: per-finding flow traces and
the vulnerable-variable summary a security reviewer works from.

Run:  python examples/wordpress_plugin_audit.py
"""

from collections import Counter

from repro import PhpSafe, Plugin

MAIN = """<?php
/*
Plugin Name: Mail Subscribe List (audit demo)
Version: 2.1.1
*/
require_once(dirname(__FILE__) . '/includes/class-subscriber-table.php');
require_once(dirname(__FILE__) . '/includes/admin-page.php');

function sml_shortcode($atts) {
    $table = new Subscriber_Table();
    $table->load();
    $table->render();
}
"""

CLASS_FILE = """<?php
class Subscriber_Table {
    public $rows = array();

    public function load() {
        global $wpdb;
        // subscriber rows are written by *other users* — tainted (DB)
        $this->rows = $wpdb->get_results(
            "SELECT * FROM " . $wpdb->prefix . "sml ORDER BY id");
    }

    public function render() {
        foreach ($this->rows as $row) {
            // stored XSS: the paper's mail-subscribe-list vulnerability
            echo '<td>' . $row->sml_name . '</td>';
        }
    }
}
"""

ADMIN_FILE = """<?php
// admin hook: never called from plugin code, called by WordPress core.
// phpSAFE analyzes it anyway (Section III.C, 100% coverage).
function sml_admin_delete() {
    global $wpdb;
    // SQL injection: id is concatenated, not prepared
    $wpdb->query("DELETE FROM subscribers WHERE id = " . $_GET['id']);
}

function sml_admin_notice() {
    // safe: WordPress escaping API
    echo '<div class="updated">' . esc_html($_GET['msg']) . '</div>';
}
"""


def main() -> None:
    plugin = Plugin(
        name="mail-subscribe-list",
        version="2.1.1",
        files={
            "mail-subscribe-list.php": MAIN,
            "includes/class-subscriber-table.php": CLASS_FILE,
            "includes/admin-page.php": ADMIN_FILE,
        },
    )

    report = PhpSafe().analyze_timed(plugin)

    print(f"audit of {plugin.slug}")
    print(f"  files: {report.files_analyzed}, LOC: {report.loc_analyzed}, "
          f"time: {report.seconds * 1000:.1f} ms\n")

    by_kind = Counter(finding.kind.value for finding in report.findings)
    print(f"findings: {dict(by_kind)}\n")
    for finding in report.findings:
        marker = "OOP " if finding.via_oop else "    "
        print(f"  [{marker}] {finding.describe()}")
        for step in finding.trace:
            print(f"          {step}")
        print()

    print("reviewer fix hints:")
    for finding in report.findings:
        if finding.kind.value == "xss":
            print(f"  - {finding.file}:{finding.line}: wrap the output in "
                  "esc_html()/esc_attr()")
        else:
            print(f"  - {finding.file}:{finding.line}: use $wpdb->prepare() "
                  "with placeholders")

    # the stored XSS (OOP property flow) and the SQLi hook are found;
    # the esc_html()-protected notice is not flagged
    assert by_kind == {"xss": 1, "sqli": 1}, by_kind
    assert all("admin-page.php" != f.file or f.kind.value == "sqli"
               for f in report.findings)
    print("\naudit complete: 1 stored XSS (OOP) + 1 SQLi, 0 false alarms")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: scan PHP source for XSS and SQL injection with phpSAFE.

Run:  python examples/quickstart.py
"""

from repro import PhpSafe

PLUGIN_SOURCE = """<?php
/*
Plugin Name: Greeting Widget
*/

// 1. a reflected XSS: request data straight into the page
$name = $_GET['visitor'];
echo '<h2>Hello ' . $name . '!</h2>';

// 2. properly escaped output: phpSAFE stays silent
echo '<p>' . htmlentities($_GET['tagline']) . '</p>';

// 3. a SQL injection through the WordPress database object
$wpdb->query("UPDATE visits SET n = n + 1 WHERE page = '" . $_GET['page'] . "'");

// 4. a stored XSS via the database (the paper's dominant vector):
//    rows written by other users are echoed without escaping
$rows = $wpdb->get_results("SELECT * FROM " . $wpdb->prefix . "guestbook");
foreach ($rows as $row) {
    echo '<li>' . $row->message . '</li>';
}
"""


def main() -> None:
    tool = PhpSafe()  # out-of-the-box WordPress profile (paper Section III.A)
    report = tool.analyze_source(PLUGIN_SOURCE, filename="greeting-widget.php")

    print(f"analyzed {report.loc_analyzed} LOC, {len(report.findings)} finding(s):\n")
    for finding in report.findings:
        print(f"  {finding.describe()}")
        for step in finding.trace:
            print(f"      via {step}")
        print()

    # the flows phpSAFE found: reflected XSS (1), SQLi (3) and stored
    # XSS through $wpdb (4); the escaped echo (2) is correctly silent
    kinds = sorted(finding.kind.value for finding in report.findings)
    assert kinds == ["sqli", "xss", "xss"], kinds
    print("as expected: 2 XSS + 1 SQLi, and no false alarm on the escaped echo")


if __name__ == "__main__":
    main()

"""phpSAFE reproduction — static security analysis of OOP PHP plugins.

Reproduction of *phpSAFE: A Security Analysis Tool for OOP Web
Application Plugins* (Nunes, Fonseca, Vieira — DSN 2015): a PHP
lexer/parser substrate, the phpSAFE taint analyzer, RIPS-like and
Pixy-like baselines, a calibrated synthetic WordPress-plugin corpus,
and the full evaluation harness for the paper's tables and figures.

Quickstart::

    from repro import PhpSafe

    report = PhpSafe().analyze_source("<?php echo $_GET['q'];")
    for finding in report.findings:
        print(finding.describe())
"""

from .baselines import PixyLike, RipsLike
from .batch import BatchScanner, DiskModelCache, ScanTelemetry, ToolSpec, scan_corpus
from .config import AnalyzerProfile, InputVector, VulnKind, generic_php, wordpress
from .core import Finding, PhpSafe, PhpSafeOptions, ToolReport
from .corpus import GeneratedCorpus, build_both, build_corpus
from .dynamic import ExploitConfirmer, confirm_findings
from .history import ApprovalPolicy, HistoryStore, ScanRecord
from .evaluation import evaluate_version
from .plugin import Plugin

__version__ = "1.0.0"

__all__ = [
    "AnalyzerProfile",
    "ApprovalPolicy",
    "BatchScanner",
    "DiskModelCache",
    "ScanTelemetry",
    "ToolSpec",
    "scan_corpus",
    "ExploitConfirmer",
    "Finding",
    "GeneratedCorpus",
    "HistoryStore",
    "InputVector",
    "PhpSafe",
    "PhpSafeOptions",
    "PixyLike",
    "Plugin",
    "RipsLike",
    "ScanRecord",
    "ToolReport",
    "VulnKind",
    "build_both",
    "confirm_findings",
    "build_corpus",
    "evaluate_version",
    "generic_php",
    "wordpress",
    "__version__",
]

"""Typed shapes for rule packs: the parsed document and its errors.

A :class:`RulePack` is the validated in-memory form of a pack file.  It
deliberately stores *plain data* (strings, ints) rather than compiled
:mod:`repro.config` specs: compilation against a base profile — kind
interning, ``"*"`` widening, collision merging — happens in
:mod:`repro.rules.compiler`, so a pack can be loaded, listed and
validated without touching the analyzer at all.

Malformed packs never raise bare exceptions out of the loader: every
problem becomes a :class:`PackIssue`, and :class:`PackError` carries the
full list plus a conversion to the repo-wide typed
:class:`~repro.incidents.Incident` taxonomy (stage ``rules``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..incidents import Incident, IncidentSeverity, IncidentStage


@dataclass(frozen=True)
class PackIssue:
    """One validation problem in a pack document."""

    path: str  #: pack file path (or "<data>" for in-memory documents)
    where: str  #: JSON-pointer-ish location, e.g. ``sinks[2].kind``
    message: str

    def describe(self) -> str:
        return f"{self.path}: {self.where}: {self.message}"

    def to_incident(self) -> Incident:
        return Incident(
            stage=IncidentStage.RULES,
            severity=IncidentSeverity.ERROR,
            file=self.path,
            reason=f"{self.where}: {self.message}",
            recovered=False,
        )


class PackError(Exception):
    """A pack failed to load or validate.

    Carries every issue found (not just the first), so ``rules
    validate`` can report them all in one pass.
    """

    def __init__(self, issues: List[PackIssue]) -> None:
        self.issues = list(issues)
        super().__init__(
            "; ".join(issue.describe() for issue in self.issues) or "invalid rule pack"
        )

    def to_incidents(self) -> List[Incident]:
        return [issue.to_incident() for issue in self.issues]


@dataclass(frozen=True)
class KindDecl:
    """A vulnerability kind a pack introduces (or documents)."""

    value: str
    title: str = ""
    description: str = ""


@dataclass(frozen=True)
class SourceDecl:
    name: str
    vector: str = "Function"
    kinds: Tuple[str, ...] = ("*",)
    class_name: Optional[str] = None
    superglobal: bool = False
    description: str = ""


@dataclass(frozen=True)
class SinkDecl:
    name: str
    kind: str = ""
    class_name: Optional[str] = None
    args: Optional[Tuple[int, ...]] = None
    description: str = ""


@dataclass(frozen=True)
class FilterDecl:
    name: str
    kinds: Tuple[str, ...] = ()
    class_name: Optional[str] = None
    description: str = ""


@dataclass(frozen=True)
class RevertDecl:
    name: str
    kinds: Tuple[str, ...] = ("*",)
    description: str = ""


@dataclass(frozen=True)
class PropagationDecl:
    name: str
    kinds: Tuple[str, ...] = ("*",)
    args: Optional[Tuple[int, ...]] = None
    class_name: Optional[str] = None
    description: str = ""


@dataclass(frozen=True)
class RulePack:
    """A validated rule pack document."""

    name: str
    version: str
    path: str
    #: 16-hex-char sha256 of the raw file bytes: *any* content edit —
    #: even one that parses identically — yields a new identity, which
    #: is exactly the conservative invalidation cache keys want.
    content_hash: str
    title: str = ""
    description: str = ""
    kinds: Tuple[KindDecl, ...] = ()
    sources: Tuple[SourceDecl, ...] = ()
    sinks: Tuple[SinkDecl, ...] = ()
    filters: Tuple[FilterDecl, ...] = ()
    reverts: Tuple[RevertDecl, ...] = ()
    propagation: Tuple[PropagationDecl, ...] = field(default=())

    @property
    def pack_id(self) -> Tuple[str, str, str]:
        """Identity tuple recorded on compiled profiles — the piece of a
        pack that reaches ``AnalyzerProfile.fingerprint()``."""
        return (self.name, self.version, self.content_hash)

    def entry_counts(self) -> dict:
        return {
            "kinds": len(self.kinds),
            "sources": len(self.sources),
            "sinks": len(self.sinks),
            "filters": len(self.filters),
            "reverts": len(self.reverts),
            "propagation": len(self.propagation),
        }

"""Compile validated rule packs into :class:`AnalyzerProfile` form.

The load→compile→fingerprint flow:

1. **load** (:mod:`repro.rules.loader`): parse + validate the pack file,
   hash its raw bytes into a 16-hex content hash.
2. **compile** (this module): intern the pack's kinds into the open
   :class:`VulnKind` registry, widen the base profile's ``ALL_KINDS``
   entries to the new kind universe (so ``$_GET`` carries SSRF taint
   once an SSRF pack is loaded), merge collision entries (a pack adding
   a ``traversal`` kind to ``basename`` unions with the builtin LFI
   filter instead of shadowing it), and append the pack's own specs.
3. **fingerprint**: the compiled profile records each pack's
   ``(name, version, content_hash)``; ``AnalyzerProfile.fingerprint()``
   folds those in, so summary/IR/disk cache keys and the service
   analyzer fingerprint all shift whenever pack content shifts.

``resolve_profile`` is the single entry point both ``PhpSafe`` and the
service fingerprint use, so an analyzer and the cache keys protecting
its results can never disagree about what was loaded.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..config.entries import (
    FilterSpec,
    PropagationSpec,
    RevertSpec,
    SinkSpec,
    SourceSpec,
)
from ..config.profiles import (
    AnalyzerProfile,
    drupal,
    generic_php,
    joomla,
    pixy_2007,
    wordpress,
)
from ..config.vulnerability import ALL_KINDS, InputVector, VulnKind
from .loader import load_pack
from .model import PackError, PackIssue, RulePack

#: Named base profiles selectable via ``--profile`` (CLI and service).
BASE_PROFILES = {
    "wordpress": wordpress,
    "drupal": drupal,
    "joomla": joomla,
    "generic": generic_php,
    "generic-php": generic_php,
    "pixy-2007": pixy_2007,
}


def base_profile(name: str) -> AnalyzerProfile:
    """Build the named base profile, or raise a typed :class:`PackError`."""
    try:
        factory = BASE_PROFILES[name]
    except KeyError:
        raise PackError(
            [
                PackIssue(
                    name,
                    "<profile>",
                    "unknown profile; expected one of "
                    + ", ".join(sorted(BASE_PROFILES)),
                )
            ]
        ) from None
    return factory()


def compile_packs(
    base: AnalyzerProfile, packs: Sequence[RulePack]
) -> AnalyzerProfile:
    """Layer ``packs`` onto ``base``, returning a new profile."""
    if not packs:
        return base

    # 1. intern the packs' kinds (metadata lands on the registry, where
    # the SARIF exporter picks it up; identity is value-only)
    extra_kinds: List[VulnKind] = []
    for pack in packs:
        for decl in pack.kinds:
            kind = VulnKind.register(decl.value, decl.title, decl.description)
            if kind not in ALL_KINDS and kind not in extra_kinds:
                extra_kinds.append(kind)
    universe = (
        ALL_KINDS if not extra_kinds else frozenset(ALL_KINDS | set(extra_kinds))
    )

    def expand(kind_values: Tuple[str, ...]) -> frozenset:
        if "*" in kind_values:
            return universe
        return frozenset(VulnKind(value) for value in kind_values)

    # 2. widen: base entries declared over the full builtin set meant
    # "every kind there is" — keep that meaning under the larger universe
    sources = list(base.sources)
    filters = list(base.filters)
    reverts = list(base.reverts)
    sinks = list(base.sinks)
    propagation = list(base.propagation)
    if extra_kinds:
        sources = [
            replace(spec, kinds=universe) if spec.kinds == ALL_KINDS else spec
            for spec in sources
        ]
        filters = [
            replace(spec, kinds=universe) if spec.kinds == ALL_KINDS else spec
            for spec in filters
        ]
        reverts = [
            replace(spec, kinds=universe) if spec.kinds == ALL_KINDS else spec
            for spec in reverts
        ]
        propagation = [
            replace(spec, kinds=universe) if spec.kinds == ALL_KINDS else spec
            for spec in propagation
        ]

    def source_key(spec: SourceSpec) -> Tuple[str, str, bool]:
        return (
            (spec.class_name or "").lower(),
            spec.name.lower(),
            spec.is_superglobal,
        )

    def name_key(spec) -> Tuple[str, str]:
        return ((getattr(spec, "class_name", None) or "").lower(), spec.name.lower())

    source_index: Dict[Tuple[str, str, bool], int] = {
        source_key(spec): index for index, spec in enumerate(sources)
    }
    filter_index: Dict[Tuple[str, str], int] = {
        name_key(spec): index for index, spec in enumerate(filters)
    }
    revert_index: Dict[str, int] = {
        spec.name.lower(): index for index, spec in enumerate(reverts)
    }
    propagation_index: Dict[Tuple[str, str], int] = {
        name_key(spec): index for index, spec in enumerate(propagation)
    }
    sink_identities = {
        (name_key(spec), spec.kind) for spec in sinks
    }

    # 3. merge each pack's entries; collisions union kinds rather than
    # shadowing, so a pack can *extend* a builtin filter or source
    for pack in packs:
        for decl in pack.sources:
            kinds = expand(decl.kinds)
            key = ((decl.class_name or "").lower(), decl.name.lower(), decl.superglobal)
            at = source_index.get(key)
            if at is not None:
                existing = sources[at]
                sources[at] = replace(existing, kinds=existing.kinds | kinds)
                continue
            spec = SourceSpec(
                name=decl.name,
                vector=InputVector(decl.vector),
                kinds=kinds,
                class_name=decl.class_name,
                is_superglobal=decl.superglobal,
                description=decl.description,
            )
            source_index[key] = len(sources)
            sources.append(spec)
        for decl in pack.sinks:
            kind = VulnKind(decl.kind)
            identity = (((decl.class_name or "").lower(), decl.name.lower()), kind)
            if identity in sink_identities:
                continue  # base already sinks this name for this kind
            sink_identities.add(identity)
            sinks.append(
                SinkSpec(
                    name=decl.name,
                    kind=kind,
                    class_name=decl.class_name,
                    tainted_args=decl.args,
                    description=decl.description,
                )
            )
        for decl in pack.filters:
            kinds = expand(decl.kinds)
            key = ((decl.class_name or "").lower(), decl.name.lower())
            at = filter_index.get(key)
            if at is not None:
                existing = filters[at]
                filters[at] = replace(existing, kinds=existing.kinds | kinds)
                continue
            filter_index[key] = len(filters)
            filters.append(
                FilterSpec(
                    name=decl.name,
                    kinds=kinds,
                    class_name=decl.class_name,
                    description=decl.description,
                )
            )
        for decl in pack.reverts:
            kinds = expand(decl.kinds)
            at = revert_index.get(decl.name.lower())
            if at is not None:
                existing = reverts[at]
                reverts[at] = replace(existing, kinds=existing.kinds | kinds)
                continue
            revert_index[decl.name.lower()] = len(reverts)
            reverts.append(
                RevertSpec(
                    name=decl.name, kinds=kinds, description=decl.description
                )
            )
        for decl in pack.propagation:
            kinds = expand(decl.kinds)
            key = ((decl.class_name or "").lower(), decl.name.lower())
            at = propagation_index.get(key)
            if at is not None:
                existing = propagation[at]
                propagation[at] = replace(existing, kinds=existing.kinds | kinds)
                continue
            propagation_index[key] = len(propagation)
            propagation.append(
                PropagationSpec(
                    name=decl.name,
                    kinds=kinds,
                    arg_indices=decl.args,
                    class_name=decl.class_name,
                    description=decl.description,
                )
            )

    return AnalyzerProfile(
        name=base.name + "+" + ",".join(pack.name for pack in packs),
        sources=tuple(sources),
        filters=tuple(filters),
        reverts=tuple(reverts),
        sinks=tuple(sinks),
        propagation=tuple(propagation),
        instances=base.instances,
        register_globals=base.register_globals,
        packs=base.packs + tuple(pack.pack_id for pack in packs),
    )


def resolve_profile(options) -> AnalyzerProfile:
    """The profile an analyzer configured with ``options`` will consult.

    Reads ``options.profile_name`` (named base profile; falls back to
    the legacy ``wordpress_config`` switch) and ``options.rule_packs``
    (shipped names or file paths).  Both ``PhpSafe.__init__`` and the
    service's analyzer fingerprint call this, so cache keys and the
    running analyzer are derived from the same resolution and can never
    drift apart.  Raises :class:`PackError` (typed issues, no
    tracebacks) for unknown profiles or invalid packs.
    """
    profile_name: Optional[str] = getattr(options, "profile_name", None)
    pack_refs = tuple(getattr(options, "rule_packs", ()) or ())
    if profile_name:
        base = base_profile(profile_name)
    elif getattr(options, "wordpress_config", True):
        base = wordpress()
    else:
        base = generic_php()
    if not pack_refs:
        return base
    return compile_packs(base, [load_pack(ref) for ref in pack_refs])

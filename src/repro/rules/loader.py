"""Rule-pack parsing and schema validation.

``load_pack`` reads a JSON pack (TOML is accepted on Python 3.11+,
where the stdlib ships ``tomllib``), validates it against the schema,
and returns a :class:`~repro.rules.model.RulePack`.  Every failure mode
— unreadable file, syntax error, schema violation, dangling kind label
— is reported as typed :class:`PackIssue` entries inside a
:class:`PackError`; the loader never lets a parser traceback escape.

Shipped packs live next to this module under ``packs/``;
``resolve_pack_path`` maps a bare pack name (``ssrf``) onto that
directory and passes filesystem paths through untouched.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from ..config.vulnerability import ALL_KINDS, InputVector
from .model import (
    FilterDecl,
    KindDecl,
    PackError,
    PackIssue,
    PropagationDecl,
    RevertDecl,
    RulePack,
    SinkDecl,
    SourceDecl,
)

#: current pack document schema version
PACK_SCHEMA_VERSION = 1

_SLUG = re.compile(r"^[a-z0-9][a-z0-9_-]*$")
_TOP_LEVEL_KEYS = {
    "schema",
    "name",
    "version",
    "title",
    "description",
    "kinds",
    "sources",
    "sinks",
    "filters",
    "reverts",
    "propagation",
}
_VECTOR_VALUES = {vector.value for vector in InputVector}
_BUILTIN_KIND_VALUES = {kind.value for kind in ALL_KINDS}


def builtin_pack_dir() -> str:
    """Directory holding the packs shipped with the reproduction."""
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "packs")


def builtin_pack_names() -> Tuple[str, ...]:
    """Names of the shipped packs (sorted, without extensions)."""
    directory = builtin_pack_dir()
    names = []
    try:
        entries = os.listdir(directory)
    except OSError:
        return ()
    for entry in entries:
        base, ext = os.path.splitext(entry)
        if ext in (".json", ".toml"):
            names.append(base)
    return tuple(sorted(names))


def resolve_pack_path(ref: str) -> str:
    """Map a pack reference onto a file path.

    A reference is either a shipped pack name (``ssrf``) or a
    filesystem path (anything containing a separator or an extension).
    """
    if os.sep in ref or "/" in ref or ref.endswith((".json", ".toml")):
        return ref
    for ext in (".json", ".toml"):
        candidate = os.path.join(builtin_pack_dir(), ref + ext)
        if os.path.exists(candidate):
            return candidate
    return ref  # unresolved name: load_pack reports a typed issue


def _parse_bytes(raw: bytes, path: str) -> Tuple[Optional[Dict[str, Any]], List[PackIssue]]:
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:
            return None, [
                PackIssue(
                    path,
                    "<file>",
                    "TOML packs require Python 3.11+ (stdlib tomllib); "
                    "re-author the pack as JSON for older interpreters",
                )
            ]
        try:
            return tomllib.loads(raw.decode("utf-8")), []
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            return None, [PackIssue(path, "<file>", f"TOML parse error: {exc}")]
    try:
        data = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        return None, [PackIssue(path, "<file>", f"JSON parse error: {exc}")]
    if not isinstance(data, dict):
        return None, [PackIssue(path, "<file>", "pack document must be an object")]
    return data, []


def _str_field(
    entry: Dict[str, Any],
    key: str,
    where: str,
    issues: List[PackIssue],
    path: str,
    default: str = "",
    required: bool = False,
) -> str:
    value = entry.get(key, None)
    if value is None:
        if required:
            issues.append(PackIssue(path, where, f"missing required field '{key}'"))
        return default
    if not isinstance(value, str):
        issues.append(PackIssue(path, f"{where}.{key}", "must be a string"))
        return default
    if required and not value:
        issues.append(PackIssue(path, f"{where}.{key}", "must be non-empty"))
    return value


def _kind_list(
    entry: Dict[str, Any],
    where: str,
    declared: set,
    issues: List[PackIssue],
    path: str,
    default: Tuple[str, ...] = ("*",),
    required: bool = False,
) -> Tuple[str, ...]:
    value = entry.get("kinds", None)
    if value is None:
        if required:
            issues.append(PackIssue(path, where, "missing required field 'kinds'"))
        return default
    if value == "*":
        return ("*",)
    if not isinstance(value, list) or not all(isinstance(item, str) for item in value):
        issues.append(
            PackIssue(path, f"{where}.kinds", "must be \"*\" or a list of kind values")
        )
        return default
    if not value:
        issues.append(PackIssue(path, f"{where}.kinds", "must not be empty"))
        return default
    for item in value:
        if item != "*" and item not in declared and item not in _BUILTIN_KIND_VALUES:
            issues.append(
                PackIssue(
                    path,
                    f"{where}.kinds",
                    f"dangling kind label '{item}': not a builtin kind and "
                    f"not declared in this pack's 'kinds' section",
                )
            )
    return tuple(value)


def _arg_list(
    entry: Dict[str, Any], where: str, issues: List[PackIssue], path: str
) -> Optional[Tuple[int, ...]]:
    value = entry.get("args", None)
    if value is None:
        return None
    if (
        not isinstance(value, list)
        or not value
        or not all(isinstance(item, int) and not isinstance(item, bool) and item >= 0
                   for item in value)
    ):
        issues.append(
            PackIssue(
                path, f"{where}.args", "must be a non-empty list of argument indexes >= 0"
            )
        )
        return None
    return tuple(value)


def _entries(
    data: Dict[str, Any],
    section: str,
    allowed_keys: set,
    issues: List[PackIssue],
    path: str,
) -> List[Tuple[Dict[str, Any], str]]:
    value = data.get(section, [])
    if not isinstance(value, list):
        issues.append(PackIssue(path, section, "must be a list"))
        return []
    out = []
    for index, entry in enumerate(value):
        where = f"{section}[{index}]"
        if not isinstance(entry, dict):
            issues.append(PackIssue(path, where, "must be an object"))
            continue
        for key in entry:
            if key not in allowed_keys:
                issues.append(PackIssue(path, f"{where}.{key}", "unknown field"))
        out.append((entry, where))
    return out


def validate_pack_data(
    data: Dict[str, Any], path: str = "<data>"
) -> Tuple[Optional[RulePack], List[PackIssue]]:
    """Validate a parsed pack document; return (pack, issues).

    ``pack`` is ``None`` whenever ``issues`` is non-empty — a pack that
    failed validation must never reach the compiler.  The content hash
    of in-memory documents is derived from their canonical JSON form.
    """
    issues: List[PackIssue] = []

    for key in data:
        if key not in _TOP_LEVEL_KEYS:
            issues.append(PackIssue(path, key, "unknown top-level field"))

    schema = data.get("schema")
    if schema != PACK_SCHEMA_VERSION:
        issues.append(
            PackIssue(
                path,
                "schema",
                f"unsupported schema version {schema!r} "
                f"(this build supports {PACK_SCHEMA_VERSION})",
            )
        )

    name = _str_field(data, "name", "<pack>", issues, path, required=True)
    if name and not _SLUG.match(name):
        issues.append(
            PackIssue(path, "name", "must be a slug: lowercase letters/digits/_/-")
        )
    version = _str_field(data, "version", "<pack>", issues, path, required=True)
    title = _str_field(data, "title", "<pack>", issues, path)
    description = _str_field(data, "description", "<pack>", issues, path)

    declared: set = set()
    kinds: List[KindDecl] = []
    for entry, where in _entries(
        data, "kinds", {"value", "title", "description"}, issues, path
    ):
        value = _str_field(entry, "value", where, issues, path, required=True)
        if not value:
            continue
        if not _SLUG.match(value):
            issues.append(PackIssue(path, f"{where}.value", "must be a slug"))
            continue
        if value in _BUILTIN_KIND_VALUES:
            issues.append(
                PackIssue(
                    path,
                    f"{where}.value",
                    f"redeclares builtin kind '{value}' — builtin kinds may be "
                    f"referenced directly without a declaration",
                )
            )
            continue
        if value in declared:
            issues.append(PackIssue(path, f"{where}.value", f"duplicate kind '{value}'"))
            continue
        declared.add(value)
        kinds.append(
            KindDecl(
                value=value,
                title=_str_field(entry, "title", where, issues, path),
                description=_str_field(entry, "description", where, issues, path),
            )
        )

    sources: List[SourceDecl] = []
    for entry, where in _entries(
        data,
        "sources",
        {"name", "vector", "kinds", "class", "superglobal", "description"},
        issues,
        path,
    ):
        sname = _str_field(entry, "name", where, issues, path, required=True)
        vector = _str_field(entry, "vector", where, issues, path, default="Function")
        if vector not in _VECTOR_VALUES:
            issues.append(
                PackIssue(
                    path,
                    f"{where}.vector",
                    f"unknown input vector {vector!r}; expected one of "
                    + ", ".join(sorted(_VECTOR_VALUES)),
                )
            )
        superglobal = entry.get("superglobal", False)
        if not isinstance(superglobal, bool):
            issues.append(PackIssue(path, f"{where}.superglobal", "must be a boolean"))
            superglobal = False
        if sname:
            sources.append(
                SourceDecl(
                    name=sname,
                    vector=vector,
                    kinds=_kind_list(entry, where, declared, issues, path),
                    class_name=_str_field(entry, "class", where, issues, path) or None,
                    superglobal=superglobal,
                    description=_str_field(entry, "description", where, issues, path),
                )
            )

    sinks: List[SinkDecl] = []
    seen_sinks: set = set()
    for entry, where in _entries(
        data, "sinks", {"name", "kind", "class", "args", "description"}, issues, path
    ):
        sname = _str_field(entry, "name", where, issues, path, required=True)
        kind = _str_field(entry, "kind", where, issues, path, required=True)
        if kind and kind not in declared and kind not in _BUILTIN_KIND_VALUES:
            issues.append(
                PackIssue(
                    path,
                    f"{where}.kind",
                    f"dangling kind label '{kind}': not a builtin kind and "
                    f"not declared in this pack's 'kinds' section",
                )
            )
        class_name = _str_field(entry, "class", where, issues, path) or None
        if sname and kind:
            dedup = (class_name or "", sname.lower(), kind)
            if dedup in seen_sinks:
                issues.append(
                    PackIssue(path, where, f"duplicate sink '{sname}' for kind '{kind}'")
                )
                continue
            seen_sinks.add(dedup)
            sinks.append(
                SinkDecl(
                    name=sname,
                    kind=kind,
                    class_name=class_name,
                    args=_arg_list(entry, where, issues, path),
                    description=_str_field(entry, "description", where, issues, path),
                )
            )

    filters: List[FilterDecl] = []
    for entry, where in _entries(
        data, "filters", {"name", "kinds", "class", "description"}, issues, path
    ):
        sname = _str_field(entry, "name", where, issues, path, required=True)
        if sname:
            filters.append(
                FilterDecl(
                    name=sname,
                    kinds=_kind_list(entry, where, declared, issues, path, required=True),
                    class_name=_str_field(entry, "class", where, issues, path) or None,
                    description=_str_field(entry, "description", where, issues, path),
                )
            )

    reverts: List[RevertDecl] = []
    for entry, where in _entries(
        data, "reverts", {"name", "kinds", "description"}, issues, path
    ):
        sname = _str_field(entry, "name", where, issues, path, required=True)
        if sname:
            reverts.append(
                RevertDecl(
                    name=sname,
                    kinds=_kind_list(entry, where, declared, issues, path),
                    description=_str_field(entry, "description", where, issues, path),
                )
            )

    propagation: List[PropagationDecl] = []
    for entry, where in _entries(
        data, "propagation", {"name", "kinds", "args", "class", "description"}, issues, path
    ):
        sname = _str_field(entry, "name", where, issues, path, required=True)
        if sname:
            propagation.append(
                PropagationDecl(
                    name=sname,
                    kinds=_kind_list(entry, where, declared, issues, path),
                    args=_arg_list(entry, where, issues, path),
                    class_name=_str_field(entry, "class", where, issues, path) or None,
                    description=_str_field(entry, "description", where, issues, path),
                )
            )

    if not (sources or sinks or filters or reverts or propagation or kinds):
        issues.append(PackIssue(path, "<pack>", "pack declares no entries at all"))

    if issues:
        return None, issues

    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    content_hash = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
    return (
        RulePack(
            name=name,
            version=version,
            path=path,
            content_hash=content_hash,
            title=title,
            description=description,
            kinds=tuple(kinds),
            sources=tuple(sources),
            sinks=tuple(sinks),
            filters=tuple(filters),
            reverts=tuple(reverts),
            propagation=tuple(propagation),
        ),
        [],
    )


def load_pack(ref: str) -> RulePack:
    """Load and validate the pack at ``ref`` (name or path).

    Raises :class:`PackError` carrying every issue found.  The content
    hash is computed over the raw file bytes, so any edit — including
    whitespace — produces a new pack identity and therefore new cache
    keys everywhere downstream.
    """
    path = resolve_pack_path(ref)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise PackError(
            [PackIssue(str(ref), "<file>", f"cannot read pack: {exc}")]
        ) from None
    data, issues = _parse_bytes(raw, path)
    if issues:
        raise PackError(issues)
    pack, issues = validate_pack_data(data, path)
    if issues:
        raise PackError(issues)
    content_hash = hashlib.sha256(raw).hexdigest()[:16]
    return RulePack(
        name=pack.name,
        version=pack.version,
        path=path,
        content_hash=content_hash,
        title=pack.title,
        description=pack.description,
        kinds=pack.kinds,
        sources=pack.sources,
        sinks=pack.sinks,
        filters=pack.filters,
        reverts=pack.reverts,
        propagation=pack.propagation,
    )

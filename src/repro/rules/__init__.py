"""Declarative rule packs: the paper's configuration stage as data files.

phpSAFE's knowledge base (Section III.A) ships as Python constants in
:mod:`repro.config`; this package generalizes it into loadable,
versioned *rule packs* — JSON (or TOML on Python 3.11+) documents
declaring taint kinds, sources, sinks, sanitizers, reverts, and
per-argument propagation specs, following semgrep's taint-mode
propagation taxonomy (``SrcToSink`` = sources, ``ArgToSink`` = sinks,
``ArgToReturn`` = propagation).

Packs compile into the existing :class:`~repro.config.AnalyzerProfile`
machinery, so the AST interpreter and the taint IR execute them
unchanged, and each pack's identity (name, version, content hash)
lands in :meth:`AnalyzerProfile.fingerprint` — summary, IR, and disk
cache keys plus the service analyzer fingerprint all change when pack
content changes, making stale cached results across pack versions
impossible.
"""

from .compiler import compile_packs, resolve_profile
from .loader import (
    PACK_SCHEMA_VERSION,
    builtin_pack_dir,
    builtin_pack_names,
    load_pack,
    resolve_pack_path,
    validate_pack_data,
)
from .model import KindDecl, PackError, PackIssue, RulePack

__all__ = [
    "PACK_SCHEMA_VERSION",
    "KindDecl",
    "PackError",
    "PackIssue",
    "RulePack",
    "builtin_pack_dir",
    "builtin_pack_names",
    "compile_packs",
    "load_pack",
    "resolve_pack_path",
    "resolve_profile",
    "validate_pack_data",
]

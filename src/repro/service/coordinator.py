"""Fleet coordinator: shard scans across N ``phpsafe serve`` nodes.

The paper's "analysis as a service" at marketplace scale (ROADMAP
item 1): one coordinator fronts N independent nodes, shards jobs by
plugin digest on a consistent-hash ring, and keeps serving correct
results through node loss, stragglers and overload.  The pieces:

Sharding
    :class:`~repro.service.fleet.HashRing` maps each plugin digest to
    an owner node plus a failover order.  Losing a node moves only its
    arc of the ring; everything else keeps its owner (warm caches).

Durable dispatch ledger
    The coordinator reuses :class:`~repro.service.queue.JobQueue` as
    its ledger.  A dispatcher claims a job **with a lease** and keeps
    the lease alive while its node works; rows whose lease lapses are
    stolen back by the reaper thread, so no coordinator thread death
    can strand a job.

Exactly-once results
    Nodes share one content-addressed
    :class:`~repro.service.store.ResultStore` keyed on
    ``(plugin digest, analyzer fingerprint)``.  Every steal and every
    re-dispatch checks the store *first*: if the dying node already
    persisted the result, the steal dedups into a completion instead
    of re-running the scan.  Duplicate submissions coalesce in the
    ledger exactly as on a single node.

Retry / backoff
    Node submission failures retry on the ring's failover order with
    bounded exponential backoff + jitter
    (:class:`~repro.service.fleet.RetryPolicy`); 429/503 node answers
    are honored via their ``retry_after`` hint.

Work stealing & quarantine
    A node that dies (SIGKILL) or stalls (SIGSTOP) stops answering
    status polls; after ``poll_fail_threshold`` consecutive misses the
    dispatcher steals the job — dedup-first — and another node runs
    it.  Stealing never refunds the queue attempt, so a job that keeps
    dying quarantines (``failed``, incident recorded in telemetry)
    after ``max_attempts`` instead of ping-ponging forever.

Degraded mode
    When fewer than ``min_live`` nodes answer probes, new work is shed
    with ``503 + Retry-After`` instead of queueing unboundedly — but
    submissions whose digest is already in the store still get their
    cached result (read-only service stays up), and queued jobs simply
    wait for recovery.
"""

from __future__ import annotations

import os
import random
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..batch.scheduler import ToolSpec
from ..batch.telemetry import FleetStats, ServiceStats, percentile, aggregate_fleet
from .fleet import DOWN, HashRing, NodeError, NodeHandle, RetryPolicy, probe_loop
from .queue import DONE, FAILED, JobQueue, QueueFull
from .server import StoreReadMixin, plugin_from_payload, spec_fingerprint
from .store import ResultStore

_Response = Tuple[int, Dict[str, object]]


class FleetCoordinator(StoreReadMixin):
    """Shard, dispatch, steal, degrade — the fleet's brain.

    Duck-types the service interface of
    :class:`~repro.service.server.AnalysisService` (``submit``,
    ``job_status``, ``sarif``, ``sarif_baseline``, ``health``,
    ``metrics``), so :class:`~repro.service.server.ServiceServer` can
    front a coordinator exactly as it fronts a single node; adds
    ``fleet_status`` which the HTTP layer exposes as ``GET /fleet``.

    ``nodes`` maps node name to a client exposing
    ``submit/status/health/metrics`` — an
    :class:`~repro.service.fleet.HttpNodeClient` for real fleets, a
    :class:`~repro.service.fleet.LocalNodeClient` in the tests.
    """

    def __init__(
        self,
        data_dir: str,
        nodes: Dict[str, object],
        spec: Optional[ToolSpec] = None,
        store_dir: Optional[str] = None,
        min_live: int = 1,
        max_queue_depth: int = 256,
        max_attempts: int = 3,
        lease_seconds: float = 30.0,
        probe_interval: float = 0.5,
        poll_interval: float = 0.2,
        poll_fail_threshold: int = 3,
        retry_policy: Optional[RetryPolicy] = None,
        retry_after: float = 1.0,
        dispatchers: Optional[int] = None,
        fail_threshold: int = 2,
        verbose: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        if not nodes:
            raise ValueError("a fleet needs at least one node")
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)
        self.spec = spec or ToolSpec()
        self.fingerprint = spec_fingerprint(self.spec)
        self.store = ResultStore(store_dir or os.path.join(data_dir, "store"))
        self.queue = JobQueue(
            os.path.join(data_dir, "jobs.sqlite"),
            max_depth=max_queue_depth,
            max_attempts=max_attempts,
        )
        self.requeued = self.queue.recover()
        self.ring = HashRing(tuple(sorted(nodes)))
        self.handles = {
            name: NodeHandle(name, client, fail_threshold=fail_threshold)
            for name, client in nodes.items()
        }
        self.min_live = max(1, min_live)
        self.lease_seconds = lease_seconds
        self.probe_interval = probe_interval
        self.poll_interval = poll_interval
        self.poll_fail_threshold = max(1, poll_fail_threshold)
        self.retry = retry_policy or RetryPolicy()
        self.retry_after = retry_after
        self.dispatchers = dispatchers or max(2, 2 * len(nodes))
        self.verbose = verbose
        self.fleet = FleetStats(nodes_total=len(nodes))
        self.stats = ServiceStats()
        #: quarantine/loss incidents, newest last (bounded in accessors)
        self.incidents: List[Dict[str, object]] = []
        self._waits: List[float] = []
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self.accepting = True
        self._started_at = time.monotonic()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        prober = threading.Thread(
            target=probe_loop,
            args=(self.handles, self._stop, self.probe_interval),
            kwargs={"on_transition": self._on_transition},
            name="fleet-prober",
            daemon=True,
        )
        reaper = threading.Thread(
            target=self._reaper_loop, name="fleet-reaper", daemon=True
        )
        self._threads = [prober, reaper]
        for index in range(self.dispatchers):
            self._threads.append(
                threading.Thread(
                    target=self._dispatch_loop,
                    args=(f"dispatch-{index}",),
                    name=f"fleet-dispatch-{index}",
                    daemon=True,
                )
            )
        for thread in self._threads:
            thread.start()

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Graceful: stop accepting, drain the ledger, stop threads.

        Returns True when the ledger drained (no queued/running rows)
        within ``timeout``; the spool survives either way, so a restart
        resumes exactly where this left off.
        """
        self.accepting = False
        deadline = None if timeout is None else time.monotonic() + timeout
        drained = False
        while True:
            counts = self.queue.counts()
            if counts["queued"] == 0 and counts["running"] == 0:
                drained = True
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.05)
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=10)
        return drained

    def close(self) -> None:
        self._stop.set()
        self.queue.close()

    # -- submission --------------------------------------------------------

    def submit(self, payload: Dict[str, object]) -> _Response:
        if not self.accepting:
            return 503, {
                "error": "coordinator is shutting down",
                "retry_after": self.retry_after,
            }
        try:
            plugin = plugin_from_payload(self.store, payload)
        except ValueError as error:
            return 400, {"error": str(error)}
        digest = self.store.put_plugin(plugin)
        cached = self.store.get_result(digest, self.fingerprint)
        if cached is not None:
            # cached results stay served even in degraded mode — the
            # read-only half of the degradation ladder
            job, _created = self.queue.submit(
                digest, self.fingerprint, plugin.slug, cached=True
            )
            with self._lock:
                self.stats.deduped += 1
            body = job.to_dict()
            body["cached"] = True
            return 200, body
        live = self._live_count()
        if live < self.min_live:
            with self._lock:
                self.fleet.shed_503 += 1
            return 503, {
                "error": (
                    f"fleet degraded: {live}/{len(self.handles)} nodes live"
                    f" (minimum {self.min_live}); load shed"
                ),
                "degraded": True,
                "retry": True,
                "retry_after": self.retry_after,
            }
        try:
            job, created = self.queue.submit(digest, self.fingerprint, plugin.slug)
        except QueueFull as error:
            with self._lock:
                self.stats.rejected += 1
            return 429, {
                "error": str(error),
                "retry": True,
                "retry_after": self.retry_after,
            }
        with self._lock:
            if created:
                self.stats.accepted += 1
            depth = self.queue.depth()
            if depth > self.stats.queue_depth_peak:
                self.stats.queue_depth_peak = depth
        body = job.to_dict()
        body["coalesced"] = not created
        body["shard"] = self.ring.owner(digest)
        return 202, body

    # -- health / introspection --------------------------------------------

    def health(self) -> _Response:
        live = self._live_count()
        degraded = live < self.min_live
        return 200, {
            "status": "degraded" if degraded else "ok",
            "role": "coordinator",
            "accepting": self.accepting,
            "nodes": {"total": len(self.handles), "live": live},
            "queue_depth": self.queue.depth(),
        }

    def fleet_status(self) -> _Response:
        live = self._live_count()
        nodes = {
            name: {
                "state": handle.state,
                "address": getattr(handle.client, "address", ""),
                "consecutive_failures": handle.consecutive_failures,
                "probes": handle.probes,
            }
            for name, handle in sorted(self.handles.items())
        }
        with self._lock:
            fleet = self.fleet.to_dict()
            incidents = list(self.incidents[-20:])
        return 200, {
            "role": "coordinator",
            "degraded": live < self.min_live,
            "min_live": self.min_live,
            "nodes": nodes,
            "fleet": fleet,
            "incidents": incidents,
            "queue": self.queue.counts(),
        }

    def metrics(self) -> _Response:
        node_documents: Dict[str, Optional[Dict[str, object]]] = {}
        for name, handle in self.handles.items():
            try:
                node_documents[name] = handle.client.metrics()
            except NodeError:
                node_documents[name] = None
        document = aggregate_fleet(node_documents)
        uptime = time.monotonic() - self._started_at
        with self._lock:
            waits = list(self._waits)
            fleet = self.fleet.to_dict()
            coordinator = {
                "accepted": self.stats.accepted,
                "rejected": self.stats.rejected,
                "deduped": self.stats.deduped,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "quarantined": self.stats.quarantined,
                "queue_depth_peak": self.stats.queue_depth_peak,
                "jobs_per_minute": (
                    round(self.stats.completed / uptime * 60.0, 3) if uptime else 0.0
                ),
                "uptime_seconds": round(uptime, 3),
            }
        coordinator["queue"] = self.queue.counts()
        coordinator["requeued_at_startup"] = self.requeued
        coordinator["queue_wait"] = {
            "mean": round(sum(waits) / len(waits), 6) if waits else 0.0,
            "p50": round(percentile(waits, 0.5), 6),
            "p99": round(percentile(waits, 0.99), 6),
            "samples": len(waits),
        }
        document["fleet"] = fleet
        document["coordinator"] = coordinator
        return 200, document

    # -- dispatch machinery ------------------------------------------------

    def _live_count(self) -> int:
        return sum(
            1 for handle in self.handles.values() if handle.state != DOWN
        )

    def _live_order(self, digest: str) -> List[str]:
        """Ring preference for a digest, down nodes filtered out."""
        return [
            name
            for name in self.ring.preference(digest)
            if self.handles[name].state != DOWN
        ]

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[fleet] {message}", file=sys.stderr, flush=True)

    def _on_transition(self, handle: NodeHandle, went_down: bool) -> None:
        with self._lock:
            if went_down:
                self.fleet.nodes_lost += 1
            else:
                self.fleet.nodes_recovered += 1
        self._log(
            f"node {handle.name} {'DOWN' if went_down else 'UP'}"
            f" ({self._live_count()}/{len(self.handles)} live)"
        )

    def _reaper_loop(self) -> None:
        """Backstop work stealing: requeue rows whose lease lapsed.

        The dispatcher that owns a job normally steals it itself when
        its node stops answering; the reaper catches everything else —
        a wedged dispatcher thread, a coordinator pause, clock weirdness.
        """
        while not self._stop.is_set():
            for job, outcome in self.queue.expire_leases():
                if outcome == "stolen":
                    if self.store.get_result(job.digest, job.fingerprint) is not None:
                        self.queue.complete(job.id)
                        with self._lock:
                            self.fleet.steal_dedups += 1
                            self.stats.completed += 1
                    else:
                        with self._lock:
                            self.fleet.steals += 1
                        self._log(f"reaper stole job {job.id} (lease expired)")
                elif outcome == "quarantined":
                    self._record_quarantine(job, "lease expired")
            self._stop.wait(max(0.2, self.lease_seconds / 10.0))

    def _dispatch_loop(self, owner: str) -> None:
        while not self._stop.is_set():
            job = self.queue.claim(owner=owner, lease_seconds=self.lease_seconds)
            if job is None:
                self._stop.wait(0.05)
                continue
            try:
                self._run_job(job)
            except Exception as error:  # pragma: no cover - defensive
                self.queue.fail(job.id, f"dispatcher error: {error}")
                with self._lock:
                    self.stats.failed += 1
                self._log(f"dispatcher {owner} error on {job.id}: {error}")

    def _run_job(self, job) -> None:
        with self._lock:
            self.stats.queue_wait_seconds += job.queued_seconds
            self.stats.waits_recorded += 1
            self._waits.append(job.queued_seconds)
        # dedup-first: a steal or duplicate may already be answered
        if self.store.get_result(job.digest, job.fingerprint) is not None:
            self.queue.complete(job.id)
            with self._lock:
                if job.attempts > 1:
                    self.fleet.steal_dedups += 1
                self.stats.completed += 1
            return
        dispatched = self._dispatch_to_node(job)
        if dispatched is None:
            return
        handle, remote_id = dispatched
        self._watch(job, handle, remote_id)

    def _dispatch_to_node(self, job):
        """Submit the job to a live node, walking the ring's failover
        order with bounded backoff.  Returns ``(handle, remote_job_id)``
        or None when the job was parked/failed (already accounted)."""
        for attempt in range(self.retry.max_attempts):
            if self._stop.is_set():
                self.queue.release(job.id)
                return None
            order = self._live_order(job.digest)
            if not order:
                with self._lock:
                    self.fleet.no_live_node_waits += 1
                self.queue.release(job.id)
                self._stop.wait(self.retry.delay(attempt, self._rng))
                return None
            hinted_delay: Optional[float] = None
            for position, name in enumerate(order):
                handle = self.handles[name]
                try:
                    status, body = handle.client.submit(
                        {"digest": job.digest, "name": job.plugin}
                    )
                except NodeError as error:
                    with self._lock:
                        self.fleet.failovers += 1
                    if handle.record_failure():
                        self._on_transition(handle, True)
                    self._log(f"submit to {name} failed: {error}")
                    continue
                if handle.record_success():
                    self._on_transition(handle, False)
                if status in (200, 202):
                    self.queue.assign_node(job.id, name)
                    with self._lock:
                        self.fleet.dispatched += 1
                        if position:
                            self.fleet.failovers += 1
                    return handle, str(body["id"])
                if status in (429, 503):
                    # the node is talking: honor its Retry-After hint
                    hint = body.get("retry_after")
                    if hint is not None:
                        hint = float(hint)
                        hinted_delay = (
                            hint if hinted_delay is None else min(hinted_delay, hint)
                        )
                    with self._lock:
                        self.fleet.retries += 1
                    continue
                # 400 and friends are permanent verdicts on the payload
                self.queue.fail(
                    job.id,
                    f"node {name} rejected ({status}): {body.get('error')}",
                )
                with self._lock:
                    self.stats.failed += 1
                return None
            wait = (
                hinted_delay
                if hinted_delay is not None
                else self.retry.delay(attempt, self._rng)
            )
            self.queue.extend_lease(job.id, self.lease_seconds + wait)
            self._stop.wait(wait)
        # every node refused for a whole backoff ladder: park the job
        # (refund the attempt — no node ever started work) and let a
        # later claim retry when capacity returns
        with self._lock:
            self.fleet.retries += 1
        self.queue.release(job.id)
        self._stop.wait(self.retry.delay(self.retry.max_attempts, self._rng))
        return None

    def _watch(self, job, handle: NodeHandle, remote_id: str) -> None:
        """Poll the node until the job resolves; steal when it stops
        answering (SIGKILL, SIGSTOP, network loss)."""
        poll_failures = 0
        while not self._stop.is_set():
            self.queue.extend_lease(job.id, self.lease_seconds)
            try:
                status, body = handle.client.status(remote_id)
            except NodeError:
                poll_failures += 1
                if handle.record_failure():
                    self._on_transition(handle, True)
                if poll_failures >= self.poll_fail_threshold or handle.is_down:
                    self._steal(job, f"node {handle.name} unresponsive")
                    return
                self._stop.wait(self.poll_interval)
                continue
            poll_failures = 0
            if handle.record_success():
                self._on_transition(handle, False)
            if status == 404:
                # the node restarted with a fresh spool and forgot us
                self._steal(job, f"node {handle.name} lost job {remote_id}")
                return
            state = body.get("state")
            if state == DONE:
                if self.store.get_result(job.digest, job.fingerprint) is None:
                    # node claims done but never persisted — treat as loss
                    self._steal(
                        job, f"node {handle.name} finished without a result"
                    )
                    return
                self.queue.complete(job.id)
                with self._lock:
                    self.stats.completed += 1
                return
            if state == FAILED:
                self.queue.fail(
                    job.id,
                    str(body.get("error") or f"failed on node {handle.name}"),
                )
                with self._lock:
                    self.stats.failed += 1
                return
            self._stop.wait(self.poll_interval)
        # shutting down mid-watch: leave the row running — the lease
        # will lapse and recover()/the reaper resumes it next start

    def _steal(self, job, reason: str) -> None:
        """Take the job away from its node — dedup-first.

        The exactly-once path: if the node persisted the result before
        dying (kill-after-persist-before-ack), the steal collapses into
        a completion keyed on ``(digest, fingerprint)`` — no re-run, the
        client sees one result."""
        if self.store.get_result(job.digest, job.fingerprint) is not None:
            self.queue.complete(job.id)
            with self._lock:
                self.fleet.steal_dedups += 1
                self.stats.completed += 1
            self._log(f"steal of {job.id} deduped ({reason})")
            return
        outcome = self.queue.steal(job.id, reason)
        if outcome == "stolen":
            with self._lock:
                self.fleet.steals += 1
            self._log(f"stole {job.id}: {reason}")
        elif outcome == "quarantined":
            self._record_quarantine(job, reason)

    def _record_quarantine(self, job, reason: str) -> None:
        incident = {
            "job": job.id,
            "digest": job.digest,
            "plugin": job.plugin,
            "attempts": job.attempts,
            "reason": reason,
            "at": time.time(),
        }
        with self._lock:
            self.stats.quarantined += 1
            self.stats.failed += 1
            self.incidents.append(incident)
            del self.incidents[:-100]
        self._log(
            f"quarantined {job.id} ({job.plugin}) after"
            f" {job.attempts} attempt(s): {reason}"
        )

"""Content-addressed plugin payloads and scan results.

The daemon never trusts a client-supplied name as identity: every
submission is hashed into a **plugin digest** (SHA-256 over the sorted
``(path, source)`` pairs), the payload is persisted under that digest
so a queued job survives a daemon restart, and finished reports are
stored under ``(digest, analyzer fingerprint)``.  Identical
resubmissions — same bytes, same analyzer configuration — therefore
never reach the queue at all: the stored report is served instantly.

Layout (all writes are atomic temp-file + ``os.replace``, so any number
of worker threads/processes can share one store)::

    root/plugins/<aa>/<digest>.json   {"name", "version", "files"}
    root/results/<aa>/<key>.json      the finished report document
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from ..plugin import Plugin


def plugin_digest(plugin: Plugin) -> str:
    """Content identity of a submission: file paths + bytes only.

    Name and version are deliberately excluded — two marketplaces
    uploading the same bytes under different slugs get one analysis.
    """
    hasher = hashlib.sha256()
    for path, source in plugin.iter_files():
        hasher.update(path.encode("utf-8", "replace"))
        hasher.update(b"\x00")
        hasher.update(source.encode("utf-8", "replace"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


class ResultStore:
    """Digest-keyed payload + report store under one directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._plugins_dir = os.path.join(root, "plugins")
        self._results_dir = os.path.join(root, "results")
        os.makedirs(self._plugins_dir, exist_ok=True)
        os.makedirs(self._results_dir, exist_ok=True)

    # -- plugin payloads ---------------------------------------------------

    def put_plugin(self, plugin: Plugin) -> str:
        """Persist the submission payload; returns its digest."""
        digest = plugin_digest(plugin)
        path = self._shard_path(self._plugins_dir, digest)
        if not os.path.exists(path):
            self._write_json(
                path,
                {
                    "name": plugin.name,
                    "version": plugin.version,
                    "files": dict(plugin.files),
                },
            )
        return digest

    def load_plugin(self, digest: str) -> Optional[Plugin]:
        document = self._read_json(self._shard_path(self._plugins_dir, digest))
        if document is None:
            return None
        return Plugin(
            name=document.get("name", digest[:12]),
            version=document.get("version", ""),
            files=dict(document.get("files", {})),
        )

    # -- finished reports --------------------------------------------------

    @staticmethod
    def result_key(digest: str, fingerprint: str) -> str:
        """Report identity: plugin bytes + analyzer configuration."""
        if not fingerprint:
            return digest
        return hashlib.sha256(
            f"{digest}:{fingerprint}".encode("utf-8")
        ).hexdigest()

    def put_result(
        self, digest: str, fingerprint: str, document: Dict[str, object]
    ) -> None:
        path = self._shard_path(
            self._results_dir, self.result_key(digest, fingerprint)
        )
        self._write_json(path, document)

    def get_result(
        self, digest: str, fingerprint: str
    ) -> Optional[Dict[str, object]]:
        return self._read_json(
            self._shard_path(self._results_dir, self.result_key(digest, fingerprint))
        )

    def result_count(self) -> int:
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self._results_dir):
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count

    # -- I/O helpers -------------------------------------------------------

    @staticmethod
    def _shard_path(root: str, key: str) -> str:
        return os.path.join(root, key[:2], key + ".json")

    @staticmethod
    def _write_json(path: str, document: Dict[str, object]) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=1)
            os.replace(tmp_path, path)
        except Exception:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise

    @staticmethod
    def _read_json(path: str) -> Optional[Dict[str, object]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # truncated/corrupt object: treat as absent so the job is
            # simply re-analyzed; the rewrite replaces the bad file
            try:
                os.remove(path)
            except OSError:
                pass
            return None

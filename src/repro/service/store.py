"""Content-addressed plugin payloads and scan results.

The daemon never trusts a client-supplied name as identity: every
submission is hashed into a **plugin digest** (SHA-256 over the sorted
``(path, source)`` pairs), the payload is persisted under that digest
so a queued job survives a daemon restart, and finished reports are
stored under ``(digest, analyzer fingerprint)``.  Identical
resubmissions — same bytes, same analyzer configuration — therefore
never reach the queue at all: the stored report is served instantly.

Layout (all writes are atomic temp-file + ``os.replace``, so any number
of worker threads/processes can share one store)::

    root/plugins/<aa>/<digest>.json    {"name", "version", "files"}
    root/results/<aa>/<key>.json       the finished report document
    root/manifests/<aa>/<key>.json     per-file digest manifest of a scan
    root/lineage/<aa>/<name-key>.json  digest sequence per plugin lineage

The manifest/lineage pair is what makes rescans diff-aware: a
resubmission whose digest differs is matched to the *nearest prior scan
of the same plugin lineage* (the most recent digest recorded under the
submitted plugin's name), and its per-file digest manifest tells the
analyzer which files actually changed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional

from ..plugin import Plugin


def plugin_digest(plugin: Plugin) -> str:
    """Content identity of a submission: file paths + bytes only.

    Name and version are deliberately excluded — two marketplaces
    uploading the same bytes under different slugs get one analysis.
    """
    hasher = hashlib.sha256()
    for path, source in plugin.iter_files():
        hasher.update(path.encode("utf-8", "replace"))
        hasher.update(b"\x00")
        hasher.update(source.encode("utf-8", "replace"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


class ResultStore:
    """Digest-keyed payload + report store under one directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._plugins_dir = os.path.join(root, "plugins")
        self._results_dir = os.path.join(root, "results")
        self._manifests_dir = os.path.join(root, "manifests")
        self._lineage_dir = os.path.join(root, "lineage")
        os.makedirs(self._plugins_dir, exist_ok=True)
        os.makedirs(self._results_dir, exist_ok=True)
        os.makedirs(self._manifests_dir, exist_ok=True)
        os.makedirs(self._lineage_dir, exist_ok=True)

    # -- plugin payloads ---------------------------------------------------

    def put_plugin(self, plugin: Plugin) -> str:
        """Persist the submission payload; returns its digest."""
        digest = plugin_digest(plugin)
        path = self._shard_path(self._plugins_dir, digest)
        if not os.path.exists(path):
            self._write_json(
                path,
                {
                    "name": plugin.name,
                    "version": plugin.version,
                    "files": dict(plugin.files),
                },
            )
        return digest

    def load_plugin(self, digest: str) -> Optional[Plugin]:
        document = self._read_json(self._shard_path(self._plugins_dir, digest))
        if document is None:
            return None
        return Plugin(
            name=document.get("name", digest[:12]),
            version=document.get("version", ""),
            files=dict(document.get("files", {})),
        )

    # -- finished reports --------------------------------------------------

    @staticmethod
    def result_key(digest: str, fingerprint: str) -> str:
        """Report identity: plugin bytes + analyzer configuration.

        Always hashed — an earlier version returned the raw digest when
        ``fingerprint`` was empty, which put unfingerprinted results in
        a namespace that could collide with hashed keys.  Legacy raw
        paths are migrated lazily by :meth:`get_result`.
        """
        return hashlib.sha256(
            f"{digest}:{fingerprint}".encode("utf-8")
        ).hexdigest()

    def put_result(
        self, digest: str, fingerprint: str, document: Dict[str, object]
    ) -> None:
        path = self._shard_path(
            self._results_dir, self.result_key(digest, fingerprint)
        )
        self._write_json(path, document)

    def get_result(
        self, digest: str, fingerprint: str
    ) -> Optional[Dict[str, object]]:
        document = self._read_json(
            self._shard_path(self._results_dir, self.result_key(digest, fingerprint))
        )
        if document is not None:
            return document
        if not fingerprint:
            return self._migrate_legacy_result(digest)
        return None

    def _migrate_legacy_result(self, digest: str) -> Optional[Dict[str, object]]:
        """Serve and move a pre-fix raw-digest result to its hashed key."""
        legacy_path = self._shard_path(self._results_dir, digest)
        document = self._read_json(legacy_path)
        if document is None:
            return None
        self.put_result(digest, "", document)
        try:
            os.remove(legacy_path)
        except OSError:  # pragma: no cover - concurrent migration
            pass
        return document

    # -- per-file digest manifests (incremental rescans) -------------------

    def put_manifest(
        self, digest: str, fingerprint: str, manifest: Dict[str, object]
    ) -> None:
        """Persist the per-file digest manifest of a finished scan,
        keyed like the result it belongs to."""
        path = self._shard_path(
            self._manifests_dir, self.result_key(digest, fingerprint)
        )
        self._write_json(path, manifest)

    def get_manifest(
        self, digest: str, fingerprint: str
    ) -> Optional[Dict[str, object]]:
        return self._read_json(
            self._shard_path(
                self._manifests_dir, self.result_key(digest, fingerprint)
            )
        )

    # -- scan lineage ------------------------------------------------------

    @staticmethod
    def lineage_key(name: str) -> str:
        """Lineage identity: the (client-supplied) plugin name.  Hashed
        so arbitrary slugs map to safe file names."""
        return hashlib.sha256(("lineage:" + name).encode("utf-8")).hexdigest()

    def record_lineage(self, name: str, digest: str) -> None:
        """Append ``digest`` to the scan lineage of plugin ``name``.

        A digest already present is moved to the end (most recent); the
        list is the submission order the store observed.
        """
        path = self._shard_path(self._lineage_dir, self.lineage_key(name))
        document = self._read_json(path) or {"name": name, "digests": []}
        digests = [d for d in document.get("digests", []) if d != digest]
        digests.append(digest)
        document["name"] = name
        document["digests"] = digests
        self._write_json(path, document)

    def lineage(self, name: str) -> List[str]:
        """Digest sequence recorded for ``name``, oldest first."""
        path = self._shard_path(self._lineage_dir, self.lineage_key(name))
        document = self._read_json(path)
        if document is None:
            return []
        return list(document.get("digests", []))

    def latest_manifest(
        self, name: str, fingerprint: str, exclude_digest: str = ""
    ) -> Optional[Dict[str, object]]:
        """The nearest prior scan manifest of the plugin lineage: the
        most recent digest recorded under ``name`` (other than the one
        being rescanned) that has a stored manifest."""
        for digest in reversed(self.lineage(name)):
            if digest == exclude_digest:
                continue
            manifest = self.get_manifest(digest, fingerprint)
            if manifest is not None:
                return manifest
        return None

    def result_count(self) -> int:
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self._results_dir):
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count

    # -- I/O helpers -------------------------------------------------------

    @staticmethod
    def _shard_path(root: str, key: str) -> str:
        return os.path.join(root, key[:2], key + ".json")

    @staticmethod
    def _write_json(path: str, document: Dict[str, object]) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=1)
            os.replace(tmp_path, path)
        except Exception:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise

    @staticmethod
    def _read_json(path: str) -> Optional[Dict[str, object]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # truncated/corrupt object: treat as absent so the job is
            # simply re-analyzed; the rewrite replaces the bad file
            try:
                os.remove(path)
            except OSError:
                pass
            return None

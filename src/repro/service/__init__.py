"""Analysis-as-a-service subsystem (``phpsafe serve``).

The paper's phpSAFE is "a web application … made available as a
service"; this package is the reproduction's long-running daemon:
an asyncio HTTP front end (:mod:`.server`), a durable SQLite job queue
(:mod:`.queue`), a worker pool draining it through the batch pipeline
(:mod:`.workers`), a content-addressed payload/result store
(:mod:`.store`), a SARIF 2.1.0 exporter (:mod:`.sarif`), and — at
fleet scale — consistent-hash sharding primitives (:mod:`.fleet`)
plus the multi-node coordinator (:mod:`.coordinator`).
"""

from .coordinator import FleetCoordinator
from .fleet import (
    HashRing,
    HttpNodeClient,
    LocalNodeClient,
    LocalNodeProcess,
    NodeError,
    NodeHandle,
    RetryPolicy,
    free_port,
)
from .queue import DONE, FAILED, QUEUED, RUNNING, Job, JobQueue, QueueFull
from .sarif import result_signatures, to_sarif, to_sarif_json
from .server import (
    AnalysisService,
    BackgroundServer,
    ServiceServer,
    run_service,
    serve,
)
from .store import ResultStore, plugin_digest
from .workers import RESULT_SCHEMA, WorkerPool, result_document

__all__ = [
    "AnalysisService",
    "BackgroundServer",
    "DONE",
    "FAILED",
    "FleetCoordinator",
    "HashRing",
    "HttpNodeClient",
    "Job",
    "JobQueue",
    "LocalNodeClient",
    "LocalNodeProcess",
    "NodeError",
    "NodeHandle",
    "QUEUED",
    "QueueFull",
    "RESULT_SCHEMA",
    "ResultStore",
    "RetryPolicy",
    "RUNNING",
    "ServiceServer",
    "WorkerPool",
    "free_port",
    "plugin_digest",
    "result_document",
    "result_signatures",
    "run_service",
    "serve",
    "to_sarif",
    "to_sarif_json",
]

"""Worker pool: drains the job queue into the batch analysis pipeline.

Each worker is a dispatcher thread that claims jobs from the durable
:class:`~repro.service.queue.JobQueue` and runs them through the exact
worker pipeline the batch scanner uses (``repro.batch.scheduler``), so
the daemon inherits everything that subsystem already provides: the
persistent :class:`~repro.batch.DiskModelCache` parse/summary tiers
(repeat submissions of mostly-unchanged plugins are near-free), the
SIGALRM per-job deadline, and the typed incident taxonomy for
timeouts/crashes.

Two isolation levels:

``process`` (default)
    Every dispatcher thread owns a single-process
    ``ProcessPoolExecutor`` built with the batch scheduler's own
    initializer.  A job that kills its worker process (segfault,
    ``os._exit``) breaks only that executor: the job is failed with a
    fatal incident, the executor is rebuilt, and the pool keeps
    serving.  The worker process persists across jobs, keeping its
    in-memory cache tiers warm.

``thread``
    The analysis runs inside the dispatcher thread itself — no fork,
    used by tests and fork-hostile environments.  Deadlines degrade to
    the engine's per-unit ``file_deadline`` and a hard crash would take
    the daemon down, which is why it is not the default.

Per-job perf attribution uses :func:`repro.perf.scoped`, which is
race-free under concurrent workers because the counters are
thread-local.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..batch.scheduler import (
    BatchOptions,
    ToolSpec,
    _cache_stats,
    _failure_report,
    _init_worker,
    _rescan_one,
)
from ..batch.telemetry import PluginScanStats, ScanTelemetry, ServiceStats
from ..core.results import ToolReport
from ..core.review import to_json
from ..perf import scoped
from ..plugin import Plugin
from .queue import Job, JobQueue
from .sarif import to_sarif
from .store import ResultStore

#: schema of the stored result document
RESULT_SCHEMA = "repro.service.result/v2"


def result_document(
    job: Job,
    report: ToolReport,
    outcome: str,
    rescan: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The JSON document persisted per finished job: the full review
    report, its SARIF rendering, and the service-side envelope.

    Schema v2 adds the ``rescan`` section — how much of the plugin's
    prior analysis the diff-aware rescan reused (empty dict when the
    tool has no incremental path)."""
    return {
        "schema": RESULT_SCHEMA,
        "digest": job.digest,
        "fingerprint": job.fingerprint,
        "outcome": outcome,
        "queued_seconds": round(job.queued_seconds, 6),
        "seconds": round(report.seconds, 6),
        "rescan": dict(rescan or {}),
        "report": json.loads(to_json(report)),
        "sarif": to_sarif(report),
    }


class _WorkerState:
    """Per-dispatcher-thread lazily built scan machinery."""

    def __init__(self) -> None:
        self.executor: Optional[ProcessPoolExecutor] = None
        self.tool = None  # thread-isolation analyzer instance


class WorkerPool:
    """N dispatcher threads draining the queue (see module docstring)."""

    def __init__(
        self,
        queue: JobQueue,
        store: ResultStore,
        spec: Optional[ToolSpec] = None,
        jobs: int = 1,
        timeout: Optional[float] = None,
        cache_dir: Optional[str] = None,
        isolation: str = "process",
        stats: Optional[ServiceStats] = None,
        poll_interval: float = 0.05,
    ) -> None:
        if isolation not in ("process", "thread"):
            raise ValueError(f"unknown isolation level {isolation!r}")
        self.queue = queue
        self.store = store
        self.spec = spec or ToolSpec()
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.cache_dir = cache_dir
        self.isolation = isolation
        self.poll_interval = poll_interval
        self.telemetry = ScanTelemetry(jobs=self.jobs)
        self.telemetry.service = stats if stats is not None else ServiceStats()
        self.stats = self.telemetry.service
        self._batch_options = BatchOptions(
            jobs=1, timeout=timeout, cache_dir=cache_dir
        )
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._started_at: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        self._started_at = time.monotonic()
        for slot in range(self.jobs):
            thread = threading.Thread(
                target=self._run, name=f"phpsafe-worker-{slot}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Drain: stop claiming new jobs, finish the ones running.

        Queued jobs stay queued (the sqlite spool is the durability
        boundary).  Returns True when every dispatcher thread exited
        within ``timeout``.
        """
        self._stop.set()
        drained = True
        for thread in self._threads:
            thread.join(timeout=timeout)
            drained = drained and not thread.is_alive()
        if drained:
            self._threads = []
        return drained

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def uptime(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    # -- dispatcher loop ---------------------------------------------------

    def _run(self) -> None:
        state = _WorkerState()
        try:
            while not self._stop.is_set():
                job = self.queue.claim()
                if job is None:
                    # nothing queued: idle until work or shutdown
                    self._stop.wait(self.poll_interval)
                    continue
                self._execute(job, state)
        finally:
            if state.executor is not None:
                state.executor.shutdown(wait=False)

    def _execute(self, job: Job, state: _WorkerState) -> None:
        plugin = self.store.load_plugin(job.digest)
        if plugin is None:
            self.queue.fail(job.id, "plugin payload missing from store")
            with self._lock:
                self.stats.failed += 1
            return
        # diff-aware rescan: the nearest prior scan of this plugin's
        # lineage (same analyzer fingerprint) supplies the manifest the
        # engine reuses unchanged analysis units from
        manifest = self.store.latest_manifest(
            plugin.name, job.fingerprint, exclude_digest=job.digest
        )
        with scoped() as scope:
            report, outcome, delta, new_manifest, rescan = self._scan(
                plugin, state, manifest
            )
        document = result_document(job, report, outcome, rescan)
        self.store.put_result(job.digest, job.fingerprint, document)
        if outcome == "ok":
            if new_manifest is not None:
                self.store.put_manifest(job.digest, job.fingerprint, new_manifest)
            self.store.record_lineage(plugin.name, job.digest)
            self.queue.complete(job.id)
        else:
            self.queue.fail(job.id, f"analysis {outcome}")
        finished = self.queue.get(job.id) or job
        self._record(finished, report, outcome, delta, scope.report(), rescan)

    def _record(
        self,
        job: Job,
        report: ToolReport,
        outcome: str,
        delta: Tuple[int, ...],
        scope_perf: Dict[str, float],
        rescan: Optional[Dict[str, object]] = None,
    ) -> None:
        # process-isolated reports carry their own perf delta (computed
        # inside the worker process); the dispatcher-side scope supplies
        # it otherwise, race-free because counters are thread-local
        perf = dict(report.perf) if report.perf else scope_perf
        stats_row = PluginScanStats(
            plugin=report.plugin,
            seconds=report.seconds,
            files=report.files_analyzed,
            loc=report.loc_analyzed,
            findings=len(report.findings),
            failures=len(report.failures),
            incidents=len(report.incidents),
            recovered=report.recovered_count,
            files_skipped=report.files_skipped,
            loc_skipped=report.loc_skipped,
            cache_hits=delta[0],
            cache_misses=delta[1],
            disk_hits=delta[2],
            cache_corrupt=delta[3],
            summary_hits=delta[4] if len(delta) > 4 else 0,
            summary_misses=delta[5] if len(delta) > 5 else 0,
            summary_stale=delta[6] if len(delta) > 6 else 0,
            perf=perf,
            queued_seconds=job.queued_seconds,
            outcome=outcome,
            rescan_roots_total=int((rescan or {}).get("roots_total", 0)),
            rescan_roots_reused=int((rescan or {}).get("roots_reused", 0)),
            rescan_fallback=str((rescan or {}).get("fallback_reason", "")),
        )
        with self._lock:
            self.telemetry.record(stats_row)
            self.stats.queue_wait_seconds += job.queued_seconds
            self.stats.waits_recorded += 1
            if outcome == "ok":
                self.stats.completed += 1
            else:
                self.stats.failed += 1
            if outcome == "timeout":
                self.telemetry.timeouts += 1
            elif outcome in ("crashed", "error"):
                self.telemetry.crashes += 1

    # -- the scan itself ---------------------------------------------------

    #: scan return value: report, outcome, cache delta, the new per-file
    #: digest manifest (None on failure or manifest-less tools), and the
    #: rescan-stats dict
    _ScanResult = Tuple[
        ToolReport, str, Tuple[int, ...], Optional[Dict[str, object]],
        Dict[str, object],
    ]

    def _scan(
        self,
        plugin: Plugin,
        state: _WorkerState,
        manifest: Optional[Dict[str, object]] = None,
    ) -> "_ScanResult":
        if self.isolation == "process":
            return self._scan_process(plugin, state, manifest)
        return self._scan_thread(plugin, state, manifest)

    def _scan_process(
        self,
        plugin: Plugin,
        state: _WorkerState,
        manifest: Optional[Dict[str, object]] = None,
    ) -> "_ScanResult":
        if state.executor is None:
            state.executor = ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_worker,
                initargs=(self.spec, self._batch_options),
            )
        payload = (plugin.name, plugin.version, dict(plugin.files), manifest)
        try:
            report, _seconds, outcome, delta, new_manifest, rescan = (
                state.executor.submit(_rescan_one, payload).result()
            )
            return report, outcome, delta, new_manifest, rescan
        except BrokenProcessPool:
            state.executor.shutdown(wait=False)
            state.executor = None
            with self._lock:
                self.telemetry.worker_restarts += 1
            report = _failure_report(
                self.spec.name, plugin.slug, "worker process died during analysis"
            )
            return report, "crashed", (0,) * 7, None, {}

    def _scan_thread(
        self,
        plugin: Plugin,
        state: _WorkerState,
        manifest: Optional[Dict[str, object]] = None,
    ) -> "_ScanResult":
        if state.tool is None:
            state.tool = self._build_thread_tool()
        cache = getattr(state.tool, "cache", None)
        before = _cache_stats(cache)
        new_manifest: Optional[Dict[str, object]] = None
        rescan: Dict[str, object] = {}
        start = time.perf_counter()
        try:
            if hasattr(state.tool, "rescan"):
                report, new_manifest, stats = state.tool.rescan(plugin, manifest)
                rescan = stats.to_dict()
            else:
                report = state.tool.analyze(plugin)
            outcome = "ok"
        except Exception as error:
            report = _failure_report(
                self.spec.name, plugin.slug, f"worker exception: {error!r}"
            )
            outcome = "error"
            new_manifest = None
        report.seconds = time.perf_counter() - start
        report.variables = {}
        after = _cache_stats(cache)
        delta = tuple(b - a for a, b in zip(before, after))
        return report, outcome, delta, new_manifest, rescan

    def _build_thread_tool(self):
        spec = self.spec
        if spec.name == "phpsafe" and self.timeout:
            # no SIGALRM off the main thread: degrade the job deadline
            # to the engine's per-unit wall clock
            from ..core.phpsafe import PhpSafeOptions

            options = spec.options or PhpSafeOptions()
            if options.file_deadline is None or options.file_deadline > self.timeout:
                options = replace(options, file_deadline=self.timeout)
            spec = ToolSpec(name=spec.name, options=options)
        cache = None
        if self.cache_dir:
            from ..batch.diskcache import DiskModelCache

            # per-thread instance: the memory LRU is not thread-safe,
            # but the content-addressed disk tier is shared by design
            cache = DiskModelCache(self.cache_dir)
        elif spec.name == "phpsafe":
            from ..core.cache import ModelCache

            cache = ModelCache()
        return spec.build(cache=cache)

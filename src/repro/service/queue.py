"""Durable SQLite-backed job queue for the analysis daemon.

Every accepted submission becomes one row in ``jobs.sqlite`` and moves
through ``queued → running → done | failed``.  Durability is the whole
point: the row is committed before the HTTP 202 goes out, so a daemon
crash (or SIGTERM mid-run) can never lose an accepted job — on restart
:meth:`JobQueue.recover` puts interrupted ``running`` rows back to
``queued`` (or ``failed`` once their claim attempts are exhausted,
which is how a plugin that reliably kills its worker is quarantined
instead of crash-looping the daemon forever).

Backpressure is a bounded queue depth: :meth:`submit` raises
:class:`QueueFull` when ``max_depth`` jobs are already waiting, which
the HTTP front end maps to ``429 Too Many Requests``.

Fleet semantics (the coordinator of :mod:`repro.service.coordinator`
uses the same queue as its dispatch ledger):

- :meth:`claim` can take a **lease**: the claimer's name plus an
  expiry timestamp.  A healthy dispatcher keeps the lease alive with
  :meth:`extend_lease` while its node works.
- :meth:`expire_leases` is the work-stealing primitive — a ``running``
  row whose lease lapsed (dispatcher wedged, node SIGSTOPped, process
  gone) is **stolen** back to ``queued`` so another worker can claim
  it.  Stealing never decrements ``attempts`` (the interrupted attempt
  really happened), so a job that keeps dying lands in quarantine
  (``failed``, with an error naming the quarantine) after
  ``max_attempts`` instead of bouncing between nodes forever.
- :meth:`release` is only for claimed-but-unstarted returns during a
  graceful shutdown; it refunds the attempt (floored at zero) because
  no work was begun.

Thread safety: one shared connection guarded by a lock.  Queue
operations are tiny row updates, so serializing them costs nothing
next to the seconds-long analyses they bracket.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class QueueFull(Exception):
    """The bounded queue is at capacity; submission must be rejected."""


@dataclass(frozen=True)
class Job:
    """One submission's queue row."""

    id: str
    digest: str
    fingerprint: str
    plugin: str
    state: str
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    cached: bool = False
    error: Optional[str] = None
    #: lease fields (fleet dispatch ledger; all None for plain daemons)
    lease_owner: Optional[str] = None
    lease_expires: Optional[float] = None
    #: fleet node the job was last dispatched to (observability)
    node: Optional[str] = None

    @property
    def queued_seconds(self) -> float:
        """Queue-wait latency (0 until the job is claimed)."""
        if self.started_at is None:
            return 0.0
        return max(0.0, self.started_at - self.submitted_at)

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "digest": self.digest,
            "plugin": self.plugin,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cached": self.cached,
            "queued_seconds": round(self.queued_seconds, 6),
            "node": self.node,
            "error": self.error,
        }


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    digest TEXT NOT NULL,
    fingerprint TEXT NOT NULL DEFAULT '',
    plugin TEXT NOT NULL DEFAULT '',
    state TEXT NOT NULL DEFAULT 'queued',
    submitted_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL,
    attempts INTEGER NOT NULL DEFAULT 0,
    cached INTEGER NOT NULL DEFAULT 0,
    error TEXT,
    lease_owner TEXT,
    lease_expires REAL,
    node TEXT
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs(state, submitted_at);
CREATE INDEX IF NOT EXISTS jobs_digest ON jobs(digest, fingerprint);
"""

#: columns added after the v1 schema shipped; old spools are migrated
#: in place when reopened
_MIGRATIONS = (
    ("lease_owner", "TEXT"),
    ("lease_expires", "REAL"),
    ("node", "TEXT"),
)


class JobQueue:
    """Crash-safe spool of scan jobs (see module docstring)."""

    def __init__(
        self,
        path: str,
        max_depth: int = 64,
        max_attempts: int = 2,
    ) -> None:
        self.path = path
        self.max_depth = max_depth
        self.max_attempts = max_attempts
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.executescript(_SCHEMA)
            present = {
                row["name"]
                for row in self._conn.execute("PRAGMA table_info(jobs)")
            }
            for column, kind in _MIGRATIONS:
                if column not in present:
                    self._conn.execute(
                        f"ALTER TABLE jobs ADD COLUMN {column} {kind}"
                    )
            self._conn.commit()

    # -- submission side ---------------------------------------------------

    def submit(
        self,
        digest: str,
        fingerprint: str = "",
        plugin: str = "",
        cached: bool = False,
    ) -> Tuple[Job, bool]:
        """Enqueue one job; returns ``(job, created)``.

        A submission whose ``(digest, fingerprint)`` is already queued
        or running coalesces onto the in-flight job instead of queueing
        duplicate work — both clients poll the same id, and ``created``
        is False.  ``cached=True`` records a submission that was
        answered straight from the result store: the row is born
        ``done`` so the status API stays uniform.
        """
        now = time.time()
        with self._lock:
            if not cached:
                row = self._conn.execute(
                    "SELECT * FROM jobs WHERE digest = ? AND fingerprint = ?"
                    " AND state IN (?, ?) ORDER BY submitted_at LIMIT 1",
                    (digest, fingerprint, QUEUED, RUNNING),
                ).fetchone()
                if row is not None:
                    return self._job(row), False
                depth = self._depth_locked()
                if depth >= self.max_depth:
                    raise QueueFull(
                        f"queue depth {depth} at capacity {self.max_depth}"
                    )
            job_id = uuid.uuid4().hex[:16]
            state = DONE if cached else QUEUED
            self._conn.execute(
                "INSERT INTO jobs (id, digest, fingerprint, plugin, state,"
                " submitted_at, finished_at, cached)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    job_id,
                    digest,
                    fingerprint,
                    plugin,
                    state,
                    now,
                    now if cached else None,
                    1 if cached else 0,
                ),
            )
            self._conn.commit()
            return self._get_locked(job_id), True

    # -- worker side -------------------------------------------------------

    def claim(
        self,
        owner: str = "",
        lease_seconds: Optional[float] = None,
    ) -> Optional[Job]:
        """Atomically move the oldest queued job to ``running``.

        ``owner``/``lease_seconds`` attach a lease to the claim: if the
        claimer stops extending it (crash, wedge, straggler node), the
        row becomes stealable via :meth:`expire_leases`.
        """
        now = time.time()
        expires = now + lease_seconds if lease_seconds else None
        with self._lock:
            row = self._conn.execute(
                "SELECT id FROM jobs WHERE state = ?"
                " ORDER BY submitted_at, id LIMIT 1",
                (QUEUED,),
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = ?, started_at = ?,"
                " attempts = attempts + 1, lease_owner = ?,"
                " lease_expires = ? WHERE id = ?",
                (RUNNING, now, owner or None, expires, row["id"]),
            )
            self._conn.commit()
            return self._get_locked(row["id"])

    def extend_lease(self, job_id: str, lease_seconds: float) -> None:
        """Push a running job's lease expiry out (healthy heartbeat)."""
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET lease_expires = ? WHERE id = ? AND state = ?",
                (time.time() + lease_seconds, job_id, RUNNING),
            )
            self._conn.commit()

    def assign_node(self, job_id: str, node: str) -> None:
        """Record which fleet node the job was dispatched to."""
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET node = ? WHERE id = ?", (node, job_id)
            )
            self._conn.commit()

    def complete(self, job_id: str) -> None:
        self._finish(job_id, DONE, None)

    def fail(self, job_id: str, error: str) -> None:
        self._finish(job_id, FAILED, error)

    def release(self, job_id: str) -> None:
        """Put a claimed-but-unstarted job back (graceful shutdown).

        The attempt is refunded (floored at zero) because no work was
        begun — unlike :meth:`steal`, which charges the interrupted
        attempt so repeatedly-dying jobs converge on quarantine.
        """
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, started_at = NULL,"
                " attempts = MAX(attempts - 1, 0), lease_owner = NULL,"
                " lease_expires = NULL WHERE id = ? AND state = ?",
                (QUEUED, job_id, RUNNING),
            )
            self._conn.commit()

    def steal(self, job_id: str, reason: str = "lease expired") -> str:
        """Take a running job away from its (dead/wedged) worker.

        Returns one of:

        - ``"stolen"`` — the row went back to ``queued`` for the next
          claimer, keeping its ``attempts`` count (the interrupted
          attempt happened; it must count toward quarantine).
        - ``"quarantined"`` — attempts were already exhausted, so the
          row was failed for good instead of flipping back to
          ``queued`` forever.  The caller records the incident in
          telemetry.
        - ``"noop"`` — the row was not ``running`` (finished while we
          decided, or unknown id).
        """
        with self._lock:
            return self._steal_locked(job_id, reason)

    def _steal_locked(self, job_id: str, reason: str) -> str:
        row = self._conn.execute(
            "SELECT state, attempts FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None or row["state"] != RUNNING:
            return "noop"
        if row["attempts"] >= self.max_attempts:
            self._conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, error = ?,"
                " lease_owner = NULL, lease_expires = NULL WHERE id = ?",
                (
                    FAILED,
                    time.time(),
                    f"quarantined after {row['attempts']} attempt(s): {reason}",
                    job_id,
                ),
            )
            self._conn.commit()
            return "quarantined"
        self._conn.execute(
            "UPDATE jobs SET state = ?, started_at = NULL,"
            " lease_owner = NULL, lease_expires = NULL WHERE id = ?",
            (QUEUED, job_id),
        )
        self._conn.commit()
        return "stolen"

    def expire_leases(self, now: Optional[float] = None) -> List[Tuple[Job, str]]:
        """Steal every running job whose lease has lapsed.

        Returns ``(job, outcome)`` pairs where ``outcome`` is
        ``"stolen"`` or ``"quarantined"`` (see :meth:`steal`); rows
        without a lease are never touched.
        """
        cutoff = time.time() if now is None else now
        with self._lock:
            rows = self._conn.execute(
                "SELECT id FROM jobs WHERE state = ?"
                " AND lease_expires IS NOT NULL AND lease_expires < ?",
                (RUNNING, cutoff),
            ).fetchall()
            expired = []
            for row in rows:
                job = self._get_locked(row["id"])
                outcome = self._steal_locked(row["id"], "lease expired")
                if outcome != "noop":
                    expired.append((job, outcome))
            return expired

    def _finish(self, job_id: str, state: str, error: Optional[str]) -> None:
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, error = ?"
                " WHERE id = ?",
                (state, time.time(), error, job_id),
            )
            self._conn.commit()

    # -- restart / introspection -------------------------------------------

    def recover(self) -> int:
        """Requeue jobs interrupted by a crash; returns how many.

        Rows still ``running`` when the daemon starts belong to a
        previous process that died mid-analysis.  Each goes back to
        ``queued`` unless its claim attempts are exhausted, in which
        case it is failed for good (a reliably worker-killing input
        must not crash-loop the daemon).
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, attempts FROM jobs WHERE state = ?", (RUNNING,)
            ).fetchall()
            requeued = 0
            for row in rows:
                if row["attempts"] >= self.max_attempts:
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, finished_at = ?, error = ?"
                        " WHERE id = ?",
                        (
                            FAILED,
                            time.time(),
                            f"abandoned after {row['attempts']} interrupted"
                            " attempt(s)",
                            row["id"],
                        ),
                    )
                else:
                    self._conn.execute(
                        "UPDATE jobs SET state = ?, started_at = NULL,"
                        " lease_owner = NULL, lease_expires = NULL"
                        " WHERE id = ?",
                        (QUEUED, row["id"]),
                    )
                    requeued += 1
            self._conn.commit()
            return requeued

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            return self._job(row) if row is not None else None

    def depth(self) -> int:
        """Jobs currently waiting (the bounded-depth measure)."""
        with self._lock:
            return self._depth_locked()

    def counts(self) -> Dict[str, int]:
        """Row count per state (for ``GET /metrics``)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    def jobs_in(self, *states: str) -> List[Job]:
        with self._lock:
            marks = ",".join("?" for _ in states)
            rows = self._conn.execute(
                f"SELECT * FROM jobs WHERE state IN ({marks})"
                " ORDER BY submitted_at, id",
                states,
            ).fetchall()
            return [self._job(row) for row in rows]

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- helpers -----------------------------------------------------------

    def _depth_locked(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) AS n FROM jobs WHERE state = ?", (QUEUED,)
        ).fetchone()
        return row["n"]

    def _get_locked(self, job_id: str) -> Job:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return self._job(row)

    @staticmethod
    def _job(row: sqlite3.Row) -> Job:
        return Job(
            id=row["id"],
            digest=row["digest"],
            fingerprint=row["fingerprint"],
            plugin=row["plugin"],
            state=row["state"],
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            attempts=row["attempts"],
            cached=bool(row["cached"]),
            error=row["error"],
            lease_owner=row["lease_owner"],
            lease_expires=row["lease_expires"],
            node=row["node"],
        )

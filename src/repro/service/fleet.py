"""Fleet primitives: hash ring, node clients, retry policy, node procs.

The multi-node service (ROADMAP item 1, the paper's "made available as
a service" at marketplace scale) is built from four small pieces that
live here so the coordinator stays readable:

:class:`HashRing`
    Consistent hashing with virtual nodes.  Jobs shard by plugin
    digest; :meth:`HashRing.preference` yields the full failover order
    for a key, so losing a node moves only that node's arc of the ring
    (≈1/N of the keys) instead of reshuffling everything.

:class:`RetryPolicy`
    Bounded exponential backoff with jitter.  Every retry loop in the
    fleet (node submission, probe recovery, load-generator 429/503
    handling) draws its delays from one of these.

:class:`HttpNodeClient` / :class:`LocalNodeClient`
    The wire to one ``phpsafe serve`` node.  HTTP error *responses*
    (429, 503, 400…) are returned to the caller — they are the node
    talking; :class:`NodeError` is raised only when the node is not
    talking at all (connection refused, timeout, garbage).  The local
    variant wraps an in-process :class:`AnalysisService` for tests and
    doubles as the interface's documentation.

:class:`NodeHandle`
    Health bookkeeping for one node: consecutive probe failures flip
    it ``up → down`` at a threshold, one success flips it back.

:class:`LocalNodeProcess`
    Spawns a real ``python -m repro serve`` subprocess (own spool and
    cache, shared result store) and can SIGKILL / SIGSTOP / SIGCONT it
    — the fault injectors of the chaos harness.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import signal as signal_module
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: node health states
UP = "up"
DOWN = "down"
UNKNOWN = "unknown"


class NodeError(Exception):
    """The node did not answer at all (dead, wedged, unreachable)."""


# ---------------------------------------------------------------------------
# consistent hashing
# ---------------------------------------------------------------------------


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node is hashed onto the ring ``replicas`` times; a key is
    owned by the first point clockwise from its own hash.  Removing a
    node hands its arcs to the next points — every other key keeps its
    owner, which is what makes rebalance after node loss cheap.
    """

    def __init__(self, nodes: Tuple[str, ...] = (), replicas: int = 64) -> None:
        self.replicas = replicas
        self._nodes: List[str] = []
        self._points: List[Tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
        )

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.append(node)
        for replica in range(self.replicas):
            self._points.append((self._hash(f"{node}#{replica}"), node))
        self._points.sort()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        self._points = [point for point in self._points if point[1] != node]

    def owner(self, key: str) -> Optional[str]:
        """The node a key shards to (None on an empty ring)."""
        order = self.preference(key, count=1)
        return order[0] if order else None

    def preference(self, key: str, count: Optional[int] = None) -> List[str]:
        """Distinct nodes in ring order starting at ``key``'s position.

        The first entry is the owner; the rest are the failover order a
        dispatcher walks when nodes are down.
        """
        if not self._points:
            return []
        wanted = len(self._nodes) if count is None else min(count, len(self._nodes))
        start = bisect_right(self._points, (self._hash(key), chr(0x10FFFF)))
        order: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in seen:
                seen.add(node)
                order.append(node)
                if len(order) == wanted:
                    break
        return order


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``delay(attempt)`` for attempt 0, 1, 2… is
    ``min(cap, base * multiplier**attempt)`` scaled by a random factor
    in ``[1 - jitter, 1]`` — full delays would synchronize retries
    across dispatchers (thundering herd), jitter spreads them.
    """

    base_delay: float = 0.1
    max_delay: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.5
    max_attempts: int = 4

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if self.jitter <= 0:
            return raw
        scale = 1.0 - (rng or random).random() * self.jitter
        return raw * scale


# ---------------------------------------------------------------------------
# node clients
# ---------------------------------------------------------------------------


class HttpNodeClient:
    """Talk to one ``phpsafe serve`` node over HTTP.

    Returns ``(status, body)`` for every HTTP exchange the node
    completed — including 4xx/5xx, which are service answers (429
    backpressure, 503 drain) the coordinator must see.  Raises
    :class:`NodeError` when no exchange happened: that is the signal a
    node is gone and its work must be stolen.
    """

    def __init__(self, address: str, timeout: float = 10.0) -> None:
        self.address = address.rstrip("/")
        if "://" not in self.address:
            self.address = "http://" + self.address
        self.timeout = timeout

    def _request(
        self, path: str, payload: Optional[Dict[str, object]] = None
    ) -> Tuple[int, Dict[str, object]]:
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        request = urllib.request.Request(self.address + path, data=data)
        if data is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, json.loads(
                    response.read().decode("utf-8")
                )
        except urllib.error.HTTPError as error:
            try:
                return error.code, json.loads(error.read().decode("utf-8"))
            except ValueError:
                return error.code, {"error": f"non-JSON {error.code} reply"}
        except (urllib.error.URLError, ConnectionError, socket.timeout, OSError) as error:
            raise NodeError(f"{self.address}{path}: {error}") from error
        except ValueError as error:  # garbage body on a 2xx
            raise NodeError(f"{self.address}{path}: bad JSON ({error})") from error

    def submit(self, payload: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        return self._request("/v1/scans", payload)

    def status(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        return self._request(f"/v1/scans/{job_id}")

    def health(self) -> Dict[str, object]:
        status, body = self._request("/healthz")
        if status != 200:
            raise NodeError(f"{self.address}/healthz returned {status}")
        return body

    def metrics(self) -> Dict[str, object]:
        status, body = self._request("/metrics")
        if status != 200:
            raise NodeError(f"{self.address}/metrics returned {status}")
        return body


class LocalNodeClient:
    """In-process node client over an :class:`AnalysisService`.

    Used by the unit tests (no subprocesses, fully deterministic) and
    as the executable definition of the node-client interface.
    """

    def __init__(self, service) -> None:
        self.service = service
        self.address = f"local:{id(service):x}"

    def submit(self, payload: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        return self.service.submit(payload)

    def status(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        return self.service.job_status(job_id)

    def health(self) -> Dict[str, object]:
        status, body = self.service.health()
        if status != 200:
            raise NodeError(f"{self.address} health returned {status}")
        return body

    def metrics(self) -> Dict[str, object]:
        status, body = self.service.metrics()
        if status != 200:
            raise NodeError(f"{self.address} metrics returned {status}")
        return body


class NodeHandle:
    """One fleet node's health bookkeeping (probe side)."""

    def __init__(self, name: str, client, fail_threshold: int = 2) -> None:
        self.name = name
        self.client = client
        self.fail_threshold = max(1, fail_threshold)
        self.state = UNKNOWN
        self.consecutive_failures = 0
        self.probes = 0
        self.last_change = time.monotonic()

    @property
    def is_down(self) -> bool:
        return self.state == DOWN

    def record_success(self) -> bool:
        """Returns True on a down→up transition."""
        self.probes += 1
        self.consecutive_failures = 0
        recovered = self.state == DOWN
        if self.state != UP:
            self.state = UP
            self.last_change = time.monotonic()
        return recovered

    def record_failure(self) -> bool:
        """Returns True on an up/unknown→down transition."""
        self.probes += 1
        self.consecutive_failures += 1
        if self.state != DOWN and self.consecutive_failures >= self.fail_threshold:
            self.state = DOWN
            self.last_change = time.monotonic()
            return True
        return False


# ---------------------------------------------------------------------------
# local node processes (chaos harness, bench fleet)
# ---------------------------------------------------------------------------


def free_port() -> int:
    """A currently-free TCP port on localhost (best effort)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class LocalNodeProcess:
    """A real ``phpsafe serve`` node as a child process.

    Own job spool and parse cache; the result store is shared with the
    rest of the fleet via ``store_dir``.  The chaos harness's fault
    injectors live here: :meth:`kill` (SIGKILL: node loss mid-job),
    :meth:`pause`/:meth:`resume` (SIGSTOP/SIGCONT: a straggler that is
    alive but not making progress).
    """

    def __init__(
        self,
        name: str,
        data_dir: str,
        store_dir: str,
        jobs: int = 1,
        port: Optional[int] = None,
        extra_args: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.data_dir = data_dir
        self.port = port or free_port()
        self.address = f"127.0.0.1:{self.port}"
        os.makedirs(data_dir, exist_ok=True)
        src_dir = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.log_path = os.path.join(data_dir, "node.log")
        self._log = open(self.log_path, "w", encoding="utf-8")
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                str(self.port),
                "--data-dir",
                data_dir,
                "--store-dir",
                store_dir,
                "--jobs",
                str(jobs),
                "--node",
                name,
                *extra_args,
            ],
            env=env,
            stdout=self._log,
            stderr=subprocess.STDOUT,
        )
        self.paused = False
        self.killed = False

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None

    def wait_healthy(self, timeout: float = 60.0) -> None:
        client = HttpNodeClient(self.address, timeout=5.0)
        deadline = time.time() + timeout
        while time.time() < deadline:
            if not self.alive():
                raise NodeError(
                    f"node {self.name} exited {self.process.returncode}"
                    f" before becoming healthy (log: {self.log_path})"
                )
            try:
                client.health()
                return
            except NodeError:
                time.sleep(0.1)
        raise NodeError(f"node {self.name} never became healthy")

    # -- fault injectors ---------------------------------------------------

    def kill(self) -> None:
        """SIGKILL: abrupt node loss, no drain, no goodbye."""
        if self.alive():
            self.process.kill()
            self.process.wait(timeout=30)
        self.killed = True

    def pause(self) -> None:
        """SIGSTOP: the node stops making progress but stays 'alive'."""
        if self.alive():
            os.kill(self.pid, signal_module.SIGSTOP)
            self.paused = True

    def resume(self) -> None:
        """SIGCONT a paused node."""
        if self.paused and self.alive():
            os.kill(self.pid, signal_module.SIGCONT)
        self.paused = False

    # -- shutdown ----------------------------------------------------------

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful SIGTERM stop (drains in-flight work)."""
        self.resume()
        if self.alive():
            self.process.send_signal(signal_module.SIGTERM)
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=30)
        try:
            self._log.close()
        except OSError:  # pragma: no cover - best effort
            pass


def probe_loop(
    handles: Dict[str, NodeHandle],
    stop: threading.Event,
    interval: float,
    on_transition=None,
) -> None:
    """Shared prober body: round-robin ``/healthz`` over the handles.

    ``on_transition(handle, went_down)`` fires on every state flip; the
    coordinator uses it to count losses/recoveries and log.
    """
    while not stop.is_set():
        for handle in handles.values():
            try:
                handle.client.health()
            except NodeError:
                if handle.record_failure() and on_transition is not None:
                    on_transition(handle, True)
            else:
                if handle.record_success() and on_transition is not None:
                    on_transition(handle, False)
        stop.wait(interval)

"""Fault-injection load harness for the fleet (``phpsafe bench fleet``).

The acceptance bar of the multi-node service (ROADMAP item 1): a real
fleet — N ``phpsafe serve`` subprocesses behind an in-process
:class:`~repro.service.coordinator.FleetCoordinator` — must survive
mixed chaos traffic with **zero lost and zero duplicated results**:

- burst submissions of a synthetic plugin corpus (one oversized
  straggler-bait plugin included),
- duplicate submissions of the same plugins mid-flight,
- SIGKILL of a node that has work in flight (abrupt loss),
- SIGSTOP/SIGCONT of another node (a straggler that is alive but
  makes no progress).

Correctness is judged against a serial oracle: the same corpus scanned
by one in-process analyzer.  Every plugin's canonical finding
signatures (``repro.core.results.finding_signatures``) must match the
signatures decoded from the fleet's stored SARIF
(``repro.service.sarif.result_signatures``) exactly — the same parity
check the single-node service tests use.  Duplication is checked both
structurally (one result per distinct digest in the content-addressed
store) and from the client's view (duplicate submissions coalesce or
dedup onto the same result).

Throughput (sustained jobs/min) and queue-wait latency (p50/p99) are
recorded into ``BENCH_service.json`` through the shared
:func:`repro.benchgate.merge_bench` gate.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..benchgate import merge_bench
from ..batch.scheduler import ToolSpec
from ..core import PhpSafe
from ..core.results import finding_signatures
from ..plugin import Plugin
from .coordinator import FleetCoordinator
from .fleet import HttpNodeClient, LocalNodeProcess, NodeError, RetryPolicy
from .queue import DONE, FAILED, RUNNING
from .sarif import result_signatures


@dataclass
class ChaosConfig:
    """One chaos run's knobs (CLI flags map 1:1)."""

    nodes: int = 3
    kills: int = 1
    stalls: int = 1
    stall_seconds: float = 4.0
    plugins: int = 18
    duplicates: int = 6
    jobs_per_node: int = 1
    seed: int = 7
    deadline_seconds: float = 300.0
    out: Optional[str] = "BENCH_service.json"
    record_baseline: bool = False
    quick: bool = False
    keep: bool = False
    verbose: bool = False
    workdir: Optional[str] = None


@dataclass
class ChaosReport:
    """What happened, for the caller and the perf gate."""

    section: Dict[str, object] = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def synth_corpus(count: int, seed: int) -> List[Plugin]:
    """``count`` distinct vulnerable plugins plus one oversized one.

    Each plugin has a unique digest (index-salted sources) and a known
    mix of tainted/escaped sinks so the serial oracle has real findings
    to compare.  The last plugin is deliberately large — tens of
    analysis units — to act as straggler bait for SIGSTOP chaos.
    """
    rng = random.Random(seed)
    plugins: List[Plugin] = []
    for index in range(count):
        salt = rng.randrange(10**9)
        files = {
            "admin.php": (
                "<?php\n"
                f"// chaos plugin {index} salt {salt}\n"
                f"$name_{index} = $_GET['name'];\n"
                f"echo $name_{index};\n"
                f"echo esc_html($_GET['safe_{index}']);\n"
            ),
            "db.php": (
                "<?php\n"
                "function lookup_%d($wpdb) {\n"
                "    $id = $_REQUEST['id'];\n"
                "    return $wpdb->query(\"SELECT * FROM t WHERE id = $id\");\n"
                "}\n" % index
            ),
        }
        plugins.append(
            Plugin(name=f"chaos-{index:03d}", version="1.0", files=files)
        )
    big_units = []
    for unit in range(40):
        big_units.append(
            "function big_%d($x) {\n"
            "    $v = $_POST['field_%d'];\n"
            "    for ($i = 0; $i < 3; $i++) { $v = $v . $x; }\n"
            "    echo $v;\n"
            "}\n" % (unit, unit)
        )
    plugins.append(
        Plugin(
            name="chaos-oversized",
            version="1.0",
            files={"big.php": "<?php\n" + "".join(big_units)},
        )
    )
    return plugins


def serial_oracle(
    plugins: Sequence[Plugin], spec: ToolSpec
) -> Dict[str, Set[Tuple]]:
    """Single-process ground truth: plugin slug → finding signatures."""
    tool = spec.build()
    return {
        plugin.slug: finding_signatures([tool.analyze(plugin)])
        for plugin in plugins
    }


def _submit_with_retry(
    coordinator: FleetCoordinator,
    payload: Dict[str, object],
    policy: RetryPolicy,
    rng: random.Random,
    log,
) -> Tuple[Dict[str, object], int]:
    """The load generator's client loop: honor Retry-After on 429/503.

    Returns ``(job body, retries used)``; raises RuntimeError when the
    fleet never accepted the submission.
    """
    retries = 0
    for attempt in range(policy.max_attempts + 4):
        status, body = coordinator.submit(payload)
        if status in (200, 202):
            return body, retries
        if status in (429, 503):
            retries += 1
            hint = body.get("retry_after")
            delay = float(hint) if hint else policy.delay(attempt, rng)
            log(f"backpressure {status}; retrying in {delay:.2f}s")
            time.sleep(delay)
            continue
        raise RuntimeError(f"submission rejected ({status}): {body.get('error')}")
    raise RuntimeError("fleet never accepted the submission")


def run_chaos(config: ChaosConfig) -> ChaosReport:
    """Run one fleet chaos scenario; see the module docstring."""
    report = ChaosReport()
    rng = random.Random(config.seed)

    def log(message: str) -> None:
        if config.verbose:
            print(f"[chaos] {message}", flush=True)

    spec = ToolSpec.from_tool(PhpSafe())
    assert spec is not None
    plugins = synth_corpus(config.plugins, config.seed)
    log(f"serial oracle over {len(plugins)} plugins…")
    oracle = serial_oracle(plugins, spec)

    workdir = config.workdir or tempfile.mkdtemp(prefix="fleet-chaos-")
    store_dir = os.path.join(workdir, "store")
    nodes: List[LocalNodeProcess] = []
    coordinator: Optional[FleetCoordinator] = None
    try:
        log(f"starting {config.nodes} nodes (workdir {workdir})…")
        for index in range(config.nodes):
            nodes.append(
                LocalNodeProcess(
                    f"node{index}",
                    data_dir=os.path.join(workdir, f"node{index}"),
                    store_dir=store_dir,
                    jobs=config.jobs_per_node,
                )
            )
        for node in nodes:
            node.wait_healthy()
        clients = {
            node.name: HttpNodeClient(node.address, timeout=2.0)
            for node in nodes
        }
        coordinator = FleetCoordinator(
            data_dir=os.path.join(workdir, "coordinator"),
            nodes=clients,
            spec=spec,
            store_dir=store_dir,
            min_live=1,
            lease_seconds=15.0,
            probe_interval=0.25,
            poll_interval=0.1,
            poll_fail_threshold=3,
            verbose=config.verbose,
            seed=config.seed,
        )
        coordinator.start()

        # -- burst traffic -------------------------------------------------
        policy = RetryPolicy(base_delay=0.2, max_attempts=6)
        submissions: List[Tuple[str, str]] = []  # (plugin slug, job id)
        client_retries = 0
        started = time.perf_counter()
        order = list(plugins)
        rng.shuffle(order)
        for plugin in order:
            payload = {
                "name": plugin.name,
                "version": plugin.version,
                "files": dict(plugin.files),
            }
            body, retries = _submit_with_retry(
                coordinator, payload, policy, rng, log
            )
            client_retries += retries
            submissions.append((plugin.slug, str(body["id"])))
        log(f"burst of {len(submissions)} submissions in")

        # -- chaos: SIGKILL nodes that have work in flight -----------------
        killed: List[LocalNodeProcess] = []
        stalled: List[LocalNodeProcess] = []
        kill_budget = min(config.kills, max(0, config.nodes - 1))
        deadline = time.monotonic() + 30
        while kill_budget and time.monotonic() < deadline:
            busy = {
                job.node
                for job in coordinator.queue.jobs_in(RUNNING)
                if job.node
            }
            victims = [
                node
                for node in nodes
                if node.name in busy
                and node not in killed
                and len(killed) < config.nodes - 1
            ]
            if victims:
                victim = victims[0]
                log(f"SIGKILL {victim.name} (pid {victim.pid}) mid-job")
                victim.kill()
                killed.append(victim)
                kill_budget -= 1
            else:
                time.sleep(0.1)

        # -- chaos: SIGSTOP a straggler ------------------------------------
        stall_budget = config.stalls
        candidates = [node for node in nodes if node not in killed]
        for node in candidates:
            if not stall_budget or len(candidates) - len(stalled) <= 1:
                break
            log(f"SIGSTOP {node.name} for {config.stall_seconds}s (straggler)")
            node.pause()
            stalled.append(node)
            stall_budget -= 1
        # duplicate submissions land while the straggler is stopped
        duplicate_slugs = [
            plugin.slug
            for plugin in rng.sample(plugins, min(config.duplicates, len(plugins)))
        ]
        duplicate_ids: List[Tuple[str, str]] = []
        by_slug = {plugin.slug: plugin for plugin in plugins}
        for slug in duplicate_slugs:
            plugin = by_slug[slug]
            payload = {
                "name": plugin.name,
                "version": plugin.version,
                "files": dict(plugin.files),
            }
            body, retries = _submit_with_retry(
                coordinator, payload, policy, rng, log
            )
            client_retries += retries
            duplicate_ids.append((slug, str(body["id"])))
        if stalled:
            time.sleep(config.stall_seconds)
            for node in stalled:
                log(f"SIGCONT {node.name}")
                node.resume()

        # -- drain ---------------------------------------------------------
        all_ids = submissions + duplicate_ids
        deadline = time.monotonic() + config.deadline_seconds
        pending = {job_id: slug for slug, job_id in all_ids}
        while pending and time.monotonic() < deadline:
            for job_id in list(pending):
                _status, body = coordinator.job_status(job_id)
                if body.get("state") in (DONE, FAILED):
                    del pending[job_id]
            if pending:
                time.sleep(0.2)
        elapsed = time.perf_counter() - started
        if pending:
            report.failures.append(
                f"{len(pending)} job(s) never resolved within"
                f" {config.deadline_seconds}s: {sorted(pending.values())}"
            )

        # -- verify: zero lost ---------------------------------------------
        lost: List[str] = []
        mismatched: List[str] = []
        failed_jobs: List[str] = []
        digests: Dict[str, str] = {}
        for slug, job_id in all_ids:
            _status, body = coordinator.job_status(job_id)
            if body.get("state") != DONE:
                failed_jobs.append(
                    f"{slug} ({body.get('state')}: {body.get('error')})"
                )
                continue
            digest = str(body["digest"])
            digests[slug] = digest
            document = coordinator.store.get_result(
                digest, coordinator.fingerprint
            )
            if document is None or "sarif" not in document:
                lost.append(slug)
                continue
            fleet_signatures = result_signatures(document["sarif"])
            if fleet_signatures != oracle[slug]:
                mismatched.append(
                    f"{slug}: fleet {len(fleet_signatures)} vs serial"
                    f" {len(oracle[slug])} signatures"
                )
        if failed_jobs:
            report.failures.append(f"jobs failed: {failed_jobs}")
        if lost:
            report.failures.append(f"results lost (no stored SARIF): {lost}")
        if mismatched:
            report.failures.append(
                f"finding-signature mismatches vs serial scan: {mismatched}"
            )

        # -- verify: zero duplicated ---------------------------------------
        distinct = len(set(digests.values()))
        stored = coordinator.store.result_count()
        if stored != distinct:
            report.failures.append(
                f"duplicate results: store holds {stored} result(s) for"
                f" {distinct} distinct digest(s)"
            )
        for slug, job_id in duplicate_ids:
            if digests.get(slug) is None:
                continue
            original = next(
                (jid for s, jid in submissions if s == slug), None
            )
            if original is None:
                continue
            _status, body = coordinator.job_status(original)
            if str(body.get("digest")) != digests[slug]:
                report.failures.append(
                    f"duplicate submission of {slug} diverged from original"
                )

        # -- metrics → BENCH_service.json ----------------------------------
        _status, metrics = coordinator.metrics()
        fleet = metrics["fleet"]
        coord = metrics["coordinator"]
        completed = coord["completed"]
        section: Dict[str, object] = {
            "nodes": config.nodes,
            "kills": len(killed),
            "stalls": len(stalled),
            "plugins": len(plugins),
            "duplicates": len(duplicate_ids),
            "jobs_submitted": len(all_ids),
            "jobs_completed": completed,
            "elapsed_seconds": round(elapsed, 3),
            "jobs_per_minute": (
                round(completed / elapsed * 60.0, 2) if elapsed else 0.0
            ),
            "queue_wait_mean_seconds": coord["queue_wait"]["mean"],
            "queue_wait_p50_seconds": coord["queue_wait"]["p50"],
            "queue_wait_p99_seconds": coord["queue_wait"]["p99"],
            "client_retries": client_retries,
            "dispatch_retries": fleet["retries"],
            "failovers": fleet["failovers"],
            "steals": fleet["steals"],
            "steal_dedups": fleet["steal_dedups"],
            "shed_503": fleet["shed_503"],
            "nodes_lost": fleet["nodes_lost"],
            "nodes_recovered": fleet["nodes_recovered"],
            "quarantined": coord["quarantined"],
            "lost_results": len(lost),
            "duplicated_results": max(0, stored - distinct),
            "signature_parity": not mismatched,
        }
        if killed and not (fleet["steals"] or fleet["steal_dedups"]):
            # a kill with nothing stolen means the chaos missed its
            # target — the run proves less than it claims
            report.failures.append(
                "SIGKILL chaos produced no steal and no steal-dedup"
            )
        report.section = section
        return report
    finally:
        if coordinator is not None:
            coordinator.shutdown(timeout=5)
            coordinator.close()
        for node in nodes:
            node.stop()
        if not config.keep:
            shutil.rmtree(workdir, ignore_errors=True)
        elif config.verbose:
            print(f"[chaos] kept workdir {workdir}", flush=True)


def run_and_gate(config: ChaosConfig) -> int:
    """Run the scenario, write the perf gate, print the verdict."""
    report = run_chaos(config)
    if report.section and config.out:
        data = merge_bench(
            config.out,
            report.section,
            record_baseline=config.record_baseline,
            quick=config.quick,
        )
        print(f"fleet bench → {config.out}")
        print(json.dumps(data["current"], indent=1))
        speedup = data.get("speedup_vs_baseline")
        if speedup:
            print("speedup vs baseline:", speedup)
    elif report.section:
        print(json.dumps(report.section, indent=1))
    if not report.ok:
        for failure in report.failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "chaos run clean: zero lost, zero duplicated,"
        " finding signatures identical to the serial scan"
    )
    return 0


def build_arg_parser(parser: Optional[argparse.ArgumentParser] = None):
    parser = parser or argparse.ArgumentParser(
        description="fault-injection load harness for the phpsafe fleet"
    )
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--kill", dest="kills", type=int, default=1,
                        help="nodes to SIGKILL mid-job")
    parser.add_argument("--stall", dest="stalls", type=int, default=1,
                        help="nodes to SIGSTOP as stragglers")
    parser.add_argument("--stall-seconds", type=float, default=4.0)
    parser.add_argument("--plugins", type=int, default=18,
                        help="distinct synthetic plugins in the burst")
    parser.add_argument("--duplicates", type=int, default=6,
                        help="duplicate submissions injected mid-flight")
    parser.add_argument("--jobs-per-node", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--deadline", type=float, default=300.0,
                        help="seconds to wait for the fleet to drain")
    parser.add_argument("--out", default="BENCH_service.json",
                        help="perf-gate file ('' disables)")
    parser.add_argument("--record-baseline", action="store_true")
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus for CI smoke")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch workdir for debugging")
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


def config_from_args(args: argparse.Namespace) -> ChaosConfig:
    plugins = args.plugins
    duplicates = args.duplicates
    if args.quick:
        plugins = min(plugins, 8)
        duplicates = min(duplicates, 3)
    return ChaosConfig(
        nodes=args.nodes,
        kills=args.kills,
        stalls=args.stalls,
        stall_seconds=args.stall_seconds,
        plugins=plugins,
        duplicates=duplicates,
        jobs_per_node=args.jobs_per_node,
        seed=args.seed,
        deadline_seconds=args.deadline,
        out=args.out or None,
        record_baseline=args.record_baseline,
        quick=args.quick,
        keep=args.keep,
        verbose=args.verbose,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(
        list(argv) if argv is not None else None
    )
    return run_and_gate(config_from_args(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

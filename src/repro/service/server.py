"""Analysis-as-a-service: the daemon behind ``phpsafe serve``.

The paper positions phpSAFE as a web service plugin developers and
marketplace maintainers submit code to (Section III); this module is
that front end for the reproduction.  Two layers:

:class:`AnalysisService`
    The service brain, fully usable without HTTP (the integration
    tests drive it directly): content-addressed submission through the
    :class:`~repro.service.store.ResultStore`, durable queueing with
    bounded depth, the :class:`~repro.service.workers.WorkerPool`, and
    live metrics on telemetry schema v6.

:class:`ServiceServer` / :func:`run_service`
    A stdlib-only asyncio HTTP/1.1 front end::

        POST /v1/scans            submit {"name", "files": {path: src}}
                                  or {"path": "/plugin/checkout"}
        GET  /v1/scans/{id}       job status + result document
        GET  /v1/scans/{id}/sarif SARIF 2.1.0 report
        GET  /v1/scans/{id}/sarif/baseline
                                  same report with each result's
                                  baselineState (new/unchanged/absent)
                                  vs the nearest prior scan of the
                                  plugin's lineage — the service side
                                  of the fail-only-on-new gate
        GET  /healthz             liveness
        GET  /metrics             telemetry v6 + queue state
        GET  /fleet               coordinator-only: per-node fleet view

    Responses are JSON; overload returns 429 (and degraded fleets 503)
    with a ``Retry-After`` header clients are expected to honor.
    SIGTERM/SIGINT trigger
    the graceful sequence: stop accepting, drain in-flight jobs,
    leave everything else queued in the sqlite spool — zero accepted
    jobs lost across a restart.
"""

from __future__ import annotations

import asyncio
import functools
import json
import math
import os
import signal as signal_module
import threading
import time
from hashlib import sha256
from typing import Callable, Dict, Optional, Tuple

from ..batch.scheduler import ToolSpec
from ..batch.telemetry import ServiceStats
from ..plugin import Plugin
from .queue import DONE, FAILED, JobQueue, QueueFull
from .store import ResultStore
from .workers import WorkerPool

#: request body cap (a plugin source upload, JSON-encoded)
MAX_BODY_BYTES = 32 * 1024 * 1024

_Response = Tuple[int, Dict[str, object]]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _canonical(value: object) -> object:
    """Hash-stable view of an options object.

    ``repr`` alone is NOT stable across processes: set/frozenset
    iteration order follows randomized string hashing, so two fleet
    nodes would disagree on the same configuration's fingerprint and
    never share cached results.  Dataclasses expand field by field,
    sets and dicts sort, everything else falls back to ``repr``."""
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (field.name, _canonical(getattr(value, field.name)))
                for field in dataclasses.fields(value)
            ),
        )
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(item)) for item in value)))
    if isinstance(value, dict):
        return (
            "dict",
            tuple(
                sorted((repr(key), repr(_canonical(item)))
                       for key, item in value.items())
            ),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    return repr(value)


def spec_fingerprint(spec: ToolSpec) -> str:
    """Analyzer-configuration identity of stored results: the same
    plugin bytes analyzed under different options must not share a
    cached report.  Shared by every store writer (single-node service,
    fleet nodes, coordinator) so they key results identically — and
    deterministic across processes (see :func:`_canonical`).

    Beyond the options dataclass, the fingerprint folds in the
    *resolved* knowledge-base fingerprint whenever the options name a
    profile or rule packs: ``_canonical`` only sees pack *references*
    (paths/names), but editing a pack file changes its content hash and
    must invalidate stored results and dedup decisions too."""
    parts: Tuple[object, ...] = (spec.name, _canonical(spec.options))
    options = spec.options
    if options is not None and (
        getattr(options, "profile_name", None) or getattr(options, "rule_packs", ())
    ):
        from ..rules import resolve_profile

        parts = parts + (resolve_profile(options).fingerprint(),)
    return sha256(repr(parts).encode("utf-8")).hexdigest()[:16]


def plugin_from_payload(store: ResultStore, payload: Dict[str, object]) -> Plugin:
    """Resolve a submission payload to a :class:`Plugin`.

    Accepts, in precedence order: ``{"digest": ...}`` (submit by
    reference to a plugin already persisted in the — possibly shared —
    store; how a fleet coordinator re-dispatches a stolen job without
    shipping the bytes again), ``{"path": ...}`` (a checkout or single
    file on the service host), or ``{"name", "files": {path: src}}``
    (an inline upload).  Raises :class:`ValueError` on anything else.
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    digest = payload.get("digest")
    if digest:
        if not isinstance(digest, str):
            raise ValueError("'digest' must be a string")
        plugin = store.load_plugin(digest)
        if plugin is None:
            raise ValueError(f"unknown plugin digest {digest[:16]!r}…")
        return plugin
    path = payload.get("path")
    if path:
        if not isinstance(path, str) or not os.path.exists(path):
            raise ValueError(f"path does not exist: {path!r}")
        if os.path.isdir(path):
            plugin = Plugin.load_from(path)
        else:
            with open(path, "r", encoding="utf-8", errors="replace") as handle:
                source = handle.read()
            name = os.path.basename(path)
            plugin = Plugin(name=name, files={name: source})
        if not plugin.files:
            raise ValueError(f"no PHP files under {path!r}")
        return plugin
    files = payload.get("files")
    if not isinstance(files, dict) or not files:
        raise ValueError("payload needs a non-empty 'files' object or a 'path'")
    for file_path, source in files.items():
        if not isinstance(file_path, str) or not isinstance(source, str):
            raise ValueError("'files' must map relative paths to source text")
    return Plugin(
        name=str(payload.get("name") or "submission"),
        version=str(payload.get("version") or ""),
        files=dict(files),
    )


class StoreReadMixin:
    """Read-side endpoints shared by the single-node service and the
    fleet coordinator: both resolve jobs from ``self.queue`` and
    results/lineage from ``self.store``, so status, SARIF and
    SARIF-baseline lookups are one implementation."""

    def job_status(self, job_id: str) -> _Response:
        job = self.queue.get(job_id)
        if job is None:
            return 404, {"error": f"unknown scan id {job_id!r}"}
        body = job.to_dict()
        if job.state in (DONE, FAILED):
            document = self.store.get_result(job.digest, job.fingerprint)
            if document is not None:
                body["result"] = {
                    key: value for key, value in document.items() if key != "sarif"
                }
        return 200, body

    def sarif(self, job_id: str) -> _Response:
        job = self.queue.get(job_id)
        if job is None:
            return 404, {"error": f"unknown scan id {job_id!r}"}
        if job.state not in (DONE, FAILED):
            return 409, {"error": "scan not finished", "state": job.state}
        document = self.store.get_result(job.digest, job.fingerprint)
        if document is None or "sarif" not in document:
            return 404, {"error": "no stored result for this scan"}
        return 200, document["sarif"]  # type: ignore[return-value]

    def sarif_baseline(self, job_id: str) -> _Response:
        """The scan's SARIF log with each result's ``baselineState``
        computed against the nearest prior scan of the same plugin
        lineage (same analyzer fingerprint).  A first scan — nothing
        prior in the lineage — marks every result ``new``.
        """
        from .sarif import apply_baseline, new_result_count

        status, document = self.sarif(job_id)
        if status != 200:
            return status, document
        job = self.queue.get(job_id)
        assert job is not None  # sarif() already resolved it
        baseline: Dict[str, object] = {"runs": []}
        plugin = self.store.load_plugin(job.digest)
        if plugin is not None:
            for digest in reversed(self.store.lineage(plugin.name)):
                if digest == job.digest:
                    continue
                prior = self.store.get_result(digest, job.fingerprint)
                if prior is not None and "sarif" in prior:
                    baseline = prior["sarif"]  # type: ignore[assignment]
                    break
        counts = apply_baseline(document, baseline)
        # log-level properties bag (SARIF §3.13.8): the gate's counts
        document.setdefault("properties", {})["baseline"] = dict(counts)
        document["properties"]["newResults"] = new_result_count(document)
        return 200, document


class AnalysisService(StoreReadMixin):
    """Queue + store + worker pool behind one submission API."""

    def __init__(
        self,
        data_dir: str,
        spec: Optional[ToolSpec] = None,
        jobs: int = 2,
        timeout: Optional[float] = None,
        cache_dir: Optional[str] = None,
        max_queue_depth: int = 64,
        max_attempts: int = 2,
        isolation: str = "process",
        store_dir: Optional[str] = None,
        node_name: Optional[str] = None,
        retry_after: float = 1.0,
    ) -> None:
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)
        self.spec = spec or ToolSpec()
        self.fingerprint = self._spec_fingerprint(self.spec)
        #: fleet identity of this node (None outside a fleet)
        self.node_name = node_name
        #: Retry-After hint attached to 429/503 answers
        self.retry_after = retry_after
        # ``store_dir`` lets fleet nodes share one content-addressed
        # result store (atomic writes make that safe by design) while
        # keeping spool and cache private per node
        self.store = ResultStore(store_dir or os.path.join(data_dir, "store"))
        self.queue = JobQueue(
            os.path.join(data_dir, "jobs.sqlite"),
            max_depth=max_queue_depth,
            max_attempts=max_attempts,
        )
        #: jobs a previous daemon left running; requeued at startup so
        #: a crash/restart never loses accepted work
        self.requeued = self.queue.recover()
        self.stats = ServiceStats()
        self.pool = WorkerPool(
            self.queue,
            self.store,
            spec=self.spec,
            jobs=jobs,
            timeout=timeout,
            cache_dir=cache_dir or os.path.join(data_dir, "cache"),
            isolation=isolation,
            stats=self.stats,
        )
        self.accepting = True
        self._started_at = time.monotonic()

    #: kept as a method for callers/tests; the shared implementation is
    #: :func:`spec_fingerprint`
    _spec_fingerprint = staticmethod(spec_fingerprint)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.pool.start()

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Graceful: stop accepting, drain in-flight, keep the spool."""
        self.accepting = False
        return self.pool.stop(timeout=timeout)

    def close(self) -> None:
        self.queue.close()

    # -- submission --------------------------------------------------------

    def submit(self, payload: Dict[str, object]) -> _Response:
        if not self.accepting:
            return 503, {
                "error": "service is shutting down",
                "retry_after": self.retry_after,
            }
        try:
            plugin = self._plugin_from_payload(payload)
        except ValueError as error:
            return 400, {"error": str(error)}
        digest = self.store.put_plugin(plugin)
        cached = self.store.get_result(digest, self.fingerprint)
        if cached is not None:
            job, _created = self.queue.submit(
                digest, self.fingerprint, plugin.slug, cached=True
            )
            self.stats.deduped += 1
            body = job.to_dict()
            body["cached"] = True
            return 200, body
        try:
            job, created = self.queue.submit(digest, self.fingerprint, plugin.slug)
        except QueueFull as error:
            self.stats.rejected += 1
            return 429, {
                "error": str(error),
                "retry": True,
                "retry_after": self.retry_after,
            }
        if created:
            self.stats.accepted += 1
        depth = self.queue.depth()
        if depth > self.stats.queue_depth_peak:
            self.stats.queue_depth_peak = depth
        body = job.to_dict()
        body["coalesced"] = not created
        return 202, body

    def _plugin_from_payload(self, payload: Dict[str, object]) -> Plugin:
        return plugin_from_payload(self.store, payload)

    # -- reads (status/SARIF lookups come from StoreReadMixin) -------------

    def health(self) -> _Response:
        body = {
            "status": "ok",
            "accepting": self.accepting,
            "workers": self.pool.jobs,
            "queue_depth": self.queue.depth(),
        }
        if self.node_name:
            body["node"] = self.node_name
        return 200, body

    def metrics(self) -> _Response:
        self.stats.queue_depth = self.queue.depth()
        self.stats.uptime_seconds = time.monotonic() - self._started_at
        self.pool.telemetry.wall_seconds = self.stats.uptime_seconds
        document = self.pool.telemetry.to_dict()
        document["queue"] = self.queue.counts()
        document["requeued_at_startup"] = self.requeued
        if self.node_name:
            document["node"] = self.node_name
        return 200, document


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------


class ServiceServer:
    """Minimal asyncio HTTP/1.1 server over an :class:`AnalysisService`."""

    def __init__(
        self, service: AnalysisService, host: str = "127.0.0.1", port: int = 8787
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        # port 0 means "pick one"; report what the OS chose
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _BadRequest as error:
                await self._respond(writer, error.status, {"error": str(error)})
                return
            status, document = await self._dispatch(method, path, body)
            await self._respond(writer, status, document)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        except Exception as error:  # pragma: no cover - defensive
            try:
                await self._respond(
                    writer, 500, {"error": f"internal error: {error!r}"}
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise _BadRequest("empty request")
        try:
            method, path, _version = request_line.decode("latin-1").split()
        except ValueError:
            raise _BadRequest("malformed request line")
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadRequest("bad Content-Length")
        if content_length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"body of {content_length} bytes exceeds {MAX_BODY_BYTES}",
                status=413,
            )
        body = await reader.readexactly(content_length) if content_length else b""
        return method.upper(), path.split("?", 1)[0], body

    async def _dispatch(self, method: str, path: str, body: bytes) -> _Response:
        loop = asyncio.get_running_loop()
        service = self.service
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "GET only"}
            return service.health()
        if path == "/fleet" and hasattr(service, "fleet_status"):
            if method != "GET":
                return 405, {"error": "GET only"}
            return await loop.run_in_executor(None, service.fleet_status)
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "GET only"}
            return await loop.run_in_executor(None, service.metrics)
        if path == "/v1/scans":
            if method != "POST":
                return 405, {"error": "POST only"}
            try:
                payload = json.loads(body.decode("utf-8") or "null")
            except (UnicodeDecodeError, ValueError):
                return 400, {"error": "request body is not valid JSON"}
            return await loop.run_in_executor(
                None, functools.partial(service.submit, payload)
            )
        if path.startswith("/v1/scans/"):
            if method != "GET":
                return 405, {"error": "GET only"}
            rest = path[len("/v1/scans/") :]
            if rest.endswith("/sarif/baseline"):
                job_id = rest[: -len("/sarif/baseline")].strip("/")
                return await loop.run_in_executor(
                    None, functools.partial(service.sarif_baseline, job_id)
                )
            if rest.endswith("/sarif"):
                job_id = rest[: -len("/sarif")].strip("/")
                return await loop.run_in_executor(
                    None, functools.partial(service.sarif, job_id)
                )
            job_id = rest.strip("/")
            return await loop.run_in_executor(
                None, functools.partial(service.job_status, job_id)
            )
        return 404, {"error": f"no route for {path}"}

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, document: Dict[str, object]
    ) -> None:
        payload = json.dumps(document, indent=1).encode("utf-8")
        reason = _REASONS.get(status, "OK")
        extra = ""
        if status in (429, 503) and isinstance(document, dict):
            # overload/degraded answers carry the backoff hint both in
            # the body (JSON clients) and as the standard header
            retry_after = document.get("retry_after")
            if retry_after is not None:
                extra = f"Retry-After: {max(1, math.ceil(float(retry_after)))}\r\n"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json; charset=utf-8\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()


class _BadRequest(Exception):
    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


# ---------------------------------------------------------------------------
# running it
# ---------------------------------------------------------------------------


async def serve(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 8787,
    install_signal_handlers: bool = True,
    on_ready: Optional[Callable[[str, int], None]] = None,
    shutdown_timeout: Optional[float] = None,
) -> None:
    """Serve until SIGTERM/SIGINT, then shut down gracefully."""
    server = ServiceServer(service, host, port)
    await server.start()
    service.start()
    if on_ready is not None:
        on_ready(server.host, server.port)
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    if install_signal_handlers:
        for sig in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                loop.add_signal_handler(sig, stop_event.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    try:
        await stop_event.wait()
    finally:
        # stop accepting first, then drain in-flight jobs; queued jobs
        # stay in the sqlite spool for the next daemon
        service.accepting = False
        await server.close()
        await loop.run_in_executor(
            None, functools.partial(service.shutdown, shutdown_timeout)
        )
        for sig in installed:
            loop.remove_signal_handler(sig)


def run_service(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 8787,
    on_ready: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Blocking entry point used by ``phpsafe serve``."""
    asyncio.run(serve(service, host, port, on_ready=on_ready))


class BackgroundServer:
    """The full HTTP service on a background thread (tests, smoke runs)."""

    def __init__(
        self, service: AnalysisService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.server = ServiceServer(service, host, port)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._thread_main, name="phpsafe-http", daemon=True
        )

    def _thread_main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.close())
            self._loop.close()

    def start(self) -> Tuple[str, int]:
        self.service.start()
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("HTTP front end failed to start")
        return self.server.host, self.server.port

    def stop(self, drain_timeout: Optional[float] = None) -> None:
        """Graceful: close the listener, then drain the worker pool."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self.service.shutdown(timeout=drain_timeout)

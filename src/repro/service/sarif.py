"""SARIF 2.1.0 export of analysis reports.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code-scanning consumers — GitHub code scanning, VS Code SARIF
viewers, defect-tracking importers — ingest, so it is the daemon's
interchange surface and the ``report --format sarif`` CLI output.

Mapping:

* each :class:`~repro.core.results.ToolReport` becomes one ``run``;
* each :class:`~repro.core.results.Finding` becomes one ``result``
  with rule id ``phpsafe/<kind>``, the sink location as its physical
  location, the variable-to-variable flow as a ``codeFlow``, and a
  ``partialFingerprints`` entry carrying the canonical finding
  signature (plugin/kind/file/line/sink — the identity the
  differential harness compares);
* typed :class:`~repro.incidents.Incident` records become
  ``invocations[0].toolExecutionNotifications`` so robustness
  degradation travels with the findings;
* coverage / LOC / perf land in run ``properties``.

:func:`result_signatures` inverts the fingerprint encoding, which is
how the service tests prove the export round-trips losslessly.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.results import Finding, FindingSignature, ToolReport
from ..core.review import fix_hint, sorted_findings
from ..incidents import Incident, IncidentSeverity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)

#: rule catalogue: kind value -> (name, description)
_RULES: Dict[str, Tuple[str, str]] = {
    "xss": (
        "CrossSiteScripting",
        "Tainted input reaches an HTML output sink without "
        "context-appropriate escaping.",
    ),
    "sqli": (
        "SqlInjection",
        "Tainted input reaches a database query sink without "
        "parameterization or escaping.",
    ),
    "cmdi": (
        "CommandInjection",
        "Tainted input reaches an OS command sink without shell quoting.",
    ),
    "lfi": (
        "FileInclusion",
        "Tainted input controls the target of an include/require.",
    ),
}

_NOTIFICATION_LEVELS = {
    IncidentSeverity.WARNING: "warning",
    IncidentSeverity.ERROR: "error",
    IncidentSeverity.FATAL: "error",
}


def rule_id(kind_value: str) -> str:
    return f"phpsafe/{kind_value}"


def _rule(kind_value: str) -> Dict[str, object]:
    name, description = _RULES.get(
        kind_value, (kind_value.upper(), "Tainted input reaches a sensitive sink.")
    )
    return {
        "id": rule_id(kind_value),
        "name": name,
        "shortDescription": {"text": name},
        "fullDescription": {"text": description},
        "defaultConfiguration": {"level": "error"},
        "properties": {"tags": ["security", kind_value]},
    }


def _fingerprint(finding: Finding, plugin: str) -> str:
    """Canonical signature, encoded; ``/`` never occurs in the parts
    SARIF consumers compare, and the separator cannot collide with PHP
    identifiers or relative paths because of the escaping below."""
    parts = (
        finding.plugin or plugin,
        finding.kind.value,
        finding.file,
        str(finding.line),
        finding.sink,
    )
    return "|".join(part.replace("\\", "\\\\").replace("|", "\\|") for part in parts)


def _split_fingerprint(encoded: str) -> List[str]:
    parts: List[str] = []
    current: List[str] = []
    escaped = False
    for char in encoded:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\":
            escaped = True
        elif char == "|":
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


def _location(file: str, line: int) -> Dict[str, object]:
    region: Dict[str, object] = {}
    if line:
        region["startLine"] = line
    location: Dict[str, object] = {
        "physicalLocation": {"artifactLocation": {"uri": file}}
    }
    if region:
        location["physicalLocation"]["region"] = region
    return location


def finding_to_result(finding: Finding, plugin: str = "") -> Dict[str, object]:
    message = f"{finding.describe()} — fix: {fix_hint(finding)}"
    result: Dict[str, object] = {
        "ruleId": rule_id(finding.kind.value),
        "level": "error",
        "message": {"text": message},
        "locations": [_location(finding.file, finding.line)],
        "partialFingerprints": {
            "phpsafe/findingSignature/v1": _fingerprint(finding, plugin)
        },
        "properties": {
            "sink": finding.sink,
            "variable": finding.variable,
            "vectors": [vector.value for vector in finding.vectors],
            "viaOop": finding.via_oop,
            "markupContext": finding.markup_context,
            "plugin": finding.plugin or plugin,
        },
    }
    if finding.trace:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": {
                                    **_location(finding.file, finding.line),
                                    "message": {"text": step},
                                }
                            }
                            for step in finding.trace
                        ]
                    }
                ]
            }
        ]
    return result


def _incident_notification(incident: Incident) -> Dict[str, object]:
    notification: Dict[str, object] = {
        "level": _NOTIFICATION_LEVELS.get(incident.severity, "warning"),
        "message": {"text": incident.describe()},
        "descriptor": {"id": f"phpsafe/incident/{incident.stage.value}"},
        "properties": incident.to_dict(),
    }
    if incident.file and not incident.file.startswith("<"):
        notification["locations"] = [_location(incident.file, incident.line)]
    return notification


def report_to_run(report: ToolReport, tool_version: str = "1.0.0") -> Dict[str, object]:
    """One SARIF ``run`` for one plugin's report."""
    kinds_used = sorted({finding.kind.value for finding in report.findings})
    fatal = any(
        incident.severity is IncidentSeverity.FATAL for incident in report.incidents
    )
    invocation: Dict[str, object] = {"executionSuccessful": not fatal}
    if report.incidents:
        invocation["toolExecutionNotifications"] = [
            _incident_notification(incident) for incident in report.incidents
        ]
    return {
        "tool": {
            "driver": {
                "name": report.tool,
                "informationUri": "https://doi.org/10.1109/DSN.2015.16",
                "version": tool_version,
                "rules": [_rule(kind) for kind in kinds_used],
            }
        },
        "automationDetails": {"id": f"phpsafe/scan/{report.plugin}"},
        "invocations": [invocation],
        "results": [
            finding_to_result(finding, report.plugin)
            for finding in sorted_findings(report)
        ],
        "columnKind": "utf16CodeUnits",
        "properties": {
            "plugin": report.plugin,
            "filesAnalyzed": report.files_analyzed,
            "locAnalyzed": report.loc_analyzed,
            "filesSkipped": report.files_skipped,
            "locSkipped": report.loc_skipped,
            "coverage": round(report.coverage, 4),
            "seconds": round(report.seconds, 4),
        },
    }


def to_sarif(
    reports: Union[ToolReport, Sequence[ToolReport]],
    tool_version: str = "1.0.0",
) -> Dict[str, object]:
    """A complete SARIF 2.1.0 log: one run per report."""
    if isinstance(reports, ToolReport):
        reports = [reports]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [report_to_run(report, tool_version) for report in reports],
    }


def to_sarif_json(
    reports: Union[ToolReport, Sequence[ToolReport]],
    tool_version: str = "1.0.0",
    indent: Optional[int] = 1,
) -> str:
    return json.dumps(to_sarif(reports, tool_version), indent=indent)


def result_signatures(document: Dict[str, object]) -> Set[FindingSignature]:
    """Decode every result's canonical finding signature.

    The inverse of the ``partialFingerprints`` encoding; the service
    parity tests compare this set against
    :func:`repro.core.results.finding_signatures` of a direct scan to
    prove the SARIF export is lossless and duplicate-free.
    """
    signatures: Set[FindingSignature] = set()
    for run in document.get("runs", ()):  # type: ignore[union-attr]
        for result in run.get("results", ()):
            encoded = result.get("partialFingerprints", {}).get(
                "phpsafe/findingSignature/v1"
            )
            if not encoded:
                continue
            plugin, kind, file, line, sink = _split_fingerprint(encoded)
            signatures.add((plugin, kind, file, int(line), sink))
    return signatures


def result_count(document: Dict[str, object]) -> int:
    """Total results across runs (round-trip cardinality check)."""
    return sum(len(run.get("results", ())) for run in document.get("runs", ()))

"""SARIF 2.1.0 export of analysis reports.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code-scanning consumers — GitHub code scanning, VS Code SARIF
viewers, defect-tracking importers — ingest, so it is the daemon's
interchange surface and the ``report --format sarif`` CLI output.

Mapping:

* each :class:`~repro.core.results.ToolReport` becomes one ``run``;
* each :class:`~repro.core.results.Finding` becomes one ``result``
  with rule id ``phpsafe/<kind>``, the sink location as its physical
  location, the variable-to-variable flow as a ``codeFlow``, and a
  ``partialFingerprints`` entry carrying the canonical finding
  signature (plugin/kind/file/line/sink — the identity the
  differential harness compares);
* typed :class:`~repro.incidents.Incident` records become
  ``invocations[0].toolExecutionNotifications`` so robustness
  degradation travels with the findings;
* coverage / LOC / perf land in run ``properties``.

:func:`result_signatures` inverts the fingerprint encoding, which is
how the service tests prove the export round-trips losslessly.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence, Set, Union

from ..config import VulnKind
from ..core.results import Finding, FindingSignature, ToolReport
from ..core.review import fix_hint, sorted_findings
from ..incidents import Incident, IncidentSeverity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)

_NOTIFICATION_LEVELS = {
    IncidentSeverity.WARNING: "warning",
    IncidentSeverity.ERROR: "error",
    IncidentSeverity.FATAL: "error",
}


def rule_id(kind_value: str) -> str:
    return f"phpsafe/{kind_value}"


def _rule_name(kind: VulnKind) -> str:
    """SARIF rule name: the registry title CamelCased (``Cross-site
    scripting`` -> ``CrossSiteScripting``), or the upper-cased value for
    kinds registered without metadata."""
    words = [word for word in re.split(r"[^0-9A-Za-z]+", kind.title) if word]
    if not words:
        return kind.value.upper()
    return "".join(word.capitalize() for word in words)


def _rule(kind: VulnKind) -> Dict[str, object]:
    """Rule metadata straight from the kind registry, so pack-introduced
    kinds carry their pack's title/description instead of a hard-coded
    catalogue entry."""
    name = _rule_name(kind)
    description = (
        kind.description or "Tainted input reaches a sensitive sink."
    )
    return {
        "id": rule_id(kind.value),
        "name": name,
        "shortDescription": {"text": kind.title or name},
        "fullDescription": {"text": description},
        "defaultConfiguration": {"level": "error"},
        "properties": {"tags": ["security", kind.value]},
    }


def _fingerprint(finding: Finding, plugin: str) -> str:
    """Canonical signature, encoded; ``/`` never occurs in the parts
    SARIF consumers compare, and the separator cannot collide with PHP
    identifiers or relative paths because of the escaping below."""
    parts = (
        finding.plugin or plugin,
        finding.kind.value,
        finding.file,
        str(finding.line),
        finding.sink,
    )
    return "|".join(part.replace("\\", "\\\\").replace("|", "\\|") for part in parts)


def _split_fingerprint(encoded: str) -> List[str]:
    parts: List[str] = []
    current: List[str] = []
    escaped = False
    for char in encoded:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\":
            escaped = True
        elif char == "|":
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


def _location(file: str, line: int) -> Dict[str, object]:
    region: Dict[str, object] = {}
    if line:
        region["startLine"] = line
    location: Dict[str, object] = {
        "physicalLocation": {"artifactLocation": {"uri": file}}
    }
    if region:
        location["physicalLocation"]["region"] = region
    return location


def finding_to_result(finding: Finding, plugin: str = "") -> Dict[str, object]:
    message = f"{finding.describe()} — fix: {fix_hint(finding)}"
    result: Dict[str, object] = {
        "ruleId": rule_id(finding.kind.value),
        "level": "error",
        "message": {"text": message},
        "locations": [_location(finding.file, finding.line)],
        "partialFingerprints": {
            "phpsafe/findingSignature/v1": _fingerprint(finding, plugin)
        },
        "properties": {
            "sink": finding.sink,
            "variable": finding.variable,
            "vectors": [vector.value for vector in finding.vectors],
            "viaOop": finding.via_oop,
            "markupContext": finding.markup_context,
            "plugin": finding.plugin or plugin,
        },
    }
    if finding.trace:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": {
                                    **_location(finding.file, finding.line),
                                    "message": {"text": step},
                                }
                            }
                            for step in finding.trace
                        ]
                    }
                ]
            }
        ]
    return result


def _incident_notification(incident: Incident) -> Dict[str, object]:
    notification: Dict[str, object] = {
        "level": _NOTIFICATION_LEVELS.get(incident.severity, "warning"),
        "message": {"text": incident.describe()},
        "descriptor": {"id": f"phpsafe/incident/{incident.stage.value}"},
        "properties": incident.to_dict(),
    }
    if incident.file and not incident.file.startswith("<"):
        notification["locations"] = [_location(incident.file, incident.line)]
    return notification


def report_to_run(report: ToolReport, tool_version: str = "1.0.0") -> Dict[str, object]:
    """One SARIF ``run`` for one plugin's report."""
    kinds_used = sorted(
        {finding.kind for finding in report.findings}, key=lambda kind: kind.value
    )
    fatal = any(
        incident.severity is IncidentSeverity.FATAL for incident in report.incidents
    )
    invocation: Dict[str, object] = {"executionSuccessful": not fatal}
    if report.incidents:
        invocation["toolExecutionNotifications"] = [
            _incident_notification(incident) for incident in report.incidents
        ]
    return {
        "tool": {
            "driver": {
                "name": report.tool,
                "informationUri": "https://doi.org/10.1109/DSN.2015.16",
                "version": tool_version,
                "rules": [_rule(kind) for kind in kinds_used],
            }
        },
        "automationDetails": {"id": f"phpsafe/scan/{report.plugin}"},
        "invocations": [invocation],
        "results": [
            finding_to_result(finding, report.plugin)
            for finding in sorted_findings(report)
        ],
        "columnKind": "utf16CodeUnits",
        "properties": {
            "plugin": report.plugin,
            "filesAnalyzed": report.files_analyzed,
            "locAnalyzed": report.loc_analyzed,
            "filesSkipped": report.files_skipped,
            "locSkipped": report.loc_skipped,
            "coverage": round(report.coverage, 4),
            "seconds": round(report.seconds, 4),
        },
    }


def to_sarif(
    reports: Union[ToolReport, Sequence[ToolReport]],
    tool_version: str = "1.0.0",
) -> Dict[str, object]:
    """A complete SARIF 2.1.0 log: one run per report."""
    if isinstance(reports, ToolReport):
        reports = [reports]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [report_to_run(report, tool_version) for report in reports],
    }


def to_sarif_json(
    reports: Union[ToolReport, Sequence[ToolReport]],
    tool_version: str = "1.0.0",
    indent: Optional[int] = 1,
) -> str:
    return json.dumps(to_sarif(reports, tool_version), indent=indent)


def result_signatures(document: Dict[str, object]) -> Set[FindingSignature]:
    """Decode every result's canonical finding signature.

    The inverse of the ``partialFingerprints`` encoding; the service
    parity tests compare this set against
    :func:`repro.core.results.finding_signatures` of a direct scan to
    prove the SARIF export is lossless and duplicate-free.
    """
    signatures: Set[FindingSignature] = set()
    for run in document.get("runs", ()):  # type: ignore[union-attr]
        for result in run.get("results", ()):
            encoded = result.get("partialFingerprints", {}).get(
                "phpsafe/findingSignature/v1"
            )
            if not encoded:
                continue
            plugin, kind, file, line, sink = _split_fingerprint(encoded)
            signatures.add((plugin, kind, file, int(line), sink))
    return signatures


def result_count(document: Dict[str, object]) -> int:
    """Total results across runs (round-trip cardinality check)."""
    return sum(len(run.get("results", ())) for run in document.get("runs", ()))


def _result_fingerprint(result: Dict[str, object]) -> str:
    return result.get("partialFingerprints", {}).get(  # type: ignore[union-attr]
        "phpsafe/findingSignature/v1", ""
    )


def _baseline_key(encoded: str) -> str:
    """Baseline-matching identity of a fingerprint.

    Baseline comparison is inherently cross-version — the whole point
    is relating a new release's scan to the previous release's — so the
    ``@version`` qualifier the plugin slug may carry must not break the
    match (the same convention :mod:`repro.history` uses).
    """
    parts = _split_fingerprint(encoded)
    if parts:
        parts[0] = parts[0].split("@", 1)[0]
    return "|".join(
        part.replace("\\", "\\\\").replace("|", "\\|") for part in parts
    )


def apply_baseline(
    document: Dict[str, object], baseline: Dict[str, object]
) -> Dict[str, int]:
    """Mark every result's ``baselineState`` against a prior SARIF log.

    SARIF baseline semantics (§3.27.25), matched on the canonical
    ``partialFingerprints`` signature:

    * ``unchanged`` — present in both the current log and the baseline;
    * ``new`` — present now, absent from the baseline (what a CI gate
      in fail-only-on-new mode fails on);
    * ``absent`` — present in the baseline only; a copy of the
      baseline's result is appended with ``baselineState: absent`` so
      fixed findings stay visible to consumers that track closure.

    Mutates ``document`` in place and returns the per-state counts
    (also stored under each run's ``properties.baseline``).
    """
    baseline_results: Dict[str, Dict[str, object]] = {}
    for run in baseline.get("runs", ()):  # type: ignore[union-attr]
        for result in run.get("results", ()):
            fingerprint = _result_fingerprint(result)
            if fingerprint:
                baseline_results.setdefault(_baseline_key(fingerprint), result)
    counts = {"new": 0, "unchanged": 0, "absent": 0}
    matched: Set[str] = set()
    for run in document.get("runs", ()):  # type: ignore[union-attr]
        run_counts = {"new": 0, "unchanged": 0, "absent": 0}
        for result in run.get("results", ()):
            key = _baseline_key(_result_fingerprint(result))
            if key and key in baseline_results:
                result["baselineState"] = "unchanged"
                matched.add(key)
                run_counts["unchanged"] += 1
            else:
                result["baselineState"] = "new"
                run_counts["new"] += 1
        for key, old_result in baseline_results.items():
            if key in matched:
                continue
            absent = dict(old_result)
            absent["baselineState"] = "absent"
            run.setdefault("results", []).append(absent)
            matched.add(key)
            run_counts["absent"] += 1
        run.setdefault("properties", {})["baseline"] = dict(run_counts)
        for state, count in run_counts.items():
            counts[state] += count
    return counts


def new_result_count(document: Dict[str, object]) -> int:
    """Results marked ``baselineState: new`` (the fail-only-on-new
    gate's failure count); results without a baselineState — no
    baseline was applied — count as new so the gate fails safe."""
    count = 0
    for run in document.get("runs", ()):  # type: ignore[union-attr]
        for result in run.get("results", ()):
            if result.get("baselineState", "new") == "new":
                count += 1
    return count

"""Lightweight performance counters for the analysis hot paths.

The paper treats analysis time as a first-class result (Table 5); this
module gives the reproduction the observability to track it.  A single
process-wide :data:`counters` object is incremented from the lexer,
parser, taint engine and summary cache — always on, integer adds only,
aggregated per call site (never per token) so the instrumentation cost
is unmeasurable.

Callers that want a per-run view (``PhpSafe.analyze``, batch workers)
take a :meth:`PerfCounters.snapshot` before the work and
:meth:`PerfCounters.since` after — or wrap the work in :func:`scoped`,
which does both; the delta dict is what lands in ``ToolReport.perf``
and the batch telemetry (schema v4).  Derived rates (tokens/s, nodes/s)
are computed by :func:`derive` at reporting time.

Counter storage is **thread-local**: the analysis service runs several
jobs concurrently in one process, and a per-job delta taken against a
truly process-global counter would silently include every other job's
work.  Each thread therefore increments (and snapshots) its own counter
struct; single-threaded callers see no behaviour change, and the batch
worker processes are single-threaded by construction.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

#: counter fields, in reporting order; ``*_seconds`` fields are floats
FIELDS = (
    # substrate
    "tokens_lexed",
    "lex_seconds",
    "files_parsed",
    "parse_seconds",
    # engine
    "engine_steps",
    "analysis_seconds",
    "taint_joins",
    "taint_states_interned",
    "taint_intern_hits",
    # summaries (in-memory memo + persistent cache)
    "summaries_computed",
    "summary_memo_hits",
    "summary_cache_hits",
    "summary_cache_misses",
    "summary_cache_stale",
    # lowered taint IR (per-file lowering + persistent IR cache)
    "ir_bodies_lowered",
    "ir_lower_seconds",
    "ir_cache_hits",
    "ir_cache_misses",
)


class PerfCounters(threading.local):
    """Monotonic per-thread counters (see module docstring).

    Deriving from ``threading.local`` gives every thread its own field
    storage behind the single module-level :data:`counters` name, which
    is what makes :func:`scoped` race-free under the service's
    concurrent worker threads.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in FIELDS:
            setattr(self, name, 0.0 if name.endswith("_seconds") else 0)

    def snapshot(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in FIELDS}

    def since(self, snapshot: Dict[str, float]) -> Dict[str, float]:
        """Delta of every counter relative to ``snapshot``."""
        delta: Dict[str, float] = {}
        for name in FIELDS:
            value = getattr(self, name) - snapshot.get(name, 0)
            delta[name] = round(value, 6) if isinstance(value, float) else value
        return delta


#: the shared name every hot path increments (thread-local storage)
counters = PerfCounters()


class PerfScope:
    """Snapshot/delta pair captured around a ``with`` block.

    ``delta`` (raw counter deltas) and ``rates`` (derived tokens/s etc.)
    are populated when the block exits; :meth:`report` merges both into
    the dict shape ``ToolReport.perf`` uses.  Because the underlying
    counters are thread-local, two jobs scoped concurrently on
    different threads each see only their own work.
    """

    __slots__ = ("delta", "rates", "_before")

    def __init__(self) -> None:
        self.delta: Dict[str, float] = {}
        self.rates: Dict[str, float] = {}

    def __enter__(self) -> "PerfScope":
        self._before = counters.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.delta = counters.since(self._before)
        self.rates = derive(self.delta)
        return False

    def report(self) -> Dict[str, float]:
        """Counter deltas plus derived rates, merged."""
        merged = dict(self.delta)
        merged.update(self.rates)
        return merged


def scoped() -> PerfScope:
    """Per-job measurement scope: ``with scoped() as s: ...; s.delta``."""
    return PerfScope()


def derive(delta: Dict[str, float]) -> Dict[str, float]:
    """Compute the human-facing rates from a counter delta."""
    rates: Dict[str, float] = {}
    if delta.get("lex_seconds"):
        rates["tokens_per_second"] = round(
            delta.get("tokens_lexed", 0) / delta["lex_seconds"], 1
        )
    if delta.get("analysis_seconds"):
        rates["nodes_per_second"] = round(
            delta.get("engine_steps", 0) / delta["analysis_seconds"], 1
        )
    interned = delta.get("taint_states_interned", 0)
    hits = delta.get("taint_intern_hits", 0)
    if interned or hits:
        rates["taint_intern_hit_rate"] = round(hits / (interned + hits), 4)
    return rates


def merge(into: Optional[Dict[str, float]], delta: Dict[str, float]) -> Dict[str, float]:
    """Accumulate one counter delta into another (for batch aggregation)."""
    if into is None:
        into = {}
    for name, value in delta.items():
        into[name] = round(into.get(name, 0) + value, 6)
    return into

"""Shared BENCH_*.json bookkeeping for the perf gates.

Every benchmark in the repo (``benchmarks/perf_gate.py``, ``phpsafe
bench fleet``) records its numbers the same way: a JSON file with a
``baseline`` section written once (``--record-baseline``), a
``current`` section rewritten every run, and derived
``speedup_vs_baseline`` ratios for every ``*_seconds`` metric.  The
``calibration_ops_per_second`` field — a fixed pure-Python workload's
throughput — lets numbers from different machines be compared
approximately (see EXPERIMENTS.md, "Performance methodology").
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

BENCH_SCHEMA = "repro.bench/v1"


def calibration(n: int = 2_000_000) -> float:
    """Ops/s of a fixed pure-Python workload, for machine normalization."""
    start = time.perf_counter()
    total = 0
    for i in range(n):
        total += i * i
    elapsed = time.perf_counter() - start
    assert total  # keep the loop honest
    return n / elapsed


def merge_bench(
    path: str,
    section: Dict[str, object],
    record_baseline: bool = False,
    quick: bool = False,
    calibration_ops: Optional[float] = None,
) -> Dict[str, object]:
    """Fold one benchmark run into its BENCH_*.json file.

    The baseline is preserved across runs unless ``record_baseline``;
    ``speedup_vs_baseline`` maps every ``*_seconds`` metric to
    ``baseline/current`` (>1 means the current code is faster).  When
    both sections carry ``calibration_ops_per_second``,
    ``speedup_vs_baseline_normalized`` additionally factors the machine
    out of every stage: each side's seconds are converted to
    calibration-ops-equivalent work (``seconds * ops_per_second``)
    before the ratio, so a baseline recorded on a 22%-faster box no
    longer skews every per-stage line.
    """
    data: Dict[str, object] = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle) or {}
            except ValueError:
                data = {}
    data.setdefault("schema", BENCH_SCHEMA)
    data["quick"] = quick
    if calibration_ops is not None:
        section["calibration_ops_per_second"] = round(calibration_ops, 1)
    if record_baseline or "baseline" not in data:
        data["baseline"] = section
    data["current"] = section
    baseline, current = data["baseline"], data["current"]
    baseline_cal = baseline.get("calibration_ops_per_second")
    current_cal = current.get("calibration_ops_per_second")
    speedup = {}
    normalized = {}
    for key in current:
        if key.endswith("_seconds") and baseline.get(key) and current.get(key):
            stage = key[: -len("_seconds")]
            speedup[stage] = round(baseline[key] / current[key], 3)
            if baseline_cal and current_cal:
                normalized[stage] = round(
                    (baseline[key] * baseline_cal) / (current[key] * current_cal),
                    3,
                )
    data["speedup_vs_baseline"] = speedup
    data["speedup_vs_baseline_normalized"] = normalized
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=1)
        handle.write("\n")
    return data

"""Text rendering of differential-harness results.

Follows the look of the evaluation tables: fixed-width columns, one
block per corpus version for the config-matrix oracle, and a
tool-by-construct capability table for the slice catalog.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .divergence import DifftestReport
from .slices import SliceResult


def render_oracle_report(report: DifftestReport, verbose: bool = False) -> str:
    lines = [
        f"Config-matrix oracle — corpus {report.version}"
        f" ({report.plugins} plugins)",
        f"  {'axis':<10} {'left':<14} {'right':<14}"
        f" {'findings':>9} {'diverge':>8}",
    ]
    for outcome in report.axes:
        counts = (
            f"{outcome.left_count}"
            if outcome.left_count == outcome.right_count
            else f"{outcome.left_count}/{outcome.right_count}"
        )
        verdict = "OK" if outcome.ok else str(len(outcome.divergences))
        lines.append(
            f"  {outcome.axis:<10} {outcome.left:<14} {outcome.right:<14}"
            f" {counts:>9} {verdict:>8}"
        )
    if verbose or not report.ok:
        for divergence in report.divergences:
            lines.append("  ! " + divergence.describe())
    return "\n".join(lines)


def render_oracle_reports(
    reports: Sequence[DifftestReport], verbose: bool = False
) -> str:
    blocks = [render_oracle_report(report, verbose=verbose) for report in reports]
    total = sum(len(report.divergences) for report in reports)
    blocks.append(
        "No divergences across any axis."
        if total == 0
        else f"{total} divergence(s) found — the marked configurations disagree."
    )
    return "\n\n".join(blocks)


def _mark(kinds: frozenset, expected: frozenset) -> str:
    if not kinds:
        return "-" if not expected else "MISS"
    return ",".join(sorted(kinds))


def render_slice_table(results: Sequence[SliceResult]) -> str:
    """Capability-envelope table: construct × tool.

    The reference (phpSAFE) column is asserted against each slice's
    expected set; the baseline columns document the envelope."""
    tools: List[str] = []
    for result in results:
        for name in result.detected:
            if name not in tools:
                tools.append(name)
    header = f"  {'slice':<26} {'category':<12} {'expected':<10}"
    for name in tools:
        header += f" {name:<10}"
    lines = [f"Feature matrix — {len(results)} slices", header]
    failures = 0
    by_category: Dict[str, List[SliceResult]] = {}
    for result in results:
        by_category.setdefault(result.slice.category, []).append(result)
    for category in by_category:
        for result in by_category[category]:
            expected = ",".join(sorted(result.slice.expected)) or "-"
            row = f"  {result.slice.name:<26} {category:<12} {expected:<10}"
            for name in tools:
                row += f" {_mark(result.detected.get(name, frozenset()), result.slice.expected):<10}"
            if not result.ok:
                failures += 1
                row += "  <-- envelope mismatch"
            lines.append(row)
    lines.append(
        "All slices match the reference envelope."
        if failures == 0
        else f"{failures} slice(s) diverge from the reference envelope."
    )
    return "\n".join(lines)

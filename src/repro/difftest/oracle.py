"""Config-matrix oracle: same corpus, every execution path, one answer.

Runs one corpus through a baseline configuration (recover, serial,
summaries on, no persistent cache) and through the variant on the far
side of each axis, then diffs the finding-signature sets pairwise.  The
scan paths are the real ones — :func:`repro.evaluation.runner.run_tool`
routes ``jobs > 1`` / ``cache_dir`` runs through the batch scheduler
exactly the way the evaluation harness does — so a divergence here is a
divergence users can hit.
"""

from __future__ import annotations

import dataclasses
import tempfile
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Set, Tuple

from ..core.phpsafe import PhpSafe, PhpSafeOptions
from ..core.results import FindingSignature, finding_signatures
from ..corpus.generator import build_corpus
from ..evaluation.runner import run_tool
from ..plugin import Plugin
from .divergence import AxisOutcome, DifftestReport, diff_signatures


def _pack_enabled_base() -> PhpSafeOptions:
    """Default baseline options: every builtin rule pack loaded, so all
    six axes exercise the pack-compiled profile (the pack content hash
    then flows through every cache key the axes compare)."""
    from ..rules import builtin_pack_names

    return PhpSafeOptions(rule_packs=tuple(builtin_pack_names()))


@dataclass
class OracleOptions:
    """Shape of one oracle run."""

    #: corpus versions to exercise (the paper's 2012 and 2014 snapshots)
    versions: Tuple[str, ...] = ("2012", "2014")
    #: corpus scale passed to the generator
    scale: float = 0.1
    #: worker count of the parallel side of the ``jobs`` axis
    jobs: int = 2
    #: analyzer options of the baseline configuration; every variant is
    #: derived from this by flipping exactly one axis
    base: PhpSafeOptions = field(default_factory=_pack_enabled_base)


class ConfigMatrixOracle:
    """Drives the six axis comparisons over generated corpora."""

    def __init__(self, options: Optional[OracleOptions] = None) -> None:
        self.options = options or OracleOptions()

    # -- one configuration ------------------------------------------------

    def _scan(
        self,
        plugins: Sequence[Plugin],
        tool_options: PhpSafeOptions,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
    ) -> Set[FindingSignature]:
        reports, _ = run_tool(
            PhpSafe(options=tool_options), plugins, jobs=jobs, cache_dir=cache_dir
        )
        return finding_signatures(reports)

    # -- the incremental axis ----------------------------------------------

    @staticmethod
    def _mutate_one_file(plugin: Plugin, manifest: dict) -> Plugin:
        """Deterministically grow one file by a tainted-echo block —
        the canonical one-file plugin update.  The target is the
        alphabetically-first *analysis root* (falling back to the first
        file) so the mutation actually re-runs an analysis unit instead
        of, say, touching a deliberately-broken legacy file."""
        roots = [
            root for root in manifest.get("roots", {}) if root in plugin.files
        ]
        target = min(roots) if roots else min(plugin.files)
        files = dict(plugin.files)
        files[target] = (
            files[target] + "\n<?php echo $_GET['difftest_mutation'];\n"
        )
        return dataclasses.replace(plugin, files=files)

    def _scan_incremental(
        self, plugins: Sequence[Plugin], tool_options: PhpSafeOptions
    ) -> Tuple[Set[FindingSignature], Set[FindingSignature]]:
        """Per plugin: scan, mutate one file, then rescan against the
        first scan's manifest AND cold-scan the mutated plugin.  Any
        difference between the two signature sets means the planner
        reused an analysis unit it must not have."""
        cold: Set[FindingSignature] = set()
        incremental: Set[FindingSignature] = set()
        for plugin in plugins:
            tool = PhpSafe(options=tool_options)
            _report, manifest, _stats = tool.rescan(plugin)
            mutated = self._mutate_one_file(plugin, manifest)
            warm_report, _manifest2, _stats2 = tool.rescan(mutated, manifest)
            incremental |= finding_signatures([warm_report])
            cold_report = PhpSafe(options=tool_options).analyze(mutated)
            cold |= finding_signatures([cold_report])
        return cold, incremental

    # -- the six axes ------------------------------------------------------

    def run_version(self, version: str) -> DifftestReport:
        corpus = build_corpus(version, scale=self.options.scale)
        plugins = corpus.plugins
        base_options = self.options.base
        report = DifftestReport(version=version, plugins=len(plugins))

        baseline = self._scan(plugins, base_options)

        # recover: the fault-tolerant pipeline must be a pure superset
        # mechanism — on input it can parse strictly, identical findings
        strict = self._scan(plugins, replace(base_options, recover=False))
        report.axes.append(
            AxisOutcome(
                axis="recover",
                left="strict",
                right="recover",
                left_count=len(strict),
                right_count=len(baseline),
                divergences=diff_signatures(
                    "recover", "strict", "recover", strict, baseline
                ),
            )
        )

        # summaries: memoized function summaries vs re-analysis per call
        no_summaries = self._scan(
            plugins, replace(base_options, use_summaries=False)
        )
        report.axes.append(
            AxisOutcome(
                axis="summaries",
                left="summaries-off",
                right="summaries-on",
                left_count=len(no_summaries),
                right_count=len(baseline),
                divergences=diff_signatures(
                    "summaries", "summaries-off", "summaries-on", no_summaries, baseline
                ),
            )
        )

        # jobs: serial in-process vs parallel worker processes
        parallel = self._scan(plugins, base_options, jobs=self.options.jobs)
        report.axes.append(
            AxisOutcome(
                axis="jobs",
                left="jobs=1",
                right=f"jobs={self.options.jobs}",
                left_count=len(baseline),
                right_count=len(parallel),
                divergences=diff_signatures(
                    "jobs", "jobs=1", f"jobs={self.options.jobs}", baseline, parallel
                ),
            )
        )

        # cache: cold persistent cache vs a fully-warm second run
        with tempfile.TemporaryDirectory(prefix="repro-difftest-") as cache_dir:
            cold = self._scan(plugins, base_options, cache_dir=cache_dir)
            warm = self._scan(plugins, base_options, cache_dir=cache_dir)
        report.axes.append(
            AxisOutcome(
                axis="cache",
                left="cache-cold",
                right="cache-warm",
                left_count=len(cold),
                right_count=len(warm),
                divergences=diff_signatures(
                    "cache", "cache-cold", "cache-warm", cold, warm
                ),
            )
        )

        # incremental: diff-aware one-file-changed rescan vs a cold full
        # scan of the identical mutated plugin
        cold_mutated, warm_mutated = self._scan_incremental(plugins, base_options)
        report.axes.append(
            AxisOutcome(
                axis="incremental",
                left="full-scan",
                right="incremental-rescan",
                left_count=len(cold_mutated),
                right_count=len(warm_mutated),
                divergences=diff_signatures(
                    "incremental",
                    "full-scan",
                    "incremental-rescan",
                    cold_mutated,
                    warm_mutated,
                ),
            )
        )

        # ir: the lowered taint-IR evaluator vs the reference AST
        # interpreter — two implementations of the same fixed-point
        # semantics, so every finding must match bit-for-bit
        ast_side = self._scan(plugins, replace(base_options, use_ir=False))
        ir_side = (
            baseline
            if base_options.use_ir
            else self._scan(plugins, replace(base_options, use_ir=True))
        )
        report.axes.append(
            AxisOutcome(
                axis="ir",
                left="ast-interpreter",
                right="ir-evaluator",
                left_count=len(ast_side),
                right_count=len(ir_side),
                divergences=diff_signatures(
                    "ir", "ast-interpreter", "ir-evaluator", ast_side, ir_side
                ),
            )
        )
        return report

    def run(self) -> List[DifftestReport]:
        return [self.run_version(version) for version in self.options.versions]

"""Typed divergence model of the differential harness.

The analyzer has six independent configuration axes that must not
change *what* is found, only *how* it is found:

* ``recover`` — strict all-or-nothing pipeline vs fault-tolerant
  recovery (identical on cleanly-parseable input),
* ``cache`` — summary/parse disk cache cold vs warm,
* ``jobs`` — serial in-process scan vs parallel worker processes,
* ``summaries`` — function-summary memoization on vs off,
* ``incremental`` — diff-aware rescan (one file mutated, unchanged
  analysis units reused from the prior scan's manifest) vs a cold
  full scan of the same mutated plugin,
* ``ir`` — the lowered taint-IR evaluator vs the reference AST
  interpreter (``--no-ir``), the two implementations of the same
  fixed-point semantics.

A finding present on one side of an axis but not the other is a
:class:`Divergence`: a correctness bug in one of the two execution
paths, never an acceptable difference.  Divergences are first-class
records (not log lines) so the CLI can render them, CI can fail on
them, and they can be folded into the incident taxonomy
(:attr:`repro.incidents.IncidentStage.DIFF`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from ..core.results import FindingSignature
from ..incidents import Incident, IncidentSeverity, IncidentStage

#: the config axes the oracle exercises
AXES = ("recover", "cache", "jobs", "summaries", "incremental", "ir")


@dataclass(frozen=True)
class Divergence:
    """One finding reported by only one side of a config-axis pair."""

    #: which axis diverged (one of :data:`AXES`)
    axis: str
    #: labels of the two configurations that were compared
    left: str
    right: str
    #: which side reported the finding: ``"left-only"`` / ``"right-only"``
    side: str
    plugin: str
    kind: str
    file: str
    line: int
    sink: str

    def describe(self) -> str:
        present, absent = (
            (self.left, self.right) if self.side == "left-only" else (self.right, self.left)
        )
        return (
            f"[{self.axis}] {self.kind.upper()} at {self.plugin}/{self.file}:{self.line}"
            f" via {self.sink}: reported by {present!r} but not {absent!r}"
        )

    def to_incident(self) -> Incident:
        """Fold into the robustness-incident taxonomy: a divergence is
        an ERROR — both runs completed, but one produced a wrong set."""
        return Incident(
            stage=IncidentStage.DIFF,
            severity=IncidentSeverity.ERROR,
            file=self.file,
            reason=self.describe(),
            recovered=False,
            unit=self.plugin,
            line=self.line,
        )


def diff_signatures(
    axis: str,
    left_label: str,
    right_label: str,
    left: Set[FindingSignature],
    right: Set[FindingSignature],
) -> List[Divergence]:
    """Pairwise diff of two configurations' finding-signature sets."""
    divergences: List[Divergence] = []
    for side, only in (("left-only", left - right), ("right-only", right - left)):
        for plugin, kind, file, line, sink in sorted(only):
            divergences.append(
                Divergence(
                    axis=axis,
                    left=left_label,
                    right=right_label,
                    side=side,
                    plugin=plugin,
                    kind=kind,
                    file=file,
                    line=line,
                    sink=sink,
                )
            )
    return divergences


@dataclass
class AxisOutcome:
    """Result of one axis comparison over one corpus version."""

    axis: str
    left: str
    right: str
    left_count: int
    right_count: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class DifftestReport:
    """Config-matrix oracle verdict for one corpus version."""

    version: str
    plugins: int
    axes: List[AxisOutcome] = field(default_factory=list)

    @property
    def divergences(self) -> List[Divergence]:
        return [d for outcome in self.axes for d in outcome.divergences]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.axes)

    def incidents(self) -> List[Incident]:
        return [d.to_incident() for d in self.divergences]

"""Feature-matrix generator: one minimal PHP slice per taint construct.

Each :class:`Slice` is a deterministic, self-contained PHP program that
exercises exactly one language/taint feature (compound assignment,
``??``, ``list()``, by-ref parameters, ``=&`` aliasing, static locals,
foreach key/value, heredoc interpolation, switch fallthrough, method
dispatch, ...), annotated with the finding kinds phpSAFE is expected to
report.  Running the catalog through all three tools yields a
capability-envelope table (which construct each tool tracks), and the
phpSAFE column doubles as a per-construct regression suite — the
``coalesce``, ``ref-alias-*`` and ``static-local`` slices are the three
bugs this harness was built to catch.

Slices follow DEKANT's observation (arXiv:1910.06826) that slice-level
corpora are the right granularity for exercising per-construct taint
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.phpsafe import PhpSafe
from ..core.tool import AnalyzerTool
from ..plugin import Plugin

_XSS = frozenset({"xss"})
_SQLI = frozenset({"sqli"})
_CMDI = frozenset({"cmdi"})
_LFI = frozenset({"lfi"})
_SSRF = frozenset({"ssrf"})
_TRAV = frozenset({"traversal"})
_DESER = frozenset({"deserialization"})
_NONE: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class Slice:
    """One minimal program exercising one construct."""

    name: str
    category: str
    code: str
    #: vulnerability kinds phpSAFE must report (values of ``VulnKind``);
    #: empty means the slice must stay clean (sanitizer / FP guard)
    expected: FrozenSet[str]


def _php(body: str) -> str:
    return "<?php\n" + body + "\n"


#: The deterministic catalog.  Order is stable: tables and tests index it.
SLICES: Tuple[Slice, ...] = (
    # -- assignment forms --------------------------------------------------
    Slice("assign-simple", "assignment", _php("$x = $_GET['a'];\necho $x;"), _XSS),
    Slice("assign-chained", "assignment", _php("$x = $y = $_GET['a'];\necho $x;"), _XSS),
    Slice("assign-concat-compound", "assignment", _php("$x = 'a';\n$x .= $_GET['a'];\necho $x;"), _XSS),
    Slice("assign-arith-compound", "assignment", _php("$x = 0;\n$x += $_GET['a'];\necho $x;"), _NONE),
    Slice("coalesce", "assignment", _php("$x = $_GET['a'] ?? 'd';\necho $x;"), _XSS),
    Slice("coalesce-assign", "assignment", _php("$x = $_GET['a'];\n$x ??= 'd';\necho $x;"), _XSS),
    Slice("coalesce-chain", "assignment", _php("$x = $_GET['a'] ?? $_POST['b'] ?? 'd';\necho $x;"), _XSS),
    Slice("ternary", "assignment", _php("$x = $_GET['a'] ? $_GET['a'] : 'd';\necho $x;"), _XSS),
    Slice("ternary-short", "assignment", _php("$x = $_GET['a'] ?: 'd';\necho $x;"), _XSS),
    Slice("list-assign", "assignment", _php("list($a, $b) = array($_GET['x'], 'y');\necho $a;"), _XSS),
    Slice("ref-alias-read", "assignment", _php("$a = $_GET['x'];\n$b =& $a;\necho $b;"), _XSS),
    Slice("ref-alias-write", "assignment", _php("$a = 1;\n$b =& $a;\n$b = $_GET['x'];\necho $a;"), _XSS),
    Slice("unset-clears", "assignment", _php("$x = $_GET['a'];\nunset($x);\necho $x;"), _NONE),
    Slice("reassign-clean", "assignment", _php("$x = $_GET['a'];\n$x = 'safe';\necho $x;"), _NONE),
    # -- string forms ------------------------------------------------------
    Slice("interp-double-quoted", "strings", _php("$x = $_GET['a'];\necho \"value: $x\";"), _XSS),
    Slice("interp-curly", "strings", _php("$x = $_GET['a'];\necho \"value: {$x}\";"), _XSS),
    Slice("interp-heredoc", "strings", _php("$x = $_GET['a'];\necho <<<HTML\n<p>$x</p>\nHTML;"), _XSS),
    Slice("concat-binary", "strings", _php("echo 'v: ' . $_GET['a'];"), _XSS),
    Slice("single-quoted-literal", "strings", _php("$x = '$_GET';\necho $x;"), _NONE),
    # -- control flow ------------------------------------------------------
    Slice("if-branch-taint", "control-flow", _php("$x = 'a';\nif ($_GET['c']) { $x = $_GET['a']; }\necho $x;"), _XSS),
    Slice("if-else-both-clean", "control-flow", _php("$x = $_GET['a'];\nif ($_GET['c']) { $x = 'l'; } else { $x = 'r'; }\necho $x;"), _NONE),
    Slice("switch-fallthrough", "control-flow", _php("$x = 'a';\nswitch ($_GET['c']) {\ncase 1:\n    $x = $_GET['a'];\ncase 2:\n    echo $x;\n}"), _XSS),
    Slice("while-loop-carried", "control-flow", _php("$x = 'a';\n$i = 0;\nwhile ($i < 2) {\n    echo $x;\n    $x = $_GET['a'];\n    $i++;\n}"), _XSS),
    Slice("do-while-loop-carried", "control-flow", _php("$x = 'a';\ndo {\n    echo $x;\n    $x = $_GET['a'];\n} while ($x);"), _XSS),
    Slice("for-loop-carried", "control-flow", _php("$x = 'a';\nfor ($i = 0; $i < 2; $i++) {\n    echo $x;\n    $x = $_GET['a'];\n}"), _XSS),
    Slice("foreach-value", "control-flow", _php("foreach ($_GET as $v) {\n    echo $v;\n}"), _XSS),
    Slice("foreach-key", "control-flow", _php("foreach ($_GET as $k => $v) {\n    echo $k;\n}"), _XSS),
    Slice("try-catch", "control-flow", _php("try {\n    $x = $_GET['a'];\n} catch (Exception $e) {\n    $x = 'safe';\n}\necho $x;"), _XSS),
    # -- functions ---------------------------------------------------------
    Slice("fn-return", "functions", _php("function f() {\n    return $_GET['a'];\n}\necho f();"), _XSS),
    Slice("fn-param", "functions", _php("function f($p) {\n    echo $p;\n}\nf($_GET['a']);"), _XSS),
    Slice("fn-byref-param", "functions", _php("function f(&$p) {\n    $p = $_GET['a'];\n}\n$x = 'a';\nf($x);\necho $x;"), _XSS),
    Slice("fn-default-arg", "functions", _php("function f($p = 'd') {\n    echo $p;\n}\nf($_GET['a']);"), _XSS),
    Slice("fn-uncalled-entry", "functions", _php("function handler() {\n    echo $_GET['a'];\n}"), _XSS),
    Slice("static-local", "functions", _php("function f() {\n    static $s;\n    echo $s;\n    $s = $_GET['x'];\n}\nf();\nf();"), _XSS),
    Slice("static-local-default", "functions", _php("function f() {\n    static $s = '';\n    echo $s;\n    $s = $_GET['x'];\n}\nf();\nf();"), _XSS),
    Slice("fn-recursive", "functions", _php("function f($n) {\n    if ($n) { f($n - 1); }\n    echo $_GET['a'];\n}\nf(1);"), _XSS),
    Slice("fn-transitive-return", "functions", _php("function g() {\n    return $_GET['a'];\n}\nfunction f() {\n    return g();\n}\necho f();"), _XSS),
    Slice("global-keyword", "functions", _php("$g = $_GET['a'];\nfunction f() {\n    global $g;\n    echo $g;\n}\nf();"), _XSS),
    Slice("fn-clean-return", "functions", _php("function f($p) {\n    return 'safe';\n}\necho f($_GET['a']);"), _NONE),
    # -- sanitizers --------------------------------------------------------
    Slice("filter-htmlspecialchars", "sanitizers", _php("echo htmlspecialchars($_GET['a']);"), _NONE),
    Slice("filter-intval", "sanitizers", _php("echo intval($_GET['a']);"), _NONE),
    Slice("filter-esc-html", "sanitizers", _php("echo esc_html($_GET['a']);"), _NONE),
    Slice("filter-then-retaint", "sanitizers", _php("$x = htmlspecialchars($_GET['a']);\n$x = $_GET['b'];\necho $x;"), _XSS),
    Slice("filter-reverted", "sanitizers", _php("echo htmlspecialchars_decode(htmlspecialchars($_GET['a']));"), _XSS),
    Slice("filter-wrong-kind", "sanitizers", _php("mysql_query('SELECT ' . htmlspecialchars($_GET['a']));"), _SQLI),
    Slice("filter-esc-sql", "sanitizers", _php("mysql_query('SELECT ' . esc_sql($_GET['a']));"), _NONE),
    Slice("filter-cast-int", "sanitizers", _php("$x = (int) $_GET['a'];\necho $x;"), _NONE),
    # -- sinks -------------------------------------------------------------
    Slice("sink-echo", "sinks", _php("echo $_GET['a'];"), _XSS),
    Slice("sink-print", "sinks", _php("print $_GET['a'];"), _XSS),
    Slice("sink-exit", "sinks", _php("exit($_GET['a']);"), _XSS),
    Slice("sink-mysql-query", "sinks", _php("mysql_query('SELECT * FROM t WHERE id = ' . $_GET['id']);"), _SQLI),
    Slice("sink-system", "sinks", _php("system('ls ' . $_GET['d']);"), _CMDI),
    Slice("sink-shell-exec", "sinks", _php("shell_exec($_GET['cmd']);"), _CMDI),
    Slice("sink-include", "sinks", _php("include $_GET['page'];"), _LFI),
    Slice("sink-wpdb-query", "sinks", _php("global $wpdb;\n$wpdb->query('SELECT ' . $_GET['id']);"), _SQLI),
    # -- sources -----------------------------------------------------------
    Slice("src-post", "sources", _php("echo $_POST['a'];"), _XSS),
    Slice("src-cookie", "sources", _php("echo $_COOKIE['a'];"), _XSS),
    Slice("src-request", "sources", _php("echo $_REQUEST['a'];"), _XSS),
    Slice("src-server", "sources", _php("echo $_SERVER['HTTP_USER_AGENT'];"), _XSS),
    # -- arrays ------------------------------------------------------------
    Slice("array-element-write", "arrays", _php("$a = array();\n$a['k'] = $_GET['x'];\necho $a['k'];"), _XSS),
    Slice("array-literal", "arrays", _php("$a = array($_GET['x']);\necho $a[0];"), _XSS),
    # -- OOP ---------------------------------------------------------------
    Slice("oop-property-flow", "oop", _php("class Box {\n    public $v;\n    public function fill() {\n        $this->v = $_GET['a'];\n    }\n    public function dump() {\n        echo $this->v;\n    }\n}\n$b = new Box();\n$b->fill();\n$b->dump();"), _XSS),
    Slice("oop-method-return", "oop", _php("class Src {\n    public function get() {\n        return $_GET['a'];\n    }\n}\n$s = new Src();\necho $s->get();"), _XSS),
    Slice("oop-static-property", "oop", _php("class Cfg {\n    public static $v;\n}\nCfg::$v = $_GET['a'];\necho Cfg::$v;"), _XSS),
    # -- rule packs (declarative knowledge bases; every builtin pack is
    # -- loaded, so overlapping sinks report their *combined* kinds) -------
    Slice("pack-ssrf-wp-remote-get", "pack-ssrf", _php("wp_remote_get($_GET['u']);"), _SSRF),
    Slice("pack-ssrf-curl-init", "pack-ssrf", _php("curl_init($_POST['u']);"), _SSRF),
    Slice("pack-ssrf-validate-url", "pack-ssrf", _php("wp_remote_get(wp_http_validate_url($_GET['u']));"), _NONE),
    Slice("pack-ssrf-propagation", "pack-ssrf", _php("wp_remote_get(add_query_arg('p', 'v', $_GET['u']));"), _SSRF),
    Slice("pack-ssrf-propagation-narrows", "pack-ssrf", _php("echo add_query_arg('p', 'v', $_GET['u']);"), _NONE),
    Slice("pack-traversal-readfile", "pack-traversal", _php("readfile($_GET['f']);"), _TRAV),
    Slice("pack-traversal-unlink", "pack-traversal", _php("unlink($_COOKIE['f']);"), _TRAV),
    Slice("pack-traversal-basename", "pack-traversal", _php("readfile(basename($_GET['f']));"), _NONE),
    Slice("pack-traversal-write-value-clean", "pack-traversal", _php("file_put_contents('log.txt', $_GET['d']);"), _NONE),
    Slice("pack-overlap-file-get-contents", "pack-traversal", _php("file_get_contents($_REQUEST['u']);"), _SSRF | _TRAV),
    Slice("pack-deser-unserialize", "pack-deser", _php("$o = unserialize($_POST['blob']);"), _DESER),
    Slice("pack-deser-maybe-unserialize", "pack-deser", _php("maybe_unserialize($_COOKIE['c']);"), _DESER),
    Slice("pack-deser-passthrough-echo", "pack-deser", _php("echo unserialize($_GET['a']);"), _DESER | _XSS),
    Slice("pack-cmdi-mail-params", "pack-cmdi", _php("mail('a@example.com', 's', 'b', '', $_GET['x']);"), _CMDI),
    Slice("pack-cmdi-mail-safe-args", "pack-cmdi", _php("mail($_GET['to'], 's', 'b');"), _NONE),
    Slice("pack-cmdi-ssh2-exec", "pack-cmdi", _php("$c = ssh2_connect('host');\nssh2_exec($c, $_GET['cmd']);"), _CMDI),
)


@dataclass
class SliceResult:
    """One slice's outcome across every tool."""

    slice: Slice
    #: tool name -> kinds it reported on this slice
    detected: Dict[str, FrozenSet[str]]
    #: name of the reference tool whose envelope is asserted (phpSAFE)
    reference: str = "phpSAFE"

    @property
    def reference_kinds(self) -> FrozenSet[str]:
        return self.detected.get(self.reference, frozenset())

    @property
    def ok(self) -> bool:
        """Does the reference tool match the slice's expected envelope?"""
        return self.reference_kinds == self.slice.expected


def pack_enabled_phpsafe() -> PhpSafe:
    """The catalog's reference analyzer: phpSAFE with every builtin
    rule pack loaded, so slices can exercise pack kinds and the pre-pack
    slices prove the compiled profile changes nothing they cover."""
    from ..core.phpsafe import PhpSafeOptions
    from ..rules import builtin_pack_names

    options = PhpSafeOptions(rule_packs=tuple(builtin_pack_names()))
    return PhpSafe(options=options)


def default_tools() -> List[AnalyzerTool]:
    from ..baselines import PixyLike, RipsLike

    return [pack_enabled_phpsafe(), RipsLike(), PixyLike()]


def run_slices(
    tools: Optional[Sequence[AnalyzerTool]] = None,
    slices: Sequence[Slice] = SLICES,
) -> List[SliceResult]:
    """Run every slice through every tool (fresh tool state per slice —
    class-property stores and summaries must not leak across slices)."""
    factories = None
    if tools is None:
        factories = default_tools
    results: List[SliceResult] = []
    for piece in slices:
        plugin = Plugin(name=f"slice-{piece.name}", files={"slice.php": piece.code})
        active = factories() if factories is not None else list(tools or [])
        detected: Dict[str, FrozenSet[str]] = {}
        for tool in active:
            report = tool.analyze(plugin)
            detected[tool.name] = frozenset(
                finding.kind.value for finding in report.findings
            )
        results.append(SliceResult(slice=piece, detected=detected))
    return results

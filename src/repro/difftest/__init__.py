"""Differential correctness harness (``repro difftest``).

Two complementary oracles keep the analyzer's finding sets a property
of its *capability envelope* rather than of which execution path ran:

* :class:`~repro.difftest.oracle.ConfigMatrixOracle` scans one corpus
  through every configuration axis (strict/recover, cache cold/warm,
  serial/parallel, summaries on/off, incremental rescan vs full scan,
  IR evaluator vs AST interpreter) and diffs the finding sets — any
  difference is a typed :class:`~repro.difftest.divergence.Divergence`;
* :func:`~repro.difftest.slices.run_slices` runs a deterministic
  catalog of minimal per-construct PHP slices through all three tools,
  asserting phpSAFE's expected finding set per construct.
"""

from .divergence import AXES, AxisOutcome, DifftestReport, Divergence, diff_signatures
from .oracle import ConfigMatrixOracle, OracleOptions
from .report import render_oracle_report, render_oracle_reports, render_slice_table
from .slices import SLICES, Slice, SliceResult, pack_enabled_phpsafe, run_slices

__all__ = [
    "AXES",
    "AxisOutcome",
    "ConfigMatrixOracle",
    "DifftestReport",
    "Divergence",
    "OracleOptions",
    "SLICES",
    "Slice",
    "SliceResult",
    "diff_signatures",
    "pack_enabled_phpsafe",
    "render_oracle_report",
    "render_oracle_reports",
    "render_slice_table",
    "run_slices",
]

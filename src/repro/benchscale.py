"""Scale benchmark: peak RSS and LOC/s across the stress tiers.

``phpsafe bench scale`` runs each stress tier
(:mod:`repro.corpus.stress`) in both evaluation modes and records the
results into ``BENCH_scale.json`` via :func:`repro.benchgate.merge_bench`:

- **streaming** — :func:`repro.batch.streaming.stream_scan`: lazy
  corpus generation, byte-capped artifact cache, eager per-plugin
  spill, findings streamed to a JSONL sink;
- **accumulating** — the classic path: materialize the corpus, keep an
  entry-bounded cache, accumulate every ToolReport in memory.

Each (tier, mode) pair runs in its own **spawn-context** subprocess and
reports its own ``ru_maxrss``: spawn (not fork) matters because a
forked child inherits the parent's touched pages and its peak-RSS
counter starts from the parent's footprint, which would double-count
the harness itself.  The per-tier contract is
``StressTier.streaming_rss_mb``: streaming must hold peak RSS under it;
accumulating is *expected* to exceed it on the largest tier (that gap
is the point of the PR, and :func:`check_scale` gates on both).

A ``parity`` section re-proves finding-signature equality of the two
modes on the paper corpus at scale 0.25 (both versions), so the bench
file is self-certifying: the speed/memory numbers come with the
correctness witness attached.
"""

from __future__ import annotations

import multiprocessing
import os
import resource
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from .benchgate import calibration, merge_bench
from .corpus.stress import TIERS, get_tier, iter_stress_plugins, stress_options

BENCH_PATH = "BENCH_scale.json"


def _peak_rss_mb() -> float:
    """This process's lifetime peak RSS, in MB (ru_maxrss is KB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _child_entry(mode: str, tier_name: str, seed: int, sink_path: str, conn) -> None:
    """Subprocess body: run one (tier, mode) and send the measurement."""
    try:
        tier = get_tier(tier_name)
        started = time.perf_counter()
        if mode == "streaming":
            from .batch.streaming import stream_scan, streaming_options

            summary = stream_scan(
                iter_stress_plugins(tier, seed),
                sink_path,
                options=streaming_options(stress_options()),
            )
            loc, findings, plugins = summary.loc, summary.findings, summary.plugins
        elif mode == "accumulating":
            import functools

            from .core.cache import ModelCache
            from .core.phpsafe import PhpSafe
            from .core.results import ToolReport

            # the pre-streaming configuration this PR displaces:
            # materialized corpus, entry-bounded (NOT byte-bounded)
            # artifact cache — the batch scheduler's old default — and
            # every report accumulated then merged
            plugins_list = list(iter_stress_plugins(tier, seed))
            tool = PhpSafe(
                options=stress_options(),
                cache=ModelCache(max_entries=4096),
                use_process_cache=False,
            )
            reports = [tool.analyze(plugin) for plugin in plugins_list]
            merged = (
                functools.reduce(ToolReport.merged, reports) if reports else None
            )
            loc = sum(report.loc_analyzed for report in reports)
            findings = len(merged.findings) if merged else 0
            plugins = len(reports)
        else:  # pragma: no cover - argparse restricts the choices
            raise ValueError(f"unknown mode {mode!r}")
        seconds = time.perf_counter() - started
        conn.send(
            {
                "ok": True,
                "peak_rss_mb": round(_peak_rss_mb(), 1),
                "seconds": round(seconds, 3),
                "loc": loc,
                "loc_per_second": round(loc / seconds, 1) if seconds else 0.0,
                "findings": findings,
                "plugins": plugins,
            }
        )
    except Exception as error:  # pragma: no cover - surfaced by the parent
        conn.send({"ok": False, "error": repr(error)})
    finally:
        conn.close()


def run_tier_mode(
    tier_name: str, mode: str, seed: int = 0, sink_dir: Optional[str] = None
) -> Dict[str, object]:
    """Measure one (tier, mode) in an isolated spawn subprocess."""
    context = multiprocessing.get_context("spawn")
    parent_conn, child_conn = context.Pipe(duplex=False)
    sink_dir = sink_dir or tempfile.mkdtemp(prefix="benchscale-")
    sink_path = os.path.join(sink_dir, f"{tier_name}-{mode}.jsonl")
    process = context.Process(
        target=_child_entry, args=(mode, tier_name, seed, sink_path, child_conn)
    )
    process.start()
    child_conn.close()
    try:
        result = parent_conn.recv()
    except EOFError:
        result = {"ok": False, "error": f"child died (exit {process.exitcode})"}
    process.join()
    if not result.get("ok"):
        raise RuntimeError(
            f"bench child {tier_name}/{mode} failed: {result.get('error')}"
        )
    result.pop("ok")
    return result


def run_parity(scale: float = 0.25) -> Dict[str, object]:
    """Streaming-vs-accumulating signature parity on the paper corpus.

    Runs in-process (the parity claim is about findings, not memory).
    Returns the witness that goes into ``BENCH_scale.json``.
    """
    from .batch.streaming import stream_scan, streaming_options
    from .core.phpsafe import PhpSafe, PhpSafeOptions
    from .core.results import finding_signatures, stream_signatures
    from .corpus.generator import build_both

    accumulated = set()
    streamed = set()
    total_loc = 0
    with tempfile.TemporaryDirectory(prefix="parity-") as workdir:
        for corpus in build_both(scale=scale):
            tool = PhpSafe(options=PhpSafeOptions(), use_process_cache=False)
            reports = [tool.analyze(plugin) for plugin in corpus.plugins]
            accumulated |= finding_signatures(reports)
            sink = os.path.join(workdir, f"stream-{corpus.version}.jsonl")
            stream_scan(
                iter(corpus.plugins), sink, options=streaming_options()
            )
            streamed |= stream_signatures(sink)
            total_loc += corpus.total_loc
    return {
        "scale": scale,
        "loc": total_loc,
        "accumulating_findings": len(accumulated),
        "streaming_findings": len(streamed),
        "identical": accumulated == streamed,
        "only_accumulating": sorted(
            "|".join(map(str, sig)) for sig in accumulated - streamed
        )[:10],
        "only_streaming": sorted(
            "|".join(map(str, sig)) for sig in streamed - accumulated
        )[:10],
    }


def run_scale_bench(
    tier_names: Sequence[str],
    seed: int = 0,
    parity: bool = True,
    parity_scale: float = 0.25,
) -> Dict[str, object]:
    """The ``current`` section of ``BENCH_scale.json``."""
    tiers: Dict[str, object] = {}
    streaming_total = 0.0
    for name in tier_names:
        tier = get_tier(name)
        row: Dict[str, object] = {
            "target_loc": tier.target_loc,
            "plugins": tier.plugin_count,
            "expected_findings": tier.expected_findings,
            "rss_bound_mb": tier.streaming_rss_mb,
        }
        for mode in ("streaming", "accumulating"):
            print(f"bench scale: {name}/{mode} ...", flush=True)
            measured = run_tier_mode(name, mode, seed=seed)
            row[mode] = measured
            print(
                f"bench scale: {name}/{mode}: {measured['loc']} LOC in "
                f"{measured['seconds']}s ({measured['loc_per_second']} LOC/s), "
                f"peak RSS {measured['peak_rss_mb']} MB",
                flush=True,
            )
        streaming_total += row["streaming"]["seconds"]  # type: ignore[index]
        row["streaming_within_bound"] = (
            row["streaming"]["peak_rss_mb"] <= tier.streaming_rss_mb  # type: ignore[index]
        )
        row["accumulating_within_bound"] = (
            row["accumulating"]["peak_rss_mb"] <= tier.streaming_rss_mb  # type: ignore[index]
        )
        tiers[name] = row
    section: Dict[str, object] = {
        "tiers": tiers,
        "streaming_scan_seconds": round(streaming_total, 3),
    }
    if parity:
        print(f"bench scale: parity at scale {parity_scale} ...", flush=True)
        section["parity"] = run_parity(scale=parity_scale)
    return section


def check_scale(data: Dict[str, object]) -> List[str]:
    """Gate conditions over a merged ``BENCH_scale.json`` document."""
    failures: List[str] = []
    current = data.get("current") or {}
    tiers: Dict[str, Dict[str, object]] = current.get("tiers") or {}  # type: ignore[assignment]
    if not tiers:
        return ["no tiers benched"]
    for name, row in sorted(tiers.items()):
        if not row.get("streaming_within_bound"):
            failures.append(
                f"{name}: streaming peak RSS "
                f"{row.get('streaming', {}).get('peak_rss_mb')} MB exceeds "
                f"the {row.get('rss_bound_mb')} MB bound"
            )
        streaming = row.get("streaming") or {}
        expected = row.get("expected_findings")
        if expected is not None and streaming.get("findings") != expected:
            failures.append(
                f"{name}: streaming found {streaming.get('findings')} "
                f"findings, expected {expected}"
            )
        accumulating = row.get("accumulating") or {}
        if accumulating.get("findings") != streaming.get("findings"):
            failures.append(
                f"{name}: modes disagree on findings "
                f"({accumulating.get('findings')} accumulating vs "
                f"{streaming.get('findings')} streaming)"
            )
    # the headline claim: on at least one benched tier the bound is only
    # holdable by streaming
    if not any(
        row.get("streaming_within_bound")
        and not row.get("accumulating_within_bound")
        for row in tiers.values()
    ):
        failures.append(
            "no tier shows streaming under a bound accumulating exceeds "
            "(bench more tiers or lower the bound)"
        )
    parity = current.get("parity")
    if parity is not None and not parity.get("identical"):  # type: ignore[union-attr]
        failures.append(
            "parity: streaming and accumulating finding signatures differ"
        )
    return failures


def run_and_gate(
    tier_names: Sequence[str],
    path: str = BENCH_PATH,
    record_baseline: bool = False,
    quick: bool = False,
    seed: int = 0,
    parity: bool = True,
) -> int:
    """CLI core: bench, merge, gate; returns the exit code."""
    section = run_scale_bench(
        tier_names,
        seed=seed,
        parity=parity,
        parity_scale=0.25 if not quick else 0.05,
    )
    data = merge_bench(
        path,
        section,
        record_baseline=record_baseline,
        quick=quick,
        calibration_ops=calibration(),
    )
    failures = check_scale(data)
    for failure in failures:
        print(f"bench scale: FAIL: {failure}", flush=True)
    if not failures:
        print(f"bench scale: ok — results in {path}", flush=True)
    return 1 if failures else 0

"""Taint labels and taint states.

The analysis stage tracks, for every variable and intermediate value, a
*taint state*: per vulnerability kind, the set of labels explaining where
attacker-controlled data could have come from.  Labels are either

- :class:`ConcreteSource` — data entered through a knowledge-base source
  (``$_GET``, ``$wpdb->get_results`` ...), carrying the input vector and
  origin location that findings report, or
- :class:`ParamRef` — a placeholder for "the taint of the N-th argument"
  used while summarizing a user-defined function, substituted with the
  caller's actual taint at each call site, or
- :class:`PropRef` — a placeholder for the taint of an object property,
  resolved against the class property map (object-insensitive, matching
  phpSAFE's textual full-name handling of properties).

Filtering (sanitization) moves labels from the *active* set to a
*suppressed* set instead of deleting them, so revert functions
(``stripslashes`` & co., paper Section III.A) can restore them.

Taint states are **hash-consed immutable values**: construction
normalizes the label sets to frozensets and interns the result in a
weak pool, so equal states are the *same object*.  Propagation then
never copies label sets — assignment shares the state, ``copy()``
returns ``self``, joins short-circuit on identity, and the engine's
fixed-point checks are pointer comparisons.  The per-kind mappings are
exposed read-only (``MappingProxyType`` over frozensets), which keeps
the historical ``state.active.get(kind)`` read API intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple, Union
from weakref import WeakValueDictionary

from ..config.vulnerability import ALL_KINDS, InputVector, VulnKind
from ..perf import counters


@dataclass(frozen=True)
class ConcreteSource:
    """Taint that entered through a configured source.

    ``via_oop`` marks sources that require OOP resolution to see — e.g.
    a ``$wpdb->get_results`` method call (paper Section III.E).
    """

    vector: InputVector
    name: str
    file: str
    line: int
    via_oop: bool = False

    def describe(self) -> str:
        return f"{self.name} [{self.vector.value}] at {self.file}:{self.line}"


@dataclass(frozen=True)
class ParamRef:
    """Placeholder: taint of parameter ``index`` of ``function_key``."""

    function_key: str
    index: int

    def describe(self) -> str:
        return f"param #{self.index} of {self.function_key}()"


@dataclass(frozen=True)
class PropRef:
    """Placeholder: taint of property ``prop`` of class ``class_name``."""

    class_name: str
    prop: str

    def describe(self) -> str:
        return f"property {self.class_name}::${self.prop}"


Label = Union[ConcreteSource, ParamRef, PropRef]


#: kind -> canonical position.  The canonical order of the per-kind
#: item tuples is ``kind.value`` (string) order; comparing precomputed
#: ints is measurably cheaper than re-reading ``.value`` through the
#: enum descriptor on every ``_freeze``.  The order must never change:
#: pickled states re-intern their stored item tuples verbatim
#: (``_rebuild``), so a reordering would let equal-content states land
#: under distinct pool keys and break identity equality.
_KIND_ORDER: Dict[VulnKind, int] = {
    kind: position
    for position, kind in enumerate(sorted(ALL_KINDS, key=lambda kind: kind.value))
}


def _freeze(mapping: Optional[Mapping[VulnKind, Iterable[Label]]]) -> Tuple:
    """Canonical form of a per-kind label mapping: sorted, frozen, non-empty."""
    if not mapping:
        return ()
    items = [
        (kind, labels if type(labels) is frozenset else frozenset(labels))
        for kind, labels in mapping.items()
        if labels
    ]
    if len(items) > 1:
        items.sort(key=_kind_value)
    return tuple(items)


def _kind_value(item: Tuple):
    order = _KIND_ORDER.get(item[0])
    # kinds outside the built-in registry (extension kinds) sort by
    # value string after the known block, preserving the historical
    # all-string ordering among themselves
    return (order, "") if order is not None else (len(_KIND_ORDER), item[0].value)


def _rebuild(active_items: Tuple, suppressed_items: Tuple) -> "TaintState":
    """Unpickle hook: re-intern the state in this process's pool."""
    return TaintState._intern(active_items, suppressed_items)


class TaintState:
    """Per-kind active and suppressed label sets with join semantics."""

    __slots__ = (
        "active",
        "suppressed",
        "_key",
        "_concrete",
        "_join_memo",
        "__weakref__",
    )

    #: hash-cons pool; weak so dead states do not accumulate across files
    _pool: "WeakValueDictionary[Tuple, TaintState]" = WeakValueDictionary()

    def __new__(
        cls,
        active: Optional[Mapping[VulnKind, Iterable[Label]]] = None,
        suppressed: Optional[Mapping[VulnKind, Iterable[Label]]] = None,
    ) -> "TaintState":
        return cls._intern(_freeze(active), _freeze(suppressed))

    @classmethod
    def _intern(cls, active_items: Tuple, suppressed_items: Tuple) -> "TaintState":
        key = (active_items, suppressed_items)
        state = cls._pool.get(key)
        if state is not None:
            counters.taint_intern_hits += 1
            return state
        state = object.__new__(cls)
        state.active = MappingProxyType(dict(active_items))
        state.suppressed = MappingProxyType(dict(suppressed_items))
        state._key = key
        # computed once per interned state, checked on every substitution:
        # a state whose labels are all concrete is a fixed point of
        # ``substituted`` for any mapping
        state._concrete = all(
            type(label) is ConcreteSource
            for _kind, labels in active_items + suppressed_items
            for label in labels
        )
        # lazily-built join cache (other state -> joined result); keyed
        # by identity, which the pool makes equivalent to value equality
        state._join_memo = None
        cls._pool[key] = state
        counters.taint_states_interned += 1
        return state

    def __reduce__(self) -> Tuple:
        return (_rebuild, self._key)

    # equality/hash are identity: the pool guarantees equal values are
    # the same object, so the object defaults are both correct and O(1)

    # -- constructors -----------------------------------------------------

    @classmethod
    def clean(cls) -> "TaintState":
        return _CLEAN

    @classmethod
    def from_label(
        cls, label: Label, kinds: Iterable[VulnKind] = ALL_KINDS
    ) -> "TaintState":
        if kinds is ALL_KINDS:
            # sources are overwhelmingly created over the full kind set
            # and the same label recurs at every fixed-point revisit of
            # its source line: memoize (weakly, so dead states still
            # leave the pool) and skip the per-call sort
            state = _FROM_LABEL_MEMO.get(label)
            if state is None:
                frozen = frozenset((label,))
                state = cls._intern(
                    tuple((kind, frozen) for kind in _ALL_KINDS_SORTED), ()
                )
                _FROM_LABEL_MEMO[label] = state
            return state
        frozen = frozenset((label,))
        return cls._intern(
            tuple(sorted(((kind, frozen) for kind in kinds), key=_kind_value)), ()
        )

    def copy(self) -> "TaintState":
        return self  # immutable: sharing is free

    # -- queries -------------------------------------------------------------

    def is_tainted(self, kind: VulnKind) -> bool:
        return bool(self.active.get(kind))

    def is_clean(self) -> bool:
        return not any(self.active.values())

    def labels(self, kind: VulnKind) -> FrozenSet[Label]:
        return frozenset(self.active.get(kind, ()))

    def all_labels(self) -> FrozenSet[Label]:
        out: Set[Label] = set()
        for labels in self.active.values():
            out |= labels
        return frozenset(out)

    def vectors(self, kind: VulnKind) -> Tuple[InputVector, ...]:
        """Distinct input vectors of the concrete labels, sorted stably."""
        vectors = {
            label.vector
            for label in self.active.get(kind, ())
            if isinstance(label, ConcreteSource)
        }
        return tuple(sorted(vectors, key=lambda vector: vector.value))

    def signature(self) -> Tuple:
        """Hashable identity used to memoize summary substitutions."""
        return (tuple((kind.value, labels) for kind, labels in self._key[0]),)

    # -- lattice operations (all return interned states) --------------------

    def joined(self, other: "TaintState") -> "TaintState":
        if other is self or other is _CLEAN:
            return self
        if self is _CLEAN:
            return other
        memo = self._join_memo
        if memo is None:
            memo = self._join_memo = {}
        else:
            cached = memo.get(other)
            if cached is not None:
                return cached
        counters.taint_joins += 1
        active: Dict[VulnKind, FrozenSet[Label]] = dict(self.active)
        for kind, labels in other.active.items():
            mine = active.get(kind)
            active[kind] = labels if mine is None else mine | labels
        suppressed: Dict[VulnKind, FrozenSet[Label]] = dict(self.suppressed)
        for kind, labels in other.suppressed.items():
            mine = suppressed.get(kind)
            suppressed[kind] = labels if mine is None else mine | labels
        result = TaintState(active=active, suppressed=suppressed)
        memo[other] = result
        return result

    def filtered(self, kinds: Iterable[VulnKind]) -> "TaintState":
        """Sanitize for ``kinds``: active labels become suppressed."""
        active = dict(self.active)
        suppressed = dict(self.suppressed)
        changed = False
        for kind in kinds:
            moved = active.pop(kind, None)
            if moved:
                changed = True
                mine = suppressed.get(kind)
                suppressed[kind] = moved if mine is None else mine | moved
        if not changed:
            return self
        return TaintState(active=active, suppressed=suppressed)

    def reverted(self, kinds: Iterable[VulnKind]) -> "TaintState":
        """Undo sanitization for ``kinds``: suppressed labels reactivate."""
        active = dict(self.active)
        suppressed = dict(self.suppressed)
        changed = False
        for kind in kinds:
            restored = suppressed.pop(kind, None)
            if restored:
                changed = True
                mine = active.get(kind)
                active[kind] = restored if mine is None else mine | restored
        if not changed:
            return self
        return TaintState(active=active, suppressed=suppressed)

    def restricted(self, kinds: Iterable[VulnKind]) -> "TaintState":
        """Keep only the entries for ``kinds`` (kind-limited propagation:
        a ``PropagationSpec`` forwards argument taint for some kinds and
        neutralizes the rest).  Suppressed labels for kept kinds survive
        so a later revert can still reactivate them."""
        keep = kinds if type(kinds) is frozenset else frozenset(kinds)
        active = {kind: labels for kind, labels in self.active.items() if kind in keep}
        suppressed = {
            kind: labels for kind, labels in self.suppressed.items() if kind in keep
        }
        if len(active) == len(self.active) and len(suppressed) == len(self.suppressed):
            return self
        return TaintState(active=active, suppressed=suppressed)

    def substituted(self, mapping: Dict[Label, "TaintState"]) -> "TaintState":
        """Replace placeholder labels using ``mapping``.

        Placeholders absent from the mapping are dropped (an unresolved
        parameter contributes no taint); concrete labels pass through.
        """
        if self._concrete:
            return self  # no placeholders anywhere: substitution is identity
        active: Dict[VulnKind, Set[Label]] = {}
        for kind, labels in self.active.items():
            for label in labels:
                if isinstance(label, ConcreteSource):
                    active.setdefault(kind, set()).add(label)
                elif label in mapping:
                    replacement = mapping[label].active.get(kind)
                    if replacement:
                        active.setdefault(kind, set()).update(replacement)
        suppressed: Dict[VulnKind, Set[Label]] = {}
        for kind, labels in self.suppressed.items():
            for label in labels:
                if isinstance(label, ConcreteSource):
                    suppressed.setdefault(kind, set()).add(label)
                elif label in mapping:
                    replacement = mapping[label].active.get(kind)
                    if replacement:
                        suppressed.setdefault(kind, set()).update(replacement)
        return TaintState(active=active, suppressed=suppressed)

    def drop_param_refs(self) -> "TaintState":
        """Remove :class:`ParamRef` labels, keeping concrete sources and
        property placeholders (used when an uncalled method's property
        writes are committed without a caller to bind its parameters)."""
        if not self.has_param_refs():
            return self
        active: Dict[VulnKind, Set[Label]] = {}
        for kind, labels in self.active.items():
            kept = {label for label in labels if not isinstance(label, ParamRef)}
            if kept:
                active[kind] = kept
        suppressed: Dict[VulnKind, Set[Label]] = {}
        for kind, labels in self.suppressed.items():
            kept = {label for label in labels if not isinstance(label, ParamRef)}
            if kept:
                suppressed[kind] = kept
        return TaintState(active=active, suppressed=suppressed)

    def has_param_refs(self) -> bool:
        if self._concrete:
            return False
        return any(
            isinstance(label, ParamRef)
            for labels in (*self.active.values(), *self.suppressed.values())
            for label in labels
        )

    def has_placeholders(self) -> bool:
        if self._concrete:
            return False
        return any(
            not isinstance(label, ConcreteSource)
            for labels in self.active.values()
            for label in labels
        )

    def __repr__(self) -> str:
        parts = []
        for kind, labels in sorted(self.active.items(), key=lambda kv: kv[0].value):
            if labels:
                names = ", ".join(sorted(label.describe() for label in labels))
                parts.append(f"{kind}: {names}")
        return "TaintState(" + ("; ".join(parts) or "clean") + ")"


#: the interned all-clean state; held strongly so the pool never drops it
_CLEAN = TaintState()

#: canonical item order for the default ``from_label`` construction
_ALL_KINDS_SORTED = tuple(sorted(ALL_KINDS, key=lambda kind: _KIND_ORDER[kind]))

#: label -> all-kinds source state; weak values so the memo never keeps
#: a state (and the file/line-bearing labels inside it) alive on its own
_FROM_LABEL_MEMO: "WeakValueDictionary[Label, TaintState]" = WeakValueDictionary()


@dataclass
class VariableRecord:
    """One entry of phpSAFE's ``parser_variables`` store.

    "This array contains everything needed to allow phpSAFE to perform
    the taint analysis, like the variable name, source file name and line
    number, the dependencies from other variables, if it is an input or
    output variable, the filter functions applied, etc." (Section III.C)
    """

    name: str
    file: str = ""
    line: int = 0
    taint: TaintState = field(default_factory=TaintState.clean)
    class_name: Optional[str] = None  # resolved object type, for OOP
    depends_on: Tuple[str, ...] = ()
    filters_applied: Tuple[str, ...] = ()
    is_input: bool = False
    is_output: bool = False
    trace: Tuple[str, ...] = ()

    def updated(self, **changes) -> "VariableRecord":
        # hand-rolled ``dataclasses.replace``: this runs on every branch
        # join and ref-group write-through, and replace()'s field
        # introspection is measurable there.  VariableRecord has no
        # __post_init__, so a __dict__ copy is equivalent.
        clone = VariableRecord.__new__(VariableRecord)
        clone.__dict__.update(self.__dict__)
        if changes:
            clone.__dict__.update(changes)
        return clone

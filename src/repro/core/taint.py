"""Taint labels and taint states.

The analysis stage tracks, for every variable and intermediate value, a
*taint state*: per vulnerability kind, the set of labels explaining where
attacker-controlled data could have come from.  Labels are either

- :class:`ConcreteSource` — data entered through a knowledge-base source
  (``$_GET``, ``$wpdb->get_results`` ...), carrying the input vector and
  origin location that findings report, or
- :class:`ParamRef` — a placeholder for "the taint of the N-th argument"
  used while summarizing a user-defined function, substituted with the
  caller's actual taint at each call site, or
- :class:`PropRef` — a placeholder for the taint of an object property,
  resolved against the class property map (object-insensitive, matching
  phpSAFE's textual full-name handling of properties).

Filtering (sanitization) moves labels from the *active* set to a
*suppressed* set instead of deleting them, so revert functions
(``stripslashes`` & co., paper Section III.A) can restore them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple, Union

from ..config.vulnerability import ALL_KINDS, InputVector, VulnKind


@dataclass(frozen=True)
class ConcreteSource:
    """Taint that entered through a configured source.

    ``via_oop`` marks sources that require OOP resolution to see — e.g.
    a ``$wpdb->get_results`` method call (paper Section III.E).
    """

    vector: InputVector
    name: str
    file: str
    line: int
    via_oop: bool = False

    def describe(self) -> str:
        return f"{self.name} [{self.vector.value}] at {self.file}:{self.line}"


@dataclass(frozen=True)
class ParamRef:
    """Placeholder: taint of parameter ``index`` of ``function_key``."""

    function_key: str
    index: int

    def describe(self) -> str:
        return f"param #{self.index} of {self.function_key}()"


@dataclass(frozen=True)
class PropRef:
    """Placeholder: taint of property ``prop`` of class ``class_name``."""

    class_name: str
    prop: str

    def describe(self) -> str:
        return f"property {self.class_name}::${self.prop}"


Label = Union[ConcreteSource, ParamRef, PropRef]


class TaintState:
    """Per-kind active and suppressed label sets with join semantics."""

    __slots__ = ("active", "suppressed")

    def __init__(
        self,
        active: Optional[Dict[VulnKind, Set[Label]]] = None,
        suppressed: Optional[Dict[VulnKind, Set[Label]]] = None,
    ) -> None:
        self.active: Dict[VulnKind, Set[Label]] = active or {}
        self.suppressed: Dict[VulnKind, Set[Label]] = suppressed or {}

    # -- constructors -----------------------------------------------------

    @classmethod
    def clean(cls) -> "TaintState":
        return cls()

    @classmethod
    def from_label(
        cls, label: Label, kinds: Iterable[VulnKind] = ALL_KINDS
    ) -> "TaintState":
        return cls(active={kind: {label} for kind in kinds})

    def copy(self) -> "TaintState":
        return TaintState(
            active={kind: set(labels) for kind, labels in self.active.items() if labels},
            suppressed={
                kind: set(labels) for kind, labels in self.suppressed.items() if labels
            },
        )

    # -- queries -------------------------------------------------------------

    def is_tainted(self, kind: VulnKind) -> bool:
        return bool(self.active.get(kind))

    def is_clean(self) -> bool:
        return not any(self.active.values())

    def labels(self, kind: VulnKind) -> FrozenSet[Label]:
        return frozenset(self.active.get(kind, ()))

    def all_labels(self) -> FrozenSet[Label]:
        out: Set[Label] = set()
        for labels in self.active.values():
            out |= labels
        return frozenset(out)

    def vectors(self, kind: VulnKind) -> Tuple[InputVector, ...]:
        """Distinct input vectors of the concrete labels, sorted stably."""
        vectors = {
            label.vector
            for label in self.active.get(kind, ())
            if isinstance(label, ConcreteSource)
        }
        return tuple(sorted(vectors, key=lambda vector: vector.value))

    def signature(self) -> Tuple:
        """Hashable identity used to memoize summary substitutions."""
        return (
            tuple(
                (kind.value, frozenset(labels))
                for kind, labels in sorted(self.active.items(), key=lambda kv: kv[0].value)
                if labels
            ),
        )

    # -- mutations (all return new states; states are treated as values) ----

    def joined(self, other: "TaintState") -> "TaintState":
        result = self.copy()
        for kind, labels in other.active.items():
            result.active.setdefault(kind, set()).update(labels)
        for kind, labels in other.suppressed.items():
            result.suppressed.setdefault(kind, set()).update(labels)
        return result

    def filtered(self, kinds: Iterable[VulnKind]) -> "TaintState":
        """Sanitize for ``kinds``: active labels become suppressed."""
        result = self.copy()
        for kind in kinds:
            moved = result.active.pop(kind, set())
            if moved:
                result.suppressed.setdefault(kind, set()).update(moved)
        return result

    def reverted(self, kinds: Iterable[VulnKind]) -> "TaintState":
        """Undo sanitization for ``kinds``: suppressed labels reactivate."""
        result = self.copy()
        for kind in kinds:
            restored = result.suppressed.pop(kind, set())
            if restored:
                result.active.setdefault(kind, set()).update(restored)
        return result

    def substituted(self, mapping: Dict[Label, "TaintState"]) -> "TaintState":
        """Replace placeholder labels using ``mapping``.

        Placeholders absent from the mapping are dropped (an unresolved
        parameter contributes no taint); concrete labels pass through.
        """
        result = TaintState()
        for kind, labels in self.active.items():
            for label in labels:
                if isinstance(label, ConcreteSource):
                    result.active.setdefault(kind, set()).add(label)
                elif label in mapping:
                    replacement = mapping[label].active.get(kind, set())
                    if replacement:
                        result.active.setdefault(kind, set()).update(replacement)
        for kind, labels in self.suppressed.items():
            for label in labels:
                if isinstance(label, ConcreteSource):
                    result.suppressed.setdefault(kind, set()).add(label)
                elif label in mapping:
                    replacement = mapping[label].active.get(kind, set())
                    if replacement:
                        result.suppressed.setdefault(kind, set()).update(replacement)
        return result

    def drop_param_refs(self) -> "TaintState":
        """Remove :class:`ParamRef` labels, keeping concrete sources and
        property placeholders (used when an uncalled method's property
        writes are committed without a caller to bind its parameters)."""
        result = TaintState()
        for kind, labels in self.active.items():
            kept = {label for label in labels if not isinstance(label, ParamRef)}
            if kept:
                result.active[kind] = kept
        for kind, labels in self.suppressed.items():
            kept = {label for label in labels if not isinstance(label, ParamRef)}
            if kept:
                result.suppressed[kind] = kept
        return result

    def has_placeholders(self) -> bool:
        return any(
            not isinstance(label, ConcreteSource)
            for labels in self.active.values()
            for label in labels
        )

    def __repr__(self) -> str:
        parts = []
        for kind, labels in sorted(self.active.items(), key=lambda kv: kv[0].value):
            if labels:
                names = ", ".join(sorted(label.describe() for label in labels))
                parts.append(f"{kind}: {names}")
        return "TaintState(" + ("; ".join(parts) or "clean") + ")"


@dataclass
class VariableRecord:
    """One entry of phpSAFE's ``parser_variables`` store.

    "This array contains everything needed to allow phpSAFE to perform
    the taint analysis, like the variable name, source file name and line
    number, the dependencies from other variables, if it is an input or
    output variable, the filter functions applied, etc." (Section III.C)
    """

    name: str
    file: str = ""
    line: int = 0
    taint: TaintState = field(default_factory=TaintState.clean)
    class_name: Optional[str] = None  # resolved object type, for OOP
    depends_on: Tuple[str, ...] = ()
    filters_applied: Tuple[str, ...] = ()
    is_input: bool = False
    is_output: bool = False
    trace: Tuple[str, ...] = ()

    def updated(self, **changes) -> "VariableRecord":
        return replace(self, **changes)

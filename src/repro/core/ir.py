"""Taint IR: one-time lowering of AST bodies to a linear instruction
form, and the evaluator that runs the taint fixed-point over it.

The AST interpreter in :mod:`repro.core.engine` re-walks the tree on
every pass: each visit pays ``isinstance`` dispatch ladders, knowledge-
base dict probes (``function_sink`` & co. per call site per visit), and
f-string trace construction (``"$x assigned at file:line"`` per
assignment per visit).  All of that is invariant per *syntax site* — so
this module lowers each body once into flat tuples of integer-opcode
instructions with every invariant pre-resolved:

* profile lookups (superglobal/function sources, filters, reverts,
  sinks, known instances) are resolved at lowering time; call sites
  carry the spec (or its pre-built :class:`TaintState`) inline,
* trace strings, name hints, and markup contexts are pre-formatted
  (sound because a body always executes with ``_current_file`` equal to
  its defining file — see :class:`IRTaintEngine`),
* the unknown-call policy and passthrough/clean builtin classification
  collapse to a single pre-computed join-or-clean flag,
* statement/expression dispatch becomes one integer index into a
  handler table instead of an ``isinstance`` ladder.

Semantics are deliberately *transliterated*, not redesigned: every
handler mirrors its ``TaintEngine`` dispatch branch 1:1, including the
step-tick count per node (budgets and deadlines trip at the same step)
and the scope/ref-group/global-alias/static-slot write-through rules.
The ``difftest`` config-matrix oracle diffs the two evaluators end to
end (axis ``ir``) to enforce bit-identical finding signatures.

Lowered programs are pickle-safe (tuples of ints, strings, interned
taint states, spec dataclasses, and AST node references) and are cached
in the content-addressed disk store keyed by file digest + analyzer
fingerprint, so rule or option changes invalidate them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config.vulnerability import InputVector, VulnKind
from ..perf import counters
from ..php import ast_nodes as ast
from ..php.ast_nodes import iter_bodies
from ..php.htmlcontext import context_at_end
from .cache import ir_key
from .engine import (
    CLEAN_FUNCTIONS,
    PASSTHROUGH_FUNCTIONS,
    BudgetExceeded,
    EngineOptions,
    Scope,
    SinkEvent,
    TaintEngine,
    UnitFault,
    Value,
    _describe_expr,
    _literal_prefix,
)
from .taint import ConcreteSource, TaintState, VariableRecord

#: bump when the instruction encoding changes; part of cache validity
#: (2: E_CALL carries a sink *tuple* and a trailing propagation spec)
IR_VERSION = 2

# -- statement opcodes -------------------------------------------------------
S_EXPR = 0
S_ECHO = 1
S_IF = 2
S_WHILE = 3
S_DOWHILE = 4
S_FOREACH = 5
S_SWITCH = 6
S_RETURN = 7
S_GLOBAL = 8
S_STATIC = 9
S_UNSET = 10
S_THROW = 11
S_TRY = 12
S_BLOCK = 13
S_NOP = 14
S_FOR = 15

# -- expression opcodes ------------------------------------------------------
E_NONE = 0
E_CLEAN = 1
E_LOCAL = 2
E_SUPERGLOBAL = 3
E_VARVAR = 4
E_INTERP = 5
E_SHELL = 6
E_ARRAYLIT = 7
E_INDEX = 8
E_PROP = 9
E_SPROP = 10
E_ASSIGN_VAR = 11
E_ASSIGN = 12
E_BINARY = 13
E_UNARY = 14
E_TERNARY = 15
E_CAST = 16
E_INCDEC = 17
E_LIST = 18
E_CALL = 19
E_CALL_DYN = 20
E_METHOD = 21
E_SCALL = 22
E_NEW = 23
E_CLONE = 24
E_INCLUDE = 25
E_EXIT = 26
E_PRINT = 27

#: shared singleton instructions (the most common lowered forms)
_NOP_INSTR = (S_NOP,)
_NONE_INSTR = (E_NONE,)
_CLEAN_INSTR = (E_CLEAN,)


@dataclass
class IRProgram:
    """All lowered bodies of one file, in :func:`iter_bodies` order."""

    version: int
    file: str
    codes: Tuple[Tuple[tuple, ...], ...]


class _Lowerer:
    """Compiles statement lists into instruction tuples.

    One instance per (file, analyzer configuration): everything baked
    into the instructions — trace strings, source labels, profile specs,
    the unknown-call policy — is either file-scoped or covered by the
    analyzer fingerprint the IR cache is keyed under.
    """

    def __init__(self, profile, options: EngineOptions, file: str) -> None:
        self.profile = profile
        self.options = options
        self.file = file
        self.oop = options.oop
        self.construct_kinds = options.construct_kinds
        self.unknown_call_policy = options.unknown_call_policy
        self.kind_universe = profile.kind_universe()

    # -- statements --------------------------------------------------------
    #
    # Statement and expression lowering dispatch on ``type(node)`` through
    # class-keyed tables (built after the class body) instead of
    # isinstance ladders: lowering runs once per body but over every
    # node, so dispatch cost is the bulk of cold-lowering time.

    def lower_block(self, statements: Sequence[ast.Statement]) -> Tuple[tuple, ...]:
        dispatch = self._STMT_DISPATCH
        return tuple(
            handler(self, stmt)
            if (handler := dispatch.get(stmt.__class__)) is not None
            # InlineHTML, ErrorStmt, declarations, break/continue/use/
            # const/goto/label and anything unknown: a ticked no-op,
            # like the parent
            else _NOP_INSTR
            for stmt in statements
        )

    def lower_stmt(self, node: ast.Statement) -> tuple:
        handler = self._STMT_DISPATCH.get(node.__class__)
        return handler(self, node) if handler is not None else _NOP_INSTR

    def _lower_expr_stmt(self, node: ast.ExpressionStatement) -> tuple:
        return (S_EXPR, self.lower_expr(node.expr))

    def _lower_echo(self, node: ast.EchoStatement) -> tuple:
        return (
            S_ECHO,
            tuple(
                (self.lower_expr(expr), self._xss_pre(expr, "echo"))
                for expr in node.exprs
            ),
        )

    def _lower_block_stmt(self, node: ast.Block) -> tuple:
        return (S_BLOCK, self.lower_block(node.statements))

    def _lower_if(self, node: ast.IfStatement) -> tuple:
        branches = [self.lower_block(node.then)]
        extra_conds = []
        for clause in node.elseifs:
            extra_conds.append(self.lower_expr(clause.cond))
            branches.append(self.lower_block(clause.body))
        if node.otherwise is not None:
            branches.append(self.lower_block(node.otherwise))
        return (
            S_IF,
            self.lower_expr(node.cond),
            tuple(extra_conds),
            tuple(branches),
            node.otherwise is not None,
        )

    def _lower_while(self, node: ast.WhileStatement) -> tuple:
        return (S_WHILE, self.lower_expr(node.cond), self.lower_block(node.body))

    def _lower_dowhile(self, node: ast.DoWhileStatement) -> tuple:
        return (S_DOWHILE, self.lower_block(node.body), self.lower_expr(node.cond))

    def _lower_for(self, node: ast.ForStatement) -> tuple:
        # init/cond exprs are bare evals in the parent (no statement
        # tick); each update expr is wrapped in a synthetic
        # ExpressionStatement appended to the loop body (one
        # statement tick + the expr per iteration) — mirror both so
        # tick counts line up exactly
        body = self.lower_block(node.body) + tuple(
            (S_EXPR, self.lower_expr(expr)) for expr in node.update
        )
        inits = tuple(self.lower_expr(e) for e in node.init)
        conds = tuple(self.lower_expr(e) for e in node.cond)
        return (S_FOR, inits, conds, body)

    def _lower_foreach(self, node: ast.ForeachStatement) -> tuple:
        return (
            S_FOREACH,
            node,
            self.lower_expr(node.subject),
            self.lower_block(node.body),
        )

    def _lower_switch(self, node: ast.SwitchStatement) -> tuple:
        has_default = any(case.test is None for case in node.cases)
        bodies = [self.lower_block(case.body) for case in node.cases]
        suffixes = tuple(
            tuple(instr for body in bodies[i:] for instr in body)
            for i in range(len(bodies))
        )
        return (S_SWITCH, self.lower_expr(node.subject), suffixes, has_default)

    def _lower_return(self, node: ast.ReturnStatement) -> tuple:
        return (
            S_RETURN,
            self.lower_expr(node.expr) if node.expr is not None else None,
        )

    def _lower_global(self, node: ast.GlobalStatement) -> tuple:
        return (S_GLOBAL, node)

    def _lower_static(self, node: ast.StaticVarStatement) -> tuple:
        return (S_STATIC, node)

    def _lower_unset(self, node: ast.UnsetStatement) -> tuple:
        names = tuple(
            var.name for var in node.vars if isinstance(var, ast.Variable)
        )
        return (S_UNSET, names, node.line)

    def _lower_throw(self, node: ast.ThrowStatement) -> tuple:
        return (S_THROW, self.lower_expr(node.expr))

    def _lower_try(self, node: ast.TryStatement) -> tuple:
        branches = tuple(
            [self.lower_block(node.body)]
            + [self.lower_block(catch.body) for catch in node.catches]
        )
        finally_code = (
            self.lower_block(node.finally_body)
            if node.finally_body is not None
            else None
        )
        return (S_TRY, branches, finally_code)

    def _lower_namespace(self, node) -> tuple:
        if node.body is not None:
            return (S_BLOCK, self.lower_block(node.body))
        return _NOP_INSTR

    # -- expressions -------------------------------------------------------

    def lower_expr(self, node: Optional[ast.Expr]) -> tuple:
        if node is None:
            return _NONE_INSTR
        handler = self._EXPR_DISPATCH.get(node.__class__)
        if handler is None:
            return _CLEAN_INSTR  # literals, constants, closures, unknown
        return handler(self, node)

    def _lower_varvar(self, node: ast.VariableVariable) -> tuple:
        return (E_VARVAR, self.lower_expr(node.expr))

    def _lower_interp(self, node: ast.InterpolatedString) -> tuple:
        return (E_INTERP, tuple(self.lower_expr(part) for part in node.parts))

    def _lower_shell(self, node: ast.ShellExec) -> tuple:
        emit_pre = None
        if VulnKind.CMDI in self.construct_kinds:
            emit_pre = (self.file, node.line)
        return (
            E_SHELL,
            tuple(self.lower_expr(part) for part in node.parts),
            emit_pre,
        )

    def _lower_arraylit(self, node: ast.ArrayLiteral) -> tuple:
        codes: List[tuple] = []
        for item in node.items:
            if item.key is not None:
                codes.append(self.lower_expr(item.key))
            codes.append(self.lower_expr(item.value))
        return (E_ARRAYLIT, tuple(codes))

    def _lower_index(self, node: ast.ArrayAccess) -> tuple:
        return (
            E_INDEX,
            self.lower_expr(node.array),
            self.lower_expr(node.index) if node.index is not None else None,
        )

    def _lower_prop(self, node: ast.PropertyAccess) -> tuple:
        prop = node.name if isinstance(node.name, str) else ""
        dyn = None
        if not isinstance(node.name, str) and node.name is not None:
            dyn = self.lower_expr(node.name)
        return (E_PROP, self.lower_expr(node.object), prop, dyn, f"->{prop}")

    def _lower_sprop(self, node: ast.StaticPropertyAccess) -> tuple:
        return (E_SPROP, node.class_name, node.name)

    def _lower_binary(self, node: ast.Binary) -> tuple:
        if node.op == ".":
            mode = 1
        elif node.op == "??":
            mode = 2
        else:
            mode = 0
        return (
            E_BINARY,
            self.lower_expr(node.left),
            self.lower_expr(node.right),
            mode,
        )

    def _lower_unary(self, node: ast.Unary) -> tuple:
        return (
            E_UNARY,
            self.lower_expr(node.operand),
            node.op not in ("!", "-", "+", "~"),
        )

    def _lower_ternary(self, node: ast.Ternary) -> tuple:
        return (
            E_TERNARY,
            self.lower_expr(node.cond),
            self.lower_expr(node.if_true) if node.if_true is not None else None,
            self.lower_expr(node.if_false),
        )

    def _lower_cast(self, node: ast.Cast) -> tuple:
        return (
            E_CAST,
            self.lower_expr(node.operand),
            node.to not in ("int", "float", "bool", "unset"),
        )

    def _lower_incdec(self, node: ast.IncDec) -> tuple:
        return (E_INCDEC, self.lower_expr(node.target))

    def _lower_list(self, node: ast.ListExpr) -> tuple:
        return (
            E_LIST,
            tuple(
                self.lower_expr(target)
                for target in node.targets
                if target is not None
            ),
        )

    def _lower_method_call(self, node: ast.MethodCall) -> tuple:
        method = node.method if isinstance(node.method, str) else None
        if not self.oop:
            method = None
        return (
            E_METHOD,
            node,
            self.lower_expr(node.object),
            tuple(self.lower_expr(arg) for arg in node.args),
            method,
        )

    def _lower_static_call(self, node: ast.StaticCall) -> tuple:
        return (
            E_SCALL,
            node,
            tuple(self.lower_expr(arg) for arg in node.args),
        )

    def _lower_new(self, node: ast.New) -> tuple:
        return (
            E_NEW,
            node,
            tuple(self.lower_expr(arg) for arg in node.args),
        )

    def _lower_clone(self, node: ast.Clone) -> tuple:
        return (E_CLONE, self.lower_expr(node.expr))

    def _lower_include(self, node: ast.IncludeExpr) -> tuple:
        return (E_INCLUDE, node, self.lower_expr(node.path))

    def _lower_exit(self, node: ast.ExitExpr) -> tuple:
        if node.expr is None:
            return (E_EXIT, None, None)
        return (E_EXIT, self.lower_expr(node.expr), self._xss_pre(node.expr, "exit"))

    def _lower_print(self, node: ast.PrintExpr) -> tuple:
        return (E_PRINT, self.lower_expr(node.expr), self._xss_pre(node.expr, "print"))

    # -- site pre-computation ----------------------------------------------

    def _xss_pre(self, expr: Optional[ast.Expr], sink: str) -> tuple:
        """(sink, file, line, markup context, fallback variable name):
        everything :meth:`TaintEngine._check_xss_output` derives from the
        syntax site rather than the runtime value."""
        context = context_at_end(_literal_prefix(expr))
        return (
            sink,
            self.file,
            expr.line if expr is not None else 0,
            context.value,
            _describe_expr(expr),
        )

    def _lower_variable(self, node: ast.Variable) -> tuple:
        name = node.name
        source = self.profile.superglobal_source(name)
        if source is not None:
            label = ConcreteSource(
                vector=source.vector,
                name=f"${name}",
                file=self.file,
                line=node.line,
            )
            return (
                E_SUPERGLOBAL,
                TaintState.from_label(label, source.kinds),
                (f"${name} read at {self.file}:{node.line}",),
                f"${name}",
            )
        instance_class = ""
        if self.oop:
            instance = self.profile.known_instance(name)
            if instance is not None:
                instance_class = instance.class_name
        rg_pre = None
        if self.profile.register_globals:
            label = ConcreteSource(
                vector=InputVector.GET,
                name=f"register_globals:${name}",
                file=self.file,
                line=node.line,
            )
            rg_pre = (
                TaintState.from_label(label, self.kind_universe),
                (f"uninitialized ${name} at {self.file}:{node.line}",),
            )
        return (E_LOCAL, name, f"${name}", instance_class, rg_pre)

    def _lower_assignment(self, node: ast.Assignment) -> tuple:
        value_code = self.lower_expr(node.value)
        if node.op == "=":
            mode = 0
            read_code = None
        elif node.op in (".=", "??="):
            mode = 1
            read_code = self.lower_expr(node.target)
        else:
            mode = 2
            read_code = self.lower_expr(node.target)
        if isinstance(node.target, ast.Variable):
            link = None
            if (
                node.op == "="
                and node.by_ref
                and isinstance(node.value, ast.Variable)
            ):
                link = node.value.name
            name = node.target.name
            return (
                E_ASSIGN_VAR,
                value_code,
                name,
                f"${name} assigned at {self.file}:{node.line}",
                link,
                read_code,
                mode,
                self.file,
                node.line,
            )
        return (E_ASSIGN, value_code, node.target, mode, read_code, node.line)

    def _lower_function_call(self, node: ast.FunctionCall) -> tuple:
        if not isinstance(node.name, str):
            return (
                E_CALL_DYN,
                self.lower_expr(node.name),
                tuple(self.lower_expr(arg) for arg in node.args),
            )
        name = node.name
        lowered = name.lower()
        arg_codes = tuple(self.lower_expr(arg) for arg in node.args)

        sinks = self.profile.function_sinks(lowered)
        if sinks and lowered in ("echo", "print", "exit"):
            sinks = ()

        filter_pre = None
        filter_spec = self.profile.function_filter(lowered)
        if filter_spec is not None:
            filter_pre = (
                tuple(sorted(filter_spec.kinds, key=lambda kind: kind.value)),
                (f"filtered by {name}()",),
            )

        revert_pre = None
        revert_spec = self.profile.revert(lowered)
        if revert_spec is not None:
            revert_pre = (
                tuple(sorted(revert_spec.kinds, key=lambda kind: kind.value)),
                (f"reverted by {name}()",),
            )

        source_pre = None
        source = self.profile.function_source(lowered)
        if source is not None:
            label = ConcreteSource(
                vector=source.vector,
                name=f"{name}()",
                file=self.file,
                line=node.line,
            )
            source_pre = (
                TaintState.from_label(label, source.kinds),
                (f"{name}() read at {self.file}:{node.line}",),
            )

        if lowered in PASSTHROUGH_FUNCTIONS:
            final_join = True
        elif lowered in CLEAN_FUNCTIONS:
            final_join = False
        else:
            final_join = self.unknown_call_policy == "propagate"

        return (
            E_CALL,
            node,
            arg_codes,
            lowered,
            name,
            sinks,
            filter_pre,
            revert_pre,
            source_pre,
            final_join,
            self.profile.function_propagation(lowered),
        )


# Lowering dispatch tables, keyed by node class (built after the class
# so entries are plain functions: ``handler(self, node)``).  Classes
# absent from the statement table lower to a ticked no-op; classes
# absent from the expression table lower to a clean value — both
# matching the parent interpreter's fallbacks.
_Lowerer._STMT_DISPATCH = {
    ast.ExpressionStatement: _Lowerer._lower_expr_stmt,
    ast.EchoStatement: _Lowerer._lower_echo,
    ast.Block: _Lowerer._lower_block_stmt,
    ast.IfStatement: _Lowerer._lower_if,
    ast.WhileStatement: _Lowerer._lower_while,
    ast.DoWhileStatement: _Lowerer._lower_dowhile,
    ast.ForStatement: _Lowerer._lower_for,
    ast.ForeachStatement: _Lowerer._lower_foreach,
    ast.SwitchStatement: _Lowerer._lower_switch,
    ast.ReturnStatement: _Lowerer._lower_return,
    ast.GlobalStatement: _Lowerer._lower_global,
    ast.StaticVarStatement: _Lowerer._lower_static,
    ast.UnsetStatement: _Lowerer._lower_unset,
    ast.ThrowStatement: _Lowerer._lower_throw,
    ast.TryStatement: _Lowerer._lower_try,
    ast.NamespaceStatement: _Lowerer._lower_namespace,
    ast.DeclareStatement: _Lowerer._lower_namespace,
}

_Lowerer._EXPR_DISPATCH = {
    ast.Variable: _Lowerer._lower_variable,
    ast.VariableVariable: _Lowerer._lower_varvar,
    ast.InterpolatedString: _Lowerer._lower_interp,
    ast.ShellExec: _Lowerer._lower_shell,
    ast.ArrayLiteral: _Lowerer._lower_arraylit,
    ast.ArrayAccess: _Lowerer._lower_index,
    ast.PropertyAccess: _Lowerer._lower_prop,
    ast.StaticPropertyAccess: _Lowerer._lower_sprop,
    ast.Assignment: _Lowerer._lower_assignment,
    ast.Binary: _Lowerer._lower_binary,
    ast.Unary: _Lowerer._lower_unary,
    ast.Ternary: _Lowerer._lower_ternary,
    ast.Cast: _Lowerer._lower_cast,
    ast.IncDec: _Lowerer._lower_incdec,
    ast.ListExpr: _Lowerer._lower_list,
    ast.FunctionCall: _Lowerer._lower_function_call,
    ast.MethodCall: _Lowerer._lower_method_call,
    ast.StaticCall: _Lowerer._lower_static_call,
    ast.New: _Lowerer._lower_new,
    ast.Clone: _Lowerer._lower_clone,
    ast.IncludeExpr: _Lowerer._lower_include,
    ast.ExitExpr: _Lowerer._lower_exit,
    ast.PrintExpr: _Lowerer._lower_print,
    # Literal, ClassConstAccess, ConstFetch, IssetExpr, EmptyExpr,
    # InstanceofExpr, Closure: absent -> _CLEAN_INSTR fallback
}


class IRTaintEngine(TaintEngine):
    """A :class:`TaintEngine` whose statement walks run on lowered IR.

    Only :meth:`_exec_block` is overridden: every entry into a
    statement list — top-level file walks, function summaries, inlined
    includes — looks up (or builds) the lowered code for that exact
    ``list`` object and executes it through the instruction loop.  All
    cold-path helpers (summaries, method dispatch, ``_assign_to`` for
    complex targets, include resolution) are inherited unchanged, which
    is what keeps the two evaluators semantics-identical.

    Soundness of pre-computation rests on one invariant of the parent
    engine: **a body always executes with ``_current_file`` equal to its
    defining file** (``_run_strict``/``_run_unit`` set it per file,
    ``_summarize`` sets it to ``info.file``, ``_eval_include`` pushes and
    pops it).  Every pre-formatted trace/label/site string relies on it;
    the difftest ``ir`` axis would catch any violation.
    """

    def __init__(
        self,
        model,
        profile,
        options: Optional[EngineOptions] = None,
        ir_store=None,
        ir_fingerprint: str = "",
    ) -> None:
        super().__init__(model, profile, options)
        self._ir_store = ir_store
        self._ir_fingerprint = ir_fingerprint
        #: id(statement list) -> lowered instruction tuple
        self._ir_codes: Dict[int, Tuple[tuple, ...]] = {}
        #: pins keeping memoized bodies (and their programs) alive so
        #: the ids above can never be recycled by the allocator
        self._ir_pins: List[object] = []
        self._lowered_files: set = set()
        # hot-loop invariants hoisted out of the instruction loop
        self._budget = self.options.step_budget
        self._depth_cap = (
            self.options.max_eval_depth if self.options.recover else None
        )
        self._oop = self.options.oop
        self._max_trace = self.options.max_trace

    # -- lowering / memoization --------------------------------------------

    def _exec_block(self, statements: Sequence[ast.Statement], scope: Scope) -> None:
        code = self._ir_codes.get(id(statements))
        if code is None:
            code = self._lower_for(statements)
        self._exec_code(code, scope)

    def _lower_for(self, statements: Sequence[ast.Statement]) -> Tuple[tuple, ...]:
        path = self._current_file
        if path not in self._lowered_files:
            self._lower_file(path)
            code = self._ir_codes.get(id(statements))
            if code is not None:
                return code
        # a body outside any known file program (synthetic statement
        # lists, `<unknown>` contexts): lower it standalone and pin it
        start = time.perf_counter()
        lowerer = _Lowerer(self.profile, self.options, path)
        code = lowerer.lower_block(statements)
        counters.ir_lower_seconds += time.perf_counter() - start
        counters.ir_bodies_lowered += 1
        self._ir_codes[id(statements)] = code
        self._ir_pins.append(statements)
        return code

    def _lower_file(self, path: str) -> None:
        self._lowered_files.add(path)
        file_model = self.model.files.get(path)
        if file_model is None:
            return
        bodies = list(iter_bodies(file_model.tree))
        program: Optional[IRProgram] = None
        key = ""
        digest = getattr(file_model, "digest", "")
        if self._ir_store is not None and digest and self._ir_fingerprint:
            key = ir_key(self._ir_fingerprint, path, digest)
            cached = self._ir_store.lookup_ir(key)
            if (
                isinstance(cached, IRProgram)
                and cached.version == IR_VERSION
                and len(cached.codes) == len(bodies)
            ):
                program = cached
                counters.ir_cache_hits += 1
            else:
                counters.ir_cache_misses += 1
        if program is None:
            start = time.perf_counter()
            lowerer = _Lowerer(self.profile, self.options, path)
            codes = tuple(lowerer.lower_block(body) for body in bodies)
            counters.ir_lower_seconds += time.perf_counter() - start
            counters.ir_bodies_lowered += len(bodies)
            program = IRProgram(version=IR_VERSION, file=path, codes=codes)
            if key and self._ir_store is not None:
                self._ir_store.store_ir(key, program)
        for body, code in zip(bodies, program.codes):
            self._ir_codes[id(body)] = code
        self._ir_pins.append((file_model, program))

    # -- instruction loop --------------------------------------------------

    def _exec_code(self, code: Tuple[tuple, ...], scope: Scope) -> None:
        """Execute one lowered statement list.

        The parent's ``_exec`` → ``_exec_dispatch`` pair is inlined:
        depth increment + cap check, then the step tick, then dispatch.
        There is no try/finally around the depth bookkeeping — every
        exception that can unwind from here (``BudgetExceeded``,
        ``UnitFault``, ``RecursionError``) lands in ``_run_unit``,
        whose ``finally`` resets ``_depth`` to 0 (the strict path never
        consults depth, since ``recover=False`` leaves the cap unset).
        """
        table = self._ST
        for instr in code:
            depth = self._depth + 1
            self._depth = depth
            cap = self._depth_cap
            if cap is not None and depth > cap:
                raise UnitFault(f"evaluation depth limit ({cap}) exceeded")
            steps = self._steps + 1
            self._steps = steps
            if steps > self._budget:
                raise BudgetExceeded()
            if self._unit_limit is not None and steps > self._unit_limit:
                raise UnitFault("unit step budget exhausted")
            if (
                self._deadline_at is not None
                and (steps & 0xFF) == 0
                and time.monotonic() > self._deadline_at
            ):
                raise UnitFault("unit wall-clock deadline exceeded")
            op = instr[0]
            if op == 0:  # S_EXPR — the hot case
                self._eval_code(instr[1], scope)
            else:
                table[op](self, instr, scope)
            self._depth = depth - 1

    def _eval_code(self, code: tuple, scope: Scope) -> Value:
        """Evaluate one lowered expression (the parent's ``_eval``)."""
        depth = self._depth + 1
        self._depth = depth
        cap = self._depth_cap
        if cap is not None and depth > cap:
            raise UnitFault(f"evaluation depth limit ({cap}) exceeded")
        steps = self._steps + 1
        self._steps = steps
        if steps > self._budget:
            raise BudgetExceeded()
        if self._unit_limit is not None and steps > self._unit_limit:
            raise UnitFault("unit step budget exhausted")
        if (
            self._deadline_at is not None
            and (steps & 0xFF) == 0
            and time.monotonic() > self._deadline_at
        ):
            raise UnitFault("unit wall-clock deadline exceeded")
        op = code[0]
        if op == 2:  # E_LOCAL — the hottest opcode
            value = self._ex_local(code, scope)
        elif op == 1 or op == 0:  # E_CLEAN / E_NONE
            value = Value()
        elif op == 3:  # E_SUPERGLOBAL
            value = Value(taint=code[1], trace=code[2], name_hint=code[3])
        else:
            value = self._EX[op](self, code, scope)
        self._depth = depth - 1
        return value

    # -- statement handlers ------------------------------------------------

    def _st_echo(self, instr: tuple, scope: Scope) -> None:
        for code, pre in instr[1]:
            self._ir_check_xss(code, pre, scope)

    def _st_if(self, instr: tuple, scope: Scope) -> None:
        self._eval_code(instr[1], scope)
        for cond in instr[2]:
            self._eval_code(cond, scope)
        self._exec_code_branches(instr[3], scope, instr[4])

    def _st_while(self, instr: tuple, scope: Scope) -> None:
        self._eval_code(instr[1], scope)
        self._exec_code_loop(instr[2], scope)

    def _st_dowhile(self, instr: tuple, scope: Scope) -> None:
        self._exec_code_loop(instr[1], scope)
        self._eval_code(instr[2], scope)

    def _st_for(self, instr: tuple, scope: Scope) -> None:
        for init in instr[1]:
            self._eval_code(init, scope)
        for cond in instr[2]:
            self._eval_code(cond, scope)
        self._exec_code_loop(instr[3], scope)

    def _st_foreach(self, instr: tuple, scope: Scope) -> None:
        node = instr[1]
        subject = self._eval_code(instr[2], scope)
        for target in (node.key_var, node.value_var):
            if isinstance(target, ast.Variable):
                scope.records[target.name] = VariableRecord(
                    name=target.name,
                    file=self._current_file,
                    line=node.line,
                    taint=subject.taint,
                    class_name=None,
                    trace=subject.trace,
                )
            elif target is not None:
                self._assign_to(target, subject, scope, node.line)
        self._exec_code_loop(instr[3], scope)

    def _st_switch(self, instr: tuple, scope: Scope) -> None:
        self._eval_code(instr[1], scope)
        self._exec_code_branches(instr[2], scope, instr[3])

    def _st_return(self, instr: tuple, scope: Scope) -> None:
        code = instr[1]
        if not self._summary_stack:
            if code is not None:
                self._eval_code(code, scope)
            return
        summary = self._summary_stack[-1]
        if code is None:
            return
        value = self._eval_code(code, scope)
        summary.return_taint = summary.return_taint.joined(value.taint)
        summary.return_class = summary.return_class or value.class_name

    def _st_global(self, instr: tuple, scope: Scope) -> None:
        self._exec_global(instr[1], scope)

    def _st_static(self, instr: tuple, scope: Scope) -> None:
        self._exec_static_vars(instr[1], scope)

    def _st_unset(self, instr: tuple, scope: Scope) -> None:
        file = self._current_file
        line = instr[2]
        for name in instr[1]:
            scope.records[name] = VariableRecord(name=name, file=file, line=line)

    def _st_throw(self, instr: tuple, scope: Scope) -> None:
        self._eval_code(instr[1], scope)

    def _st_try(self, instr: tuple, scope: Scope) -> None:
        self._exec_code_branches(instr[1], scope, False)
        if instr[2] is not None:
            self._exec_code(instr[2], scope)

    def _st_block(self, instr: tuple, scope: Scope) -> None:
        self._exec_code(instr[1], scope)

    def _st_nop(self, instr: tuple, scope: Scope) -> None:
        pass

    def _exec_code_branches(
        self,
        branch_codes: Tuple[Tuple[tuple, ...], ...],
        scope: Scope,
        exhaustive: bool,
    ) -> None:
        """Lowered mirror of :meth:`TaintEngine._exec_branches`."""
        outcomes: List[Scope] = []
        for code in branch_codes:
            snapshot = scope.copy()
            self._exec_code(code, snapshot)
            outcomes.append(snapshot)
        if not exhaustive:
            outcomes.append(scope.copy())
        if outcomes:
            joined = outcomes[0]
            joined.join_from(*outcomes[1:])
            scope.records = joined.records

    def _exec_code_loop(self, body: Tuple[tuple, ...], scope: Scope) -> None:
        """Lowered mirror of :meth:`TaintEngine._exec_loop`."""
        snapshot = scope.copy()
        self._exec_code(body, snapshot)
        self._exec_code(body, snapshot)
        scope.join_from(snapshot)

    # -- expression handlers -----------------------------------------------

    def _ex_local(self, code: tuple, scope: Scope) -> Value:
        name = code[1]
        if self.track:
            fp = self._unit_fp
            if fp is not None and scope.is_global_image:
                fp.reads.add(name)
        record = scope.records.get(name)
        if record is None:
            if self._oop:
                instance_class = code[3]
                if instance_class:
                    return Value(class_name=instance_class, name_hint=code[2])
            rg_pre = code[4]
            if rg_pre is not None and scope is self.globals:
                return Value(taint=rg_pre[0], trace=rg_pre[1], name_hint=code[2])
            return Value(name_hint=code[2])
        class_name = record.class_name or ""
        if not class_name and self._oop and code[3]:
            class_name = code[3]
        return Value(
            taint=record.taint,
            class_name=class_name,
            trace=record.trace,
            name_hint=code[2],
        )

    def _ex_varvar(self, code: tuple, scope: Scope) -> Value:
        self._eval_code(code[1], scope)
        return Value()

    def _ex_interp(self, code: tuple, scope: Scope) -> Value:
        value = Value()
        for part in code[1]:
            value = value.joined(self._eval_code(part, scope))
        value.class_name = ""
        return value

    def _ex_shell(self, code: tuple, scope: Scope) -> Value:
        value = Value()
        for part in code[1]:
            value = value.joined(self._eval_code(part, scope))
        pre = code[2]
        if pre is not None and value.taint.active.get(VulnKind.CMDI):
            self._emit(
                SinkEvent(
                    kind=VulnKind.CMDI,
                    sink="`...`",
                    file=pre[0],
                    line=pre[1],
                    variable=value.name_hint,
                    taint=value.taint,
                    trace=value.trace,
                )
            )
        return value

    def _ex_arraylit(self, code: tuple, scope: Scope) -> Value:
        value = Value()
        for item in code[1]:
            value = value.joined(self._eval_code(item, scope))
        value.class_name = ""
        return value

    def _ex_index(self, code: tuple, scope: Scope) -> Value:
        container = self._eval_code(code[1], scope)
        if code[2] is not None:
            self._eval_code(code[2], scope)
        hint = container.name_hint + "[...]" if container.name_hint else ""
        return Value(taint=container.taint, trace=container.trace, name_hint=hint)

    def _ex_prop(self, code: tuple, scope: Scope) -> Value:
        obj = self._eval_code(code[1], scope)
        if code[3] is not None:
            self._eval_code(code[3], scope)
        prop = code[2]
        hint = obj.name_hint + code[4] if obj.name_hint else code[4]
        if self._oop and obj.class_name and prop:
            self._note_prop_read(obj.class_name, prop)
            return Value(
                taint=self.class_props.read(obj.class_name, prop),
                trace=obj.trace,
                name_hint=hint,
            )
        return Value(taint=obj.taint, trace=obj.trace, name_hint=hint)

    def _ex_sprop(self, code: tuple, scope: Scope) -> Value:
        if self._oop:
            self._note_prop_read(code[1], code[2])
            return Value(taint=self.class_props.read(code[1], code[2]))
        return Value()

    def _ex_assign_var(self, code: tuple, scope: Scope) -> Value:
        value = self._eval_code(code[1], scope)
        mode = code[6]
        if mode == 0:
            if code[4] is not None:
                self._link_reference(code[2], code[4], scope)
            result = value
        elif mode == 1:
            current = self._eval_code(code[5], scope)
            result = current.joined(value)
        else:
            self._eval_code(code[5], scope)
            result = Value()
        # inlined Variable branch of TaintEngine._assign_to
        name = code[2]
        records = scope.records
        was_global_alias = (
            scope is not self.globals
            and name in scope.global_aliases
            and name in records
        )
        trace = result.trace + (code[3],)
        record = VariableRecord(
            name=name,
            file=code[7],
            line=code[8],
            taint=result.taint,
            class_name=result.class_name or None,
            trace=trace[-self._max_trace:],
        )
        records[name] = record
        if was_global_alias:
            self.globals.records[name] = record
        if name in scope.static_names and scope.static_slots is not None:
            prior = scope.static_slots.get(name)
            scope.static_slots[name] = (
                result.taint if prior is None else prior.joined(result.taint)
            )
        group = scope.ref_groups.get(name)
        if group is not None:
            for alias in group:
                if alias != name:
                    records[alias] = record.updated(name=alias)
        return result

    def _ex_assign(self, code: tuple, scope: Scope) -> Value:
        value = self._eval_code(code[1], scope)
        mode = code[3]
        if mode == 0:
            result = value
        elif mode == 1:
            current = self._eval_code(code[4], scope)
            result = current.joined(value)
        else:
            self._eval_code(code[4], scope)
            result = Value()
        self._assign_to(code[2], result, scope, code[5])
        return result

    def _ex_binary(self, code: tuple, scope: Scope) -> Value:
        left = self._eval_code(code[1], scope)
        right = self._eval_code(code[2], scope)
        mode = code[3]
        if mode == 1:
            joined = left.joined(right)
            joined.class_name = ""
            return joined
        if mode == 2:
            return left.joined(right)
        return Value()

    def _ex_unary(self, code: tuple, scope: Scope) -> Value:
        inner = self._eval_code(code[1], scope)
        return inner if code[2] else Value()

    def _ex_ternary(self, code: tuple, scope: Scope) -> Value:
        self._eval_code(code[1], scope)
        left = self._eval_code(code[2] if code[2] is not None else code[1], scope)
        right = self._eval_code(code[3], scope)
        return left.joined(right)

    def _ex_cast(self, code: tuple, scope: Scope) -> Value:
        inner = self._eval_code(code[1], scope)
        return inner if code[2] else Value()

    def _ex_incdec(self, code: tuple, scope: Scope) -> Value:
        self._eval_code(code[1], scope)
        return Value()

    def _ex_list(self, code: tuple, scope: Scope) -> Value:
        value = Value()
        for target in code[1]:
            value = value.joined(self._eval_code(target, scope))
        return value

    def _ex_call(self, code: tuple, scope: Scope) -> Value:
        values = [self._eval_code(arg, scope) for arg in code[2]]

        for sink in code[5]:
            self._check_sink(sink.kind, code[4], code[1], values, sink_spec=sink)

        filter_pre = code[6]
        if filter_pre is not None:
            joined = Value()
            for value in values:
                joined = joined.joined(value)
            return Value(
                taint=joined.taint.filtered(filter_pre[0]),
                trace=joined.trace + filter_pre[1],
            )

        revert_pre = code[7]
        if revert_pre is not None:
            joined = Value()
            for value in values:
                joined = joined.joined(value)
            return Value(
                taint=joined.taint.reverted(revert_pre[0]),
                trace=joined.trace + revert_pre[1],
            )

        source_pre = code[8]
        if source_pre is not None:
            return Value(taint=source_pre[0], trace=source_pre[1])

        info = self._lookup_function_dep(code[3])
        if info is not None and not info.is_method:
            summary = self._summarize(info)
            node = code[1]
            return self._apply_summary(summary, values, node.args, scope, node.line)

        propagation = code[10]
        if propagation is not None:
            return self._apply_propagation(propagation, code[4], values)

        if code[9]:
            joined = Value()
            for value in values:
                joined = joined.joined(value)
            joined.class_name = ""
            return joined
        return Value()

    def _ex_call_dyn(self, code: tuple, scope: Scope) -> Value:
        self._eval_code(code[1], scope)
        for arg in code[2]:
            self._eval_code(arg, scope)
        return Value()

    def _ex_method(self, code: tuple, scope: Scope) -> Value:
        obj = self._eval_code(code[2], scope)
        method = code[4]
        if method is None:
            for arg in code[3]:
                self._eval_code(arg, scope)
            return Value()
        values = [self._eval_code(arg, scope) for arg in code[3]]
        class_name = obj.class_name
        if not class_name:
            return Value()
        return self._dispatch_method(class_name, method, code[1], values, obj, scope)

    def _ex_scall(self, code: tuple, scope: Scope) -> Value:
        values = [self._eval_code(arg, scope) for arg in code[2]]
        return self._static_call_with_values(code[1], values, scope)

    def _ex_new(self, code: tuple, scope: Scope) -> Value:
        values = [self._eval_code(arg, scope) for arg in code[2]]
        return self._new_with_values(code[1], values, scope)

    def _ex_clone(self, code: tuple, scope: Scope) -> Value:
        return self._eval_code(code[1], scope)

    def _ex_include(self, code: tuple, scope: Scope) -> Value:
        path_value = self._eval_code(code[2], scope)
        return self._include_with_value(code[1], path_value, scope)

    def _ex_exit(self, code: tuple, scope: Scope) -> Value:
        if code[1] is not None:
            self._ir_check_xss(code[1], code[2], scope)
        return Value()

    def _ex_print(self, code: tuple, scope: Scope) -> Value:
        self._ir_check_xss(code[1], code[2], scope)
        return Value()

    def _ir_check_xss(self, code: tuple, pre: tuple, scope: Scope) -> None:
        """Lowered :meth:`TaintEngine._check_xss_output`: the markup
        context and site strings come pre-computed in ``pre``."""
        value = self._eval_code(code, scope)
        if value.taint.active.get(VulnKind.XSS):
            self._emit(
                SinkEvent(
                    kind=VulnKind.XSS,
                    sink=pre[0],
                    file=pre[1],
                    line=pre[2],
                    variable=value.name_hint or pre[4],
                    taint=value.taint,
                    trace=value.trace,
                    markup_context=pre[3],
                )
            )


# Handler dispatch tables, indexed by opcode.  Built after the class so
# the entries are plain functions (``table[op](self, instr, scope)``).
IRTaintEngine._ST = [None] * 16  # type: ignore[attr-defined]
for _op, _handler in (
    (S_ECHO, IRTaintEngine._st_echo),
    (S_IF, IRTaintEngine._st_if),
    (S_WHILE, IRTaintEngine._st_while),
    (S_DOWHILE, IRTaintEngine._st_dowhile),
    (S_FOREACH, IRTaintEngine._st_foreach),
    (S_SWITCH, IRTaintEngine._st_switch),
    (S_RETURN, IRTaintEngine._st_return),
    (S_GLOBAL, IRTaintEngine._st_global),
    (S_STATIC, IRTaintEngine._st_static),
    (S_UNSET, IRTaintEngine._st_unset),
    (S_THROW, IRTaintEngine._st_throw),
    (S_TRY, IRTaintEngine._st_try),
    (S_BLOCK, IRTaintEngine._st_block),
    (S_NOP, IRTaintEngine._st_nop),
    (S_FOR, IRTaintEngine._st_for),
):
    IRTaintEngine._ST[_op] = _handler  # type: ignore[attr-defined]

IRTaintEngine._EX = [None] * 28  # type: ignore[attr-defined]
for _op, _handler in (
    (E_LOCAL, IRTaintEngine._ex_local),
    (E_VARVAR, IRTaintEngine._ex_varvar),
    (E_INTERP, IRTaintEngine._ex_interp),
    (E_SHELL, IRTaintEngine._ex_shell),
    (E_ARRAYLIT, IRTaintEngine._ex_arraylit),
    (E_INDEX, IRTaintEngine._ex_index),
    (E_PROP, IRTaintEngine._ex_prop),
    (E_SPROP, IRTaintEngine._ex_sprop),
    (E_ASSIGN_VAR, IRTaintEngine._ex_assign_var),
    (E_ASSIGN, IRTaintEngine._ex_assign),
    (E_BINARY, IRTaintEngine._ex_binary),
    (E_UNARY, IRTaintEngine._ex_unary),
    (E_TERNARY, IRTaintEngine._ex_ternary),
    (E_CAST, IRTaintEngine._ex_cast),
    (E_INCDEC, IRTaintEngine._ex_incdec),
    (E_LIST, IRTaintEngine._ex_list),
    (E_CALL, IRTaintEngine._ex_call),
    (E_CALL_DYN, IRTaintEngine._ex_call_dyn),
    (E_METHOD, IRTaintEngine._ex_method),
    (E_SCALL, IRTaintEngine._ex_scall),
    (E_NEW, IRTaintEngine._ex_new),
    (E_CLONE, IRTaintEngine._ex_clone),
    (E_INCLUDE, IRTaintEngine._ex_include),
    (E_EXIT, IRTaintEngine._ex_exit),
    (E_PRINT, IRTaintEngine._ex_print),
):
    IRTaintEngine._EX[_op] = _handler  # type: ignore[attr-defined]


def describe_code(code, indent: int = 0) -> List[str]:
    """Canonical, hash-stable text for one lowered instruction tree.

    Used by the determinism tests: two lowerings of the same source
    under different ``PYTHONHASHSEED`` values must describe identically.
    Sets (taint label sets, spec kinds) are rendered sorted.
    """
    lines: List[str] = []
    pad = "  " * indent

    def render(value) -> str:
        if isinstance(value, TaintState):
            parts = []
            for kind in sorted(value.active, key=lambda k: k.value):
                labels = sorted(repr(label) for label in value.active[kind])
                parts.append(f"{kind.value}:[{','.join(labels)}]")
            return f"Taint({';'.join(parts)})"
        if isinstance(value, ast.Node):
            return f"{type(value).__name__}@{value.line}"
        if isinstance(value, tuple):
            return "(" + ",".join(render(item) for item in value) + ")"
        if isinstance(value, frozenset):
            return "{" + ",".join(sorted(repr(item) for item in value)) + "}"
        return repr(value)

    for instr in code:
        lines.append(pad + render(instr))
    return lines


def describe_program(program: IRProgram) -> str:
    """Canonical dump of a whole lowered file (determinism harness)."""
    lines = [f"ir v{program.version} file={program.file}"]
    for index, code in enumerate(program.codes):
        lines.append(f"body {index}:")
        lines.extend(describe_code(code, indent=1))
    return "\n".join(lines)

"""Results-processing stage: findings, per-file failures, reports.

The output of an analysis run is a :class:`ToolReport`: the list of
:class:`Finding` records (one per vulnerable sink reached by tainted
data), the per-file failures used by the robustness evaluation
(Section V.E), and bookkeeping such as analysis wall time and the full
variable dump phpSAFE exposes for manual review (Section III.D).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..config.vulnerability import InputVector, VulnKind
from ..incidents import Incident
from .taint import VariableRecord


@dataclass(frozen=True)
class Finding:
    """One reported vulnerability.

    ``file``/``line`` locate the sensitive sink; ``vectors`` lists the
    input vectors of every source that can reach it (Table II taxonomy);
    ``trace`` is the variable-to-variable flow phpSAFE shows reviewers.
    """

    kind: VulnKind
    file: str
    line: int
    sink: str
    variable: str = ""
    vectors: Tuple[InputVector, ...] = ()
    trace: Tuple[str, ...] = ()
    via_oop: bool = False
    #: markup context for XSS findings ("html", "attribute", "url",
    #: "script", ...) — empty for non-XSS kinds
    markup_context: str = ""
    #: originating plugin slug.  Empty inside a single-plugin report
    #: (where ``file`` is unambiguous); :meth:`ToolReport.merged` stamps
    #: it so findings from different plugins that share a file name
    #: (``index.php`` everywhere) stay distinct in corpus-wide totals.
    plugin: str = ""
    #: eagerly computed hash — findings are hashed repeatedly during
    #: matching/overlap set operations, and every field is immutable
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    self.kind,
                    self.file,
                    self.line,
                    self.sink,
                    self.variable,
                    self.vectors,
                    self.trace,
                    self.via_oop,
                    self.markup_context,
                    self.plugin,
                )
            ),
        )

    def __hash__(self) -> int:
        return self._hash

    # string hashes are salted per process (PYTHONHASHSEED), so the
    # cached hash must be recomputed when a finding crosses a process
    # boundary (batch workers ship findings back pickled)
    def __getstate__(self):
        return {
            name: value for name, value in self.__dict__.items() if name != "_hash"
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        self.__post_init__()

    @property
    def key(self) -> Tuple[str, str, int]:
        """Dedup/matching identity: kind + sink location."""
        return (self.kind.value, self.file, self.line)

    @property
    def dedup_key(self) -> Tuple[str, str, str, int]:
        """Report-level dedup identity: plugin provenance + :attr:`key`."""
        return (self.plugin, self.kind.value, self.file, self.line)

    @property
    def primary_vector(self) -> Optional[InputVector]:
        """The most attacker-reachable vector (lowest tier wins)."""
        if not self.vectors:
            return None
        return min(self.vectors, key=lambda vector: (vector.tier, vector.value))

    def describe(self) -> str:
        vectors = "/".join(vector.value for vector in self.vectors) or "?"
        return (
            f"{self.kind} at {self.file}:{self.line} via {self.sink}"
            f" (input: {vectors}, variable: {self.variable or '?'})"
        )


#: canonical cross-configuration finding identity used by the
#: differential harness: plugin provenance + kind + sink location + sink
FindingSignature = Tuple[str, str, str, int, str]


def finding_signatures(reports: Iterable["ToolReport"]) -> Set[FindingSignature]:
    """Signature set of every finding in ``reports``.

    Findings in a single-plugin report carry an empty ``plugin`` field
    (it is stamped only by :meth:`ToolReport.merged`), so the owning
    report's plugin fills the gap — two configurations of the same scan
    must produce identical signature sets.
    """
    signatures: Set[FindingSignature] = set()
    for report in reports:
        for finding in report.findings:
            signatures.add(
                (
                    finding.plugin or report.plugin,
                    finding.kind.value,
                    finding.file,
                    finding.line,
                    finding.sink,
                )
            )
    return signatures


@dataclass(frozen=True)
class FileFailure:
    """A robustness incident on one file (Section V.E).

    ``completed=False`` means the tool skipped the file entirely;
    ``completed=True`` with ``is_error=True`` models Pixy's "raised an
    error message" cases where analysis still finished.
    """

    file: str
    reason: str
    is_error: bool = False  # the tool emitted an error message
    completed: bool = False  # analysis of the file still completed


@dataclass
class ToolReport:
    """Everything a tool produced for one plugin."""

    tool: str
    plugin: str
    findings: List[Finding] = field(default_factory=list)
    failures: List[FileFailure] = field(default_factory=list)
    #: typed robustness incidents (Section V.E taxonomy); the
    #: :attr:`failures` list is derived from these for backward
    #: compatibility with the evaluation tables
    incidents: List[Incident] = field(default_factory=list)
    files_analyzed: int = 0
    loc_analyzed: int = 0
    #: coverage denominator: files/LOC the tool could *not* analyze, so
    #: partial coverage is never silently presented as full coverage
    files_skipped: int = 0
    loc_skipped: int = 0
    seconds: float = 0.0
    #: per-run performance counters (tokens/s, summary-cache hits, ...)
    #: — the delta of :data:`repro.perf.counters` over this analysis
    perf: Dict[str, float] = field(default_factory=dict)
    #: phpSAFE's reviewer resources: the final parser_variables dump.
    variables: Dict[str, VariableRecord] = field(default_factory=dict)
    #: index of the dedup keys already in :attr:`findings`, so inserts
    #: stay O(1) on large-corpus merges instead of a linear rescan.
    _seen_keys: Set[Tuple[str, str, str, int]] = field(
        default_factory=set, init=False, repr=False, compare=False
    )

    def add_finding(self, finding: Finding) -> bool:
        """Append ``finding`` unless an identical sink was already
        reported; returns True when added."""
        if len(self._seen_keys) != len(self.findings):
            # findings was assigned or mutated directly; rebuild the index
            self._seen_keys = {existing.dedup_key for existing in self.findings}
        if finding.dedup_key in self._seen_keys:
            return False
        self.findings.append(finding)
        self._seen_keys.add(finding.dedup_key)
        return True

    def findings_of(self, kind: VulnKind) -> List[Finding]:
        return [finding for finding in self.findings if finding.kind is kind]

    @property
    def failed_files(self) -> List[str]:
        """Files whose analysis did not complete."""
        return [failure.file for failure in self.failures if not failure.completed]

    @property
    def error_count(self) -> int:
        return sum(1 for failure in self.failures if failure.is_error)

    @property
    def recovered_count(self) -> int:
        """Incidents the pipeline recovered from (degraded, not lost)."""
        return sum(1 for incident in self.incidents if incident.recovered)

    @property
    def coverage(self) -> float:
        """Fraction of plugin LOC actually analyzed (1.0 = everything)."""
        total = self.loc_analyzed + self.loc_skipped
        return self.loc_analyzed / total if total else 1.0

    def merged(self, other: "ToolReport") -> "ToolReport":
        """Combine reports of two plugins (used for whole-corpus totals).

        Each finding is stamped with the plugin it came from before
        deduplication, so two plugins flagging the same ``(kind, file,
        line)`` — common when both ship an ``index.php`` — contribute two
        findings, while true duplicates (re-merging the same plugin)
        still collapse.
        """
        merged = ToolReport(tool=self.tool, plugin=f"{self.plugin}+{other.plugin}")
        for report in (self, other):
            for finding in report.findings:
                if not finding.plugin:
                    finding = replace(finding, plugin=report.plugin)
                merged.add_finding(finding)
        merged.failures = self.failures + other.failures
        merged.incidents = self.incidents + other.incidents
        merged.files_analyzed = self.files_analyzed + other.files_analyzed
        merged.loc_analyzed = self.loc_analyzed + other.loc_analyzed
        merged.files_skipped = self.files_skipped + other.files_skipped
        merged.loc_skipped = self.loc_skipped + other.loc_skipped
        merged.seconds = self.seconds + other.seconds
        return merged

"""Results-processing stage: findings, per-file failures, reports.

The output of an analysis run is a :class:`ToolReport`: the list of
:class:`Finding` records (one per vulnerable sink reached by tainted
data), the per-file failures used by the robustness evaluation
(Section V.E), and bookkeeping such as analysis wall time and the full
variable dump phpSAFE exposes for manual review (Section III.D).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, IO, Iterable, Iterator, List, Optional, Set, Tuple

from ..config.vulnerability import InputVector, VulnKind
from ..incidents import Incident
from .taint import VariableRecord


@dataclass(frozen=True)
class Finding:
    """One reported vulnerability.

    ``file``/``line`` locate the sensitive sink; ``vectors`` lists the
    input vectors of every source that can reach it (Table II taxonomy);
    ``trace`` is the variable-to-variable flow phpSAFE shows reviewers.
    """

    kind: VulnKind
    file: str
    line: int
    sink: str
    variable: str = ""
    vectors: Tuple[InputVector, ...] = ()
    trace: Tuple[str, ...] = ()
    via_oop: bool = False
    #: markup context for XSS findings ("html", "attribute", "url",
    #: "script", ...) — empty for non-XSS kinds
    markup_context: str = ""
    #: originating plugin slug.  Empty inside a single-plugin report
    #: (where ``file`` is unambiguous); :meth:`ToolReport.merged` stamps
    #: it so findings from different plugins that share a file name
    #: (``index.php`` everywhere) stay distinct in corpus-wide totals.
    plugin: str = ""
    #: eagerly computed hash — findings are hashed repeatedly during
    #: matching/overlap set operations, and every field is immutable
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    self.kind,
                    self.file,
                    self.line,
                    self.sink,
                    self.variable,
                    self.vectors,
                    self.trace,
                    self.via_oop,
                    self.markup_context,
                    self.plugin,
                )
            ),
        )

    def __hash__(self) -> int:
        return self._hash

    # string hashes are salted per process (PYTHONHASHSEED), so the
    # cached hash must be recomputed when a finding crosses a process
    # boundary (batch workers ship findings back pickled)
    def __getstate__(self):
        return {
            name: value for name, value in self.__dict__.items() if name != "_hash"
        }

    def __setstate__(self, state) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        self.__post_init__()

    @property
    def key(self) -> Tuple[str, str, int]:
        """Dedup/matching identity: kind + sink location."""
        return (self.kind.value, self.file, self.line)

    @property
    def dedup_key(self) -> Tuple[str, str, str, int]:
        """Report-level dedup identity: plugin provenance + :attr:`key`."""
        return (self.plugin, self.kind.value, self.file, self.line)

    @property
    def primary_vector(self) -> Optional[InputVector]:
        """The most attacker-reachable vector (lowest tier wins)."""
        if not self.vectors:
            return None
        return min(self.vectors, key=lambda vector: (vector.tier, vector.value))

    def describe(self) -> str:
        vectors = "/".join(vector.value for vector in self.vectors) or "?"
        return (
            f"{self.kind} at {self.file}:{self.line} via {self.sink}"
            f" (input: {vectors}, variable: {self.variable or '?'})"
        )


#: canonical cross-configuration finding identity used by the
#: differential harness: plugin provenance + kind + sink location + sink
FindingSignature = Tuple[str, str, str, int, str]


def finding_signatures(reports: Iterable["ToolReport"]) -> Set[FindingSignature]:
    """Signature set of every finding in ``reports``.

    Findings in a single-plugin report carry an empty ``plugin`` field
    (it is stamped only by :meth:`ToolReport.merged`), so the owning
    report's plugin fills the gap — two configurations of the same scan
    must produce identical signature sets.
    """
    signatures: Set[FindingSignature] = set()
    for report in reports:
        for finding in report.findings:
            signatures.add(
                (
                    finding.plugin or report.plugin,
                    finding.kind.value,
                    finding.file,
                    finding.line,
                    finding.sink,
                )
            )
    return signatures


@dataclass(frozen=True)
class FileFailure:
    """A robustness incident on one file (Section V.E).

    ``completed=False`` means the tool skipped the file entirely;
    ``completed=True`` with ``is_error=True`` models Pixy's "raised an
    error message" cases where analysis still finished.
    """

    file: str
    reason: str
    is_error: bool = False  # the tool emitted an error message
    completed: bool = False  # analysis of the file still completed


@dataclass
class ToolReport:
    """Everything a tool produced for one plugin."""

    tool: str
    plugin: str
    findings: List[Finding] = field(default_factory=list)
    failures: List[FileFailure] = field(default_factory=list)
    #: typed robustness incidents (Section V.E taxonomy); the
    #: :attr:`failures` list is derived from these for backward
    #: compatibility with the evaluation tables
    incidents: List[Incident] = field(default_factory=list)
    files_analyzed: int = 0
    loc_analyzed: int = 0
    #: coverage denominator: files/LOC the tool could *not* analyze, so
    #: partial coverage is never silently presented as full coverage
    files_skipped: int = 0
    loc_skipped: int = 0
    seconds: float = 0.0
    #: per-run performance counters (tokens/s, summary-cache hits, ...)
    #: — the delta of :data:`repro.perf.counters` over this analysis
    perf: Dict[str, float] = field(default_factory=dict)
    #: phpSAFE's reviewer resources: the final parser_variables dump.
    variables: Dict[str, VariableRecord] = field(default_factory=dict)
    #: index of the dedup keys already in :attr:`findings`, so inserts
    #: stay O(1) on large-corpus merges instead of a linear rescan.
    _seen_keys: Set[Tuple[str, str, str, int]] = field(
        default_factory=set, init=False, repr=False, compare=False
    )
    #: how many entries of :attr:`findings` the index covers.  Staleness
    #: is detected against this watermark, NOT against
    #: ``len(_seen_keys)``: the list may legitimately hold dedup-key
    #: duplicates after direct mutation, and a set-vs-list length
    #: comparison then mismatches forever — every insert rebuilt the
    #: whole index and large merges went quadratic.
    _indexed_count: int = field(default=0, init=False, repr=False, compare=False)
    #: index rebuilds performed (observability hook for the O(n)
    #: regression test; a merge must trigger at most one)
    _index_rebuilds: int = field(default=0, init=False, repr=False, compare=False)

    def add_finding(self, finding: Finding) -> bool:
        """Append ``finding`` unless an identical sink was already
        reported; returns True when added."""
        if self._indexed_count != len(self.findings):
            # findings was assigned or mutated directly since the last
            # insert; rebuild the index once, then track incrementally
            self._seen_keys = {existing.dedup_key for existing in self.findings}
            self._indexed_count = len(self.findings)
            self._index_rebuilds += 1
        if finding.dedup_key in self._seen_keys:
            return False
        self.findings.append(finding)
        self._seen_keys.add(finding.dedup_key)
        self._indexed_count += 1
        return True

    def findings_of(self, kind: VulnKind) -> List[Finding]:
        return [finding for finding in self.findings if finding.kind is kind]

    @property
    def failed_files(self) -> List[str]:
        """Files whose analysis did not complete."""
        return [failure.file for failure in self.failures if not failure.completed]

    @property
    def error_count(self) -> int:
        return sum(1 for failure in self.failures if failure.is_error)

    @property
    def recovered_count(self) -> int:
        """Incidents the pipeline recovered from (degraded, not lost)."""
        return sum(1 for incident in self.incidents if incident.recovered)

    @property
    def coverage(self) -> float:
        """Fraction of plugin LOC actually analyzed (1.0 = everything)."""
        total = self.loc_analyzed + self.loc_skipped
        return self.loc_analyzed / total if total else 1.0

    def merged(self, other: "ToolReport") -> "ToolReport":
        """Combine reports of two plugins (used for whole-corpus totals).

        Each finding is stamped with the plugin it came from before
        deduplication, so two plugins flagging the same ``(kind, file,
        line)`` — common when both ship an ``index.php`` — contribute two
        findings, while true duplicates (re-merging the same plugin)
        still collapse.
        """
        merged = ToolReport(tool=self.tool, plugin=f"{self.plugin}+{other.plugin}")
        for report in (self, other):
            for finding in report.findings:
                if not finding.plugin:
                    finding = replace(finding, plugin=report.plugin)
                merged.add_finding(finding)
        merged.failures = self.failures + other.failures
        merged.incidents = self.incidents + other.incidents
        merged.files_analyzed = self.files_analyzed + other.files_analyzed
        merged.loc_analyzed = self.loc_analyzed + other.loc_analyzed
        merged.files_skipped = self.files_skipped + other.files_skipped
        merged.loc_skipped = self.loc_skipped + other.loc_skipped
        merged.seconds = self.seconds + other.seconds
        return merged


# ---------------------------------------------------------------------------
# Streaming findings: the on-disk JSONL sink of memory-bounded scans
# ---------------------------------------------------------------------------
#
# At million-LOC corpus scale, accumulating one ToolReport per plugin in
# memory IS the memory bug: findings carry traces, incidents and perf
# dicts, and thousands of retained reports dominate peak RSS long after
# each plugin's analysis finished.  Streaming mode writes every finding
# to an append-only JSONL file the moment its plugin completes and drops
# the report; SARIF export, telemetry and the parity harness consume the
# stream through the readers below instead of live report objects.

#: schema tag of the findings stream (header record)
FINDINGS_STREAM_SCHEMA = "repro.findings.stream/v1"


def finding_to_dict(finding: Finding) -> Dict[str, object]:
    """Lossless JSON form of one finding (inverse: :func:`finding_from_dict`)."""
    return {
        "kind": finding.kind.value,
        "file": finding.file,
        "line": finding.line,
        "sink": finding.sink,
        "variable": finding.variable,
        "vectors": [vector.value for vector in finding.vectors],
        "trace": list(finding.trace),
        "via_oop": finding.via_oop,
        "markup_context": finding.markup_context,
        "plugin": finding.plugin,
    }


def finding_from_dict(record: Dict[str, object]) -> Finding:
    """Rebuild a :class:`Finding` from its JSON record."""
    return Finding(
        kind=VulnKind(record["kind"]),
        file=str(record["file"]),
        line=int(record["line"]),  # type: ignore[arg-type]
        sink=str(record["sink"]),
        variable=str(record.get("variable", "")),
        vectors=tuple(
            InputVector(value) for value in record.get("vectors", ())  # type: ignore[union-attr]
        ),
        trace=tuple(str(step) for step in record.get("trace", ())),  # type: ignore[union-attr]
        via_oop=bool(record.get("via_oop", False)),
        markup_context=str(record.get("markup_context", "")),
        plugin=str(record.get("plugin", "")),
    )


class JsonlFindingSink:
    """Append-only JSONL sink replacing in-memory report accumulation.

    Three record types, one JSON object per line:

    - ``header`` — stream schema + tool name, written once;
    - ``finding`` — one :class:`Finding`, plugin-stamped (the streaming
      equivalent of the stamping :meth:`ToolReport.merged` performs);
    - ``plugin`` — the per-plugin summary written after its findings
      (files/LOC/coverage/seconds/incident counts), so readers can
      rebuild skeletal reports without the findings' memory footprint.

    Records are flushed per plugin: a streaming scan killed mid-corpus
    keeps every completed plugin's results.
    """

    def __init__(self, path: str, tool: str = "") -> None:
        self.path = path
        self.findings_written = 0
        self.plugins_written = 0
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")
        self._write({"record": "header", "schema": FINDINGS_STREAM_SCHEMA,
                     "tool": tool})

    def _write(self, record: Dict[str, object]) -> None:
        assert self._handle is not None, "sink already closed"
        self._handle.write(json.dumps(record, sort_keys=True))
        self._handle.write("\n")

    def write_report(self, report: ToolReport) -> int:
        """Stream one plugin's results; returns findings written."""
        for finding in report.findings:
            record = finding_to_dict(finding)
            record["record"] = "finding"
            if not record["plugin"]:
                record["plugin"] = report.plugin
            self._write(record)
        self._write(
            {
                "record": "plugin",
                "plugin": report.plugin,
                "tool": report.tool,
                "findings": len(report.findings),
                "failures": len(report.failures),
                "incidents": len(report.incidents),
                "recovered": report.recovered_count,
                "files_analyzed": report.files_analyzed,
                "loc_analyzed": report.loc_analyzed,
                "files_skipped": report.files_skipped,
                "loc_skipped": report.loc_skipped,
                "seconds": round(report.seconds, 6),
            }
        )
        assert self._handle is not None
        self._handle.flush()
        self.findings_written += len(report.findings)
        self.plugins_written += 1
        return len(report.findings)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlFindingSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_finding_stream(path: str) -> Iterator[Dict[str, object]]:
    """Yield every record of a findings stream, in file order.

    Reading is itself streaming (one line at a time), so consumers can
    process million-LOC scan output without materializing it.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def stream_signatures(path: str) -> Set[FindingSignature]:
    """Canonical signature set of a findings stream — the value the
    streaming-vs-accumulating parity gate compares."""
    signatures: Set[FindingSignature] = set()
    for record in read_finding_stream(path):
        if record.get("record") != "finding":
            continue
        signatures.add(
            (
                str(record.get("plugin", "")),
                str(record["kind"]),
                str(record["file"]),
                int(record["line"]),  # type: ignore[arg-type]
                str(record["sink"]),
            )
        )
    return signatures


def stream_reports(path: str) -> Iterator[ToolReport]:
    """Rebuild per-plugin :class:`ToolReport` objects from a stream.

    Yields one report per ``plugin`` summary record, carrying the
    plugin's findings and summary counters (failure/incident *counts*
    survive the round trip; the typed objects themselves are not
    persisted).  This is the adapter that lets the SARIF exporter and
    telemetry readers consume a streamed scan one plugin at a time.
    """
    pending: List[Finding] = []
    for record in read_finding_stream(path):
        kind = record.get("record")
        if kind == "finding":
            pending.append(finding_from_dict(record))
        elif kind == "plugin":
            report = ToolReport(
                tool=str(record.get("tool", "")),
                plugin=str(record.get("plugin", "")),
            )
            for finding in pending:
                report.add_finding(finding)
            pending = []
            report.files_analyzed = int(record.get("files_analyzed", 0))  # type: ignore[arg-type]
            report.loc_analyzed = int(record.get("loc_analyzed", 0))  # type: ignore[arg-type]
            report.files_skipped = int(record.get("files_skipped", 0))  # type: ignore[arg-type]
            report.loc_skipped = int(record.get("loc_skipped", 0))  # type: ignore[arg-type]
            report.seconds = float(record.get("seconds", 0.0))  # type: ignore[arg-type]
            yield report

"""Common interface every analyzer tool implements.

The evaluation harness (paper Section IV) drives phpSAFE, RIPS-like and
Pixy-like through this one protocol, mirroring how the authors wrapped
each real tool in automation scripts and normalized their outputs into
"a single repository".
"""

from __future__ import annotations

import abc
import time

from ..plugin import Plugin
from .results import ToolReport


class AnalyzerTool(abc.ABC):
    """A static analysis tool that scans one plugin at a time."""

    #: Short display name used in tables ("phpSAFE", "RIPS", "Pixy").
    name: str = "tool"

    @abc.abstractmethod
    def analyze(self, plugin: Plugin) -> ToolReport:
        """Scan ``plugin`` and return findings, failures and stats."""

    def analyze_timed(self, plugin: Plugin) -> ToolReport:
        """Like :meth:`analyze` but fills ``report.seconds`` (Table III)."""
        start = time.perf_counter()
        report = self.analyze(plugin)
        report.seconds = time.perf_counter() - start
        return report

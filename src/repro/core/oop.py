"""OOP resolution support (paper Section III.E).

phpSAFE distinguishes variables from properties and functions from
methods, obtaining "the full name by adding the name of the object"
(following ``T_OBJECT_OPERATOR`` / ``T_DOUBLE_COLON``).  We reproduce
this with an object-insensitive *class property store*: one taint state
per ``(class, property)`` pair, shared by all instances — properties are
parsed "as variables" whose full name is class-qualified.

The store supports placeholder resolution: property reads evaluate to a
:class:`~repro.core.taint.PropRef` placeholder which is substituted
against the final store once the whole plugin has been analyzed, so a
method storing tainted data in ``$this->data`` and another method
echoing it are connected regardless of analysis order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from .taint import Label, PropRef, TaintState


class ClassPropertyStore:
    """Taint per ``(class name, property name)``, object-insensitive."""

    def __init__(self) -> None:
        self._taints: Dict[Tuple[str, str], TaintState] = {}
        #: child class (lower) -> parent class (lower), for read-through
        self.parents: Dict[str, str] = {}

    @staticmethod
    def key(class_name: str, prop: str) -> Tuple[str, str]:
        return (class_name.lower(), prop)

    def read(self, class_name: str, prop: str) -> TaintState:
        """Placeholder read: resolved later against the final store."""
        return TaintState.from_label(PropRef(class_name.lower(), prop))

    def write(self, class_name: str, prop: str, taint: TaintState) -> None:
        """Weak update: join (never kill) — any instance may hold taint."""
        key = self.key(class_name, prop)
        current = self._taints.get(key)
        self._taints[key] = taint.copy() if current is None else current.joined(taint)

    def snapshot(self) -> Dict[Tuple[str, str], TaintState]:
        return {key: taint.copy() for key, taint in self._taints.items()}

    def resolve(self, taint: TaintState, max_depth: int = 8) -> TaintState:
        """Substitute ``PropRef`` placeholders transitively.

        Property values may themselves reference other properties
        (``$this->a = $this->b``); resolution iterates to a fixed point
        with a depth cap guarding against reference cycles.
        """
        current = taint
        for _ in range(max_depth):
            placeholders = self._collect_prop_refs(current)
            if not placeholders:
                return current
            mapping: Dict[Label, TaintState] = {}
            for ref in placeholders:
                mapping[ref] = self._lookup_chain(ref.class_name, ref.prop)
            substituted = current.substituted(mapping)
            if substituted is current:  # interned: identity is equality
                return substituted
            current = substituted
        # depth exhausted: drop unresolved placeholders
        return current.substituted({})

    def _lookup_chain(self, class_name: str, prop: str) -> TaintState:
        """Read a property through the inheritance chain: the taint of
        ``$this->prop`` joins every ancestor's stored state (properties
        are shared storage between parent and child methods)."""
        result = TaintState.clean()
        current: str = class_name
        seen: Set[str] = set()
        while current and current not in seen:
            seen.add(current)
            stored = self._taints.get((current, prop))
            if stored is not None:
                result = result.joined(stored)
            current = self.parents.get(current, "")
        return result

    @staticmethod
    def _collect_prop_refs(taint: TaintState) -> Set[PropRef]:
        refs: Set[PropRef] = set()
        for labels in taint.active.values():
            refs.update(label for label in labels if isinstance(label, PropRef))
        for labels in taint.suppressed.values():
            refs.update(label for label in labels if isinstance(label, PropRef))
        return refs


def join_class_names(names: Iterable[str]) -> str:
    """Pick a representative class name when branches disagree."""
    unique = sorted({name for name in names if name})
    return unique[0] if len(unique) == 1 else ""

"""phpSAFE core: the paper's primary contribution.

Four stages (Fig. 1 of the paper): configuration (:mod:`repro.config`),
model construction (:mod:`.model`), analysis (:mod:`.engine`), results
processing (:mod:`.results`).  :class:`PhpSafe` is the public facade.
"""

from ..incidents import Incident, IncidentSeverity, IncidentStage
from .autofix import FixProposal, apply_fixes, propose_fix, verify_fix
from .cache import CacheStats, ModelCache
from .engine import EngineOptions, TaintEngine
from .model import ClassInfo, FileModel, FunctionInfo, PluginModel
from .phpsafe import PhpSafe, PhpSafeOptions
from .results import FileFailure, Finding, ToolReport
from .review import coverage_summary, to_html, to_json, to_text
from .taint import ConcreteSource, ParamRef, PropRef, TaintState, VariableRecord
from .tool import AnalyzerTool

__all__ = [
    "AnalyzerTool",
    "CacheStats",
    "FixProposal",
    "ModelCache",
    "apply_fixes",
    "coverage_summary",
    "propose_fix",
    "to_html",
    "to_json",
    "to_text",
    "verify_fix",
    "ClassInfo",
    "ConcreteSource",
    "EngineOptions",
    "FileFailure",
    "FileModel",
    "Finding",
    "FunctionInfo",
    "Incident",
    "IncidentSeverity",
    "IncidentStage",
    "ParamRef",
    "PhpSafe",
    "PhpSafeOptions",
    "PluginModel",
    "PropRef",
    "TaintEngine",
    "TaintState",
    "ToolReport",
    "VariableRecord",
]

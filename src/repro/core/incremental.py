"""Diff-aware incremental rescans (paper Section VI future work).

A scan run under ``EngineOptions.track_units`` records, per *root file*
(the file owning each analysis unit), a :class:`~repro.core.engine.
UnitFootprint`: which files its results were computed from, which
global variables / class properties / static slots it read and wrote,
and the finalized findings its events produced.  That record set — the
**manifest** — is what makes the next scan of an updated plugin cheap:

1. :func:`plan_rescan` diffs the new plugin's per-file digests against
   the manifest and computes the *affected* set as a fixpoint — a root
   re-runs when its own file changed, a dependency file changed, a
   previously failed lookup now resolves, or its state footprint
   couples (read∩write in either direction) with an affected root.
   Everything else is skipped via ``EngineOptions.reuse_roots`` and its
   findings are carried forward from the manifest.
2. :func:`validate_rescan` re-checks the couplings after the run with
   the *actual* footprints of the executed units (the plan only had
   stale estimates for changed files) and pins the order-dependent
   ``uses_globals``/``uses_statics`` summaries to their original
   compute position.  Any violation falls back to a full tracked scan,
   so incremental mode can degrade in speed but never in correctness.

Findings round-trip through the manifest losslessly, and merging
carried with live findings uses the engine's canonical min-merge
(:meth:`TaintEngine.dedupe_findings`), which is order-independent —
the combined result is bit-identical to one cold pass.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from ..config.vulnerability import InputVector, VulnKind
from .engine import TaintEngine, UnitFootprint
from .model import PluginModel
from .results import Finding
from ..plugin import Plugin

#: schema tag of the persisted manifest document
MANIFEST_SCHEMA = "repro.incremental.manifest/v1"


def plugin_file_digests(plugin: Plugin) -> Dict[str, str]:
    """Per-file content digest over the raw submission.

    Computed from the plugin payload (not the parsed model) so files
    the parser rejects still participate in change detection.
    """
    return {
        path: hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()
        for path, source in plugin.files.items()
    }


# ---------------------------------------------------------------------------
# Finding (de)serialization — must be lossless: carried findings are
# min-merged with live ones, so any dropped field would perturb the
# canonical winner.
# ---------------------------------------------------------------------------


def finding_to_dict(finding: Finding) -> Dict[str, object]:
    return {
        "kind": finding.kind.value,
        "file": finding.file,
        "line": finding.line,
        "sink": finding.sink,
        "variable": finding.variable,
        "vectors": [vector.value for vector in finding.vectors],
        "trace": list(finding.trace),
        "via_oop": finding.via_oop,
        "markup_context": finding.markup_context,
    }


def finding_from_dict(raw: Dict[str, object]) -> Finding:
    return Finding(
        kind=VulnKind(raw["kind"]),
        file=str(raw["file"]),
        line=int(raw["line"]),  # type: ignore[arg-type]
        sink=str(raw["sink"]),
        variable=str(raw.get("variable", "")),
        vectors=tuple(InputVector(v) for v in raw.get("vectors", ())),  # type: ignore[union-attr]
        trace=tuple(raw.get("trace", ())),  # type: ignore[arg-type]
        via_oop=bool(raw.get("via_oop", False)),
        markup_context=str(raw.get("markup_context", "")),
    )


def _footprint_to_dict(footprint: UnitFootprint) -> Dict[str, object]:
    return {
        "dep_files": sorted(footprint.dep_files),
        "dep_unresolved": sorted(footprint.dep_unresolved),
        "reads": sorted(footprint.reads),
        "writes": sorted(footprint.writes),
        "prop_reads": sorted(footprint.prop_reads),
        "prop_writes": sorted(footprint.prop_writes),
        "statics": sorted(footprint.statics),
        "faulted": footprint.faulted,
    }


# ---------------------------------------------------------------------------
# Manifest construction
# ---------------------------------------------------------------------------


def build_manifest(
    fingerprint: str,
    digests: Dict[str, str],
    engine: TaintEngine,
    prior: Optional[Dict[str, object]] = None,
    reuse_roots: FrozenSet[str] = frozenset(),
) -> Dict[str, object]:
    """Assemble the manifest describing a finished (tracked) scan.

    Roots executed this run get fresh footprints and finding groups;
    roots in ``reuse_roots`` copy their record from ``prior`` (their
    content did not change, so neither did their footprint), with any
    live promoted findings attributed to them min-merged in.
    """
    groups = engine.findings_by_unit()
    prior_roots: Dict[str, Dict[str, object]] = {}
    if prior is not None:
        prior_roots = dict(prior.get("roots", {}))  # type: ignore[arg-type]
    roots: Dict[str, Dict[str, object]] = {}
    for root, footprint in engine.footprints.items():
        record = _footprint_to_dict(footprint)
        record["findings"] = [
            finding_to_dict(f) for f in groups.get(root, [])
        ]
        roots[root] = record
    for root in reuse_roots:
        prior_record = prior_roots.get(root)
        if prior_record is None:
            continue
        record = dict(prior_record)
        carried = [
            finding_from_dict(raw)  # type: ignore[arg-type]
            for raw in prior_record.get("findings", [])  # type: ignore[union-attr]
        ]
        live = groups.get(root, [])
        record["findings"] = [
            finding_to_dict(f)
            for f in TaintEngine.dedupe_findings(carried + list(live))
        ]
        roots[root] = record
    state_roots: Dict[str, str] = {}
    if prior is not None:
        for key, prior_root in dict(
            prior.get("state_summary_roots", {})  # type: ignore[arg-type]
        ).items():
            # keep only entries whose compute position was skipped this
            # run (an executed position was either re-observed below or
            # the summary is gone) and whose function still exists
            if prior_root in reuse_roots and key in engine.model.functions:
                state_roots[key] = prior_root
    state_roots.update(engine.state_summary_roots)
    # every event must be attributable to a root, otherwise a later
    # rescan could drop it when skipping; an unattributed group marks
    # the manifest as unusable for incremental planning
    complete = "" not in groups and not engine.aborted
    return {
        "schema": MANIFEST_SCHEMA,
        "fingerprint": fingerprint,
        "files": dict(digests),
        "aborted": engine.aborted,
        "complete": complete,
        "roots": roots,
        "state_summary_roots": state_roots,
    }


def carried_findings(
    manifest: Dict[str, object], reuse_roots: FrozenSet[str]
) -> List[Finding]:
    """The findings of every skipped root, deserialized for merging."""
    findings: List[Finding] = []
    roots: Dict[str, Dict[str, object]] = manifest.get("roots", {})  # type: ignore[assignment]
    for root in reuse_roots:
        record = roots.get(root)
        if record is None:
            continue
        for raw in record.get("findings", []):  # type: ignore[union-attr]
            findings.append(finding_from_dict(raw))  # type: ignore[arg-type]
    return findings


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


@dataclass
class RescanPlan:
    """What the incremental driver decided to do."""

    #: run everything (tracked) — ``reason`` says why
    full: bool = False
    reason: str = ""
    #: roots the engine may skip; their findings are carried forward
    reuse_roots: FrozenSet[str] = frozenset()
    #: files whose digest differs from the manifest
    changed_files: FrozenSet[str] = frozenset()
    #: roots that must re-run (changed, coupled, or unplannable)
    affected: FrozenSet[str] = frozenset()


@dataclass
class RescanStats:
    """Observable outcome of one :meth:`PhpSafe.rescan` call."""

    roots_total: int = 0
    roots_reused: int = 0
    changed_files: List[str] = field(default_factory=list)
    #: empty when the incremental path was taken end to end; otherwise
    #: why the run fell back to a full scan
    fallback_reason: str = ""

    @property
    def incremental(self) -> bool:
        return self.roots_reused > 0 and not self.fallback_reason

    def to_dict(self) -> Dict[str, object]:
        """JSON/pickle-friendly form (service result documents,
        process-pool result channel)."""
        return {
            "roots_total": self.roots_total,
            "roots_reused": self.roots_reused,
            "changed_files": list(self.changed_files),
            "fallback_reason": self.fallback_reason,
            "incremental": self.incremental,
        }


def _token_resolves(token: str, model: PluginModel) -> bool:
    kind, _, name = token.partition(":")
    if kind == "fn":
        return model.lookup_function(name) is not None
    return model.lookup_class(name) is not None


class _Coupling:
    """Aggregated read/write sets of the affected roots."""

    def __init__(self) -> None:
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.prop_reads: Set[str] = set()
        self.prop_writes: Set[str] = set()
        self.statics: Set[str] = set()

    def absorb(self, record: Dict[str, object]) -> None:
        self.reads.update(record.get("reads", ()))  # type: ignore[arg-type]
        self.writes.update(record.get("writes", ()))  # type: ignore[arg-type]
        self.prop_reads.update(record.get("prop_reads", ()))  # type: ignore[arg-type]
        self.prop_writes.update(record.get("prop_writes", ()))  # type: ignore[arg-type]
        self.statics.update(record.get("statics", ()))  # type: ignore[arg-type]

    def couples(self, record: Dict[str, object]) -> bool:
        return bool(
            self.writes.intersection(record.get("reads", ()))  # type: ignore[arg-type]
            or self.reads.intersection(record.get("writes", ()))  # type: ignore[arg-type]
            or self.prop_writes.intersection(record.get("prop_reads", ()))  # type: ignore[arg-type]
            or self.prop_reads.intersection(record.get("prop_writes", ()))  # type: ignore[arg-type]
            or self.statics.intersection(record.get("statics", ()))  # type: ignore[arg-type]
        )


def plan_rescan(
    manifest: Optional[Dict[str, object]],
    fingerprint: str,
    digests: Dict[str, str],
    model: PluginModel,
) -> RescanPlan:
    """Decide which roots a rescan may skip (see module docstring)."""
    if manifest is None:
        return RescanPlan(full=True, reason="no prior manifest")
    if manifest.get("schema") != MANIFEST_SCHEMA:
        return RescanPlan(full=True, reason="manifest schema mismatch")
    if manifest.get("fingerprint") != fingerprint:
        return RescanPlan(full=True, reason="analyzer configuration changed")
    if not manifest.get("complete", False) or manifest.get("aborted"):
        return RescanPlan(full=True, reason="prior scan was incomplete")
    prior_files: Dict[str, str] = manifest.get("files", {})  # type: ignore[assignment]
    if set(prior_files) != set(digests):
        # adds/removes shift include resolution and name binding in ways
        # per-file footprints cannot bound — do the scan cold
        return RescanPlan(full=True, reason="file set changed")
    changed = frozenset(
        path for path, digest in digests.items() if prior_files.get(path) != digest
    )
    roots: Dict[str, Dict[str, object]] = manifest.get("roots", {})  # type: ignore[assignment]
    affected: Set[str] = set()
    for root, record in roots.items():
        if root in changed or record.get("faulted"):
            affected.add(root)
    affected.update(path for path in changed if path in roots)
    candidates = set(roots) - affected
    coupling = _Coupling()
    for root in affected:
        record = roots.get(root)
        if record is not None:
            coupling.absorb(record)
    # single pre-pass for model-level invalidation, then the state
    # coupling fixpoint
    for root in sorted(candidates):
        record = roots[root]
        if changed.intersection(record.get("dep_files", ())):  # type: ignore[arg-type]
            affected.add(root)
            coupling.absorb(record)
            candidates.discard(root)
            continue
        if any(
            _token_resolves(token, model)
            for token in record.get("dep_unresolved", ())  # type: ignore[union-attr]
        ):
            affected.add(root)
            coupling.absorb(record)
            candidates.discard(root)
    grew = True
    while grew:
        grew = False
        for root in sorted(candidates):
            record = roots[root]
            if coupling.couples(record):
                affected.add(root)
                coupling.absorb(record)
                candidates.discard(root)
                grew = True
    if not candidates:
        return RescanPlan(
            full=True,
            reason="every root is affected",
            changed_files=changed,
            affected=frozenset(affected),
        )
    return RescanPlan(
        full=False,
        reuse_roots=frozenset(candidates),
        changed_files=changed,
        affected=frozenset(affected),
    )


# ---------------------------------------------------------------------------
# Post-run validation
# ---------------------------------------------------------------------------


def validate_rescan(
    manifest: Dict[str, object],
    plan: RescanPlan,
    engine: TaintEngine,
    model: PluginModel,
) -> Optional[str]:
    """Re-check an incremental run against what actually happened.

    Returns ``None`` when the skipped roots provably could not have
    changed the outcome, or the reason to fall back to a full scan.
    The plan's couplings were computed from the *prior* footprints of
    changed roots; here the executed units' actual footprints are
    available, plus the fault and summary-ordering conditions only
    observable after the run.
    """
    if engine.aborted:
        return "step budget exhausted during incremental run"
    if engine.incidents:
        # a faulted unit has partial footprints and partial findings;
        # the cold path reproduces whatever degradation is deterministic
        return "unit fault during incremental run"
    roots: Dict[str, Dict[str, object]] = manifest.get("roots", {})  # type: ignore[assignment]
    skipped = _Coupling()
    for root in plan.reuse_roots:
        record = roots.get(root)
        if record is not None:
            skipped.absorb(record)
    for root, footprint in engine.footprints.items():
        if (
            skipped.writes.intersection(footprint.reads)
            or skipped.reads.intersection(footprint.writes)
            or skipped.prop_writes.intersection(footprint.prop_reads)
            or skipped.prop_reads.intersection(footprint.prop_writes)
            or skipped.statics.intersection(footprint.statics)
        ):
            return f"state coupling with skipped roots surfaced in {root}"
    prior_state: Dict[str, str] = manifest.get("state_summary_roots", {})  # type: ignore[assignment]
    for key, prior_root in prior_state.items():
        live_root = engine.state_summary_roots.get(key)
        if live_root is not None:
            if prior_root in plan.reuse_roots or live_root != prior_root:
                # the order-dependent summary was computed at a
                # different position than the cold run would use
                return f"order-dependent summary {key} moved"
        else:
            if prior_root not in plan.reuse_roots and key in model.functions:
                # its original position re-ran but no longer computes
                # it: the cold-first caller moved somewhere unknown
                return f"order-dependent summary {key} no longer pinned"
    return None

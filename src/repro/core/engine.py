"""Analysis stage: forward taint propagation over the AST.

This is the paper's Section III.C engine.  It follows tainted variables
"from the moment they enter the application/plugin until they reach the
output", maintaining the ``parser_variables`` store per scope, applying
knowledge-base sources/filters/reverts/sinks, summarizing every
user-defined function once (function summaries), joining branches of
conditionals and loops, and resolving OOP constructs through the class
table and the known-instance registry (``$wpdb`` & co.).

The same engine, parameterized by :class:`EngineOptions`, also powers
the RIPS-like and Pixy-like baselines: their capability envelopes are
expressed as option/profile differences rather than separate engines,
which keeps the comparison experiments about *capabilities*, not
implementation accidents.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from ..config.entries import PropagationSpec
from ..config.profiles import AnalyzerProfile
from ..config.vulnerability import ALL_KINDS, InputVector, VulnKind
from ..incidents import Incident, IncidentSeverity, IncidentStage
from ..perf import counters
from ..php import ast_nodes as ast
from ..php.htmlcontext import context_at_end
from ..php.printer import print_expr
from .model import FunctionInfo, PluginModel
from .oop import ClassPropertyStore, join_class_names
from .results import Finding
from .taint import ConcreteSource, Label, ParamRef, TaintState, VariableRecord

#: Builtins whose return propagates the taint of their arguments.
PASSTHROUGH_FUNCTIONS = frozenset(
    {
        "trim", "ltrim", "rtrim", "strtolower", "strtoupper", "ucfirst", "ucwords",
        "lcfirst", "substr", "str_replace", "str_ireplace", "preg_replace", "sprintf",
        "vsprintf", "implode", "join", "str_pad", "str_repeat", "strrev", "nl2br",
        "wordwrap", "chunk_split", "strtr", "stristr", "strstr", "substr_replace",
        "array_merge", "array_values", "array_keys", "array_pop", "array_shift",
        "array_slice", "array_splice", "array_reverse", "array_filter", "array_map",
        "array_unique", "array_combine", "array_flip", "compact", "current", "reset",
        "end", "next", "prev", "each", "serialize", "unserialize", "json_decode",
        "maybe_unserialize", "wp_unslash", "apply_filters", "do_shortcode",
        "shortcode_atts", "wp_parse_args", "force_balance_tags", "stripslashes_deep",
        "var_export", "print_r",
    }
)

#: Builtins returning clean (numeric/boolean/structural) values.
CLEAN_FUNCTIONS = frozenset(
    {
        "time", "date", "mktime", "rand", "mt_rand", "uniqid", "number_format",
        "round", "floor", "ceil", "min", "max", "pow", "sqrt", "array_sum",
        "in_array", "array_search", "array_key_exists", "function_exists",
        "class_exists", "method_exists", "defined", "is_array", "is_string",
        "is_numeric", "is_int", "is_object", "is_null", "file_exists", "is_dir",
        "is_file", "preg_match", "preg_match_all", "strcmp", "strcasecmp", "strpos",
        "stripos", "strrpos", "version_compare", "checked", "selected", "disabled",
    }
)


@dataclass
class EngineOptions:
    """Capability envelope switches (also the ablation knobs of A1)."""

    #: Resolve OOP: method calls, ``$this``, properties, known instances.
    oop: bool = True
    #: Analyze functions never called from plugin code (entry points).
    analyze_uncalled: bool = True
    #: When analyzing uncalled code, include class methods (RIPS scans
    #: method bodies procedurally; Pixy skips them entirely).
    analyze_methods_standalone: bool = True
    #: Memoize function summaries (paper: "every function is analyzed
    #: only the first time it is called").  Off = re-analyze per call.
    use_summaries: bool = True
    #: Node-visit budget per plugin; exceeding aborts remaining analysis.
    step_budget: int = 4_000_000
    #: Maximum include nesting depth followed inline.
    max_include_depth: int = 16
    #: Cap on flow-trace length kept per value (reporting only).
    max_trace: int = 12
    #: Kinds checked at language-construct sinks (backticks, include):
    #: a 2007-era tool like Pixy never looks beyond XSS/SQLi.
    construct_kinds: frozenset = ALL_KINDS
    #: What an unknown function call returns: "clean" trusts unknown
    #: code (phpSAFE: unknown CMS helpers are assumed safe, keeping
    #: false positives low), "propagate" forwards argument taint (RIPS:
    #: unknown functions are not sanitizers, so WordPress-escaped flows
    #: like ``echo esc_html($_GET[...])`` are still reported — the
    #: false-positive population Table I measures for RIPS).
    unknown_call_policy: str = "clean"
    #: Per-unit fault isolation (paper Section V.E robustness): each
    #: analysis unit — a function summary or a top-level file walk —
    #: runs inside its own fault boundary, so one pathological unit
    #: degrades to a recorded incident instead of aborting the plugin.
    #: ``False`` reproduces the historical all-or-nothing behaviour.
    recover: bool = False
    #: Step-budget slice per analysis unit (None = only the plugin-wide
    #: ``step_budget`` applies).  Only honoured with ``recover=True``.
    unit_step_budget: Optional[int] = None
    #: Wall-clock deadline per analysis unit, in seconds (None = no
    #: deadline).  Gives the serial path the timeout the batch path gets
    #: from SIGALRM.  Only honoured with ``recover=True``.
    unit_deadline: Optional[float] = None
    #: AST-evaluation depth cap under ``recover=True``: degenerate
    #: nesting (one-line concat chains of thousands of terms) trips a
    #: unit fault instead of a ``RecursionError`` deep in the stack.
    max_eval_depth: int = 500
    #: Record per-unit state footprints (globals/properties/statics read
    #: and written, dependency files) for incremental rescans.  Off by
    #: default: plain scans pay nothing for the bookkeeping.
    track_units: bool = False
    #: Root files whose analysis units are skipped because a prior scan
    #: manifest proved them unchanged and uncoupled; their findings are
    #: carried forward by the incremental driver.  Requires
    #: ``recover=True`` (the unit structure is what gets skipped).
    reuse_roots: FrozenSet[str] = frozenset()


#: the interned all-clean taint state, hoisted for Value's default — a
#: function-call default_factory is measurable at Value-construction rates
_CLEAN_STATE = TaintState.clean()


class Value:
    """Abstract value of an expression: taint + optional object type.

    A ``__slots__`` value class rather than a dataclass: the engine
    builds one per expression evaluation, so per-instance dict
    allocation and default-factory calls are the hottest allocation
    site in the analyzer.
    """

    __slots__ = ("taint", "class_name", "trace", "name_hint")

    def __init__(
        self,
        taint: TaintState = _CLEAN_STATE,
        class_name: str = "",
        trace: Tuple[str, ...] = (),
        name_hint: str = "",
    ) -> None:
        self.taint = taint
        self.class_name = class_name
        self.trace = trace
        self.name_hint = name_hint

    def __repr__(self) -> str:
        return (
            f"Value(taint={self.taint!r}, class_name={self.class_name!r}, "
            f"trace={self.trace!r}, name_hint={self.name_hint!r})"
        )

    @classmethod
    def clean(cls) -> "Value":
        return cls()

    def joined(self, other: "Value") -> "Value":
        return Value(
            taint=self.taint.joined(other.taint),
            class_name=join_class_names((self.class_name, other.class_name)),
            trace=_merge_trace(self.trace, other.trace),
            name_hint=self.name_hint or other.name_hint,
        )


def _merge_trace(left: Tuple[str, ...], right: Tuple[str, ...]) -> Tuple[str, ...]:
    merged = list(left)
    for step in right:
        if step not in merged:
            merged.append(step)
    return tuple(merged[-12:])


@dataclass
class SinkEvent:
    """Tainted data reached a sensitive sink (pre-finding)."""

    kind: VulnKind
    sink: str
    file: str
    line: int
    variable: str
    taint: TaintState
    trace: Tuple[str, ...] = ()
    via_oop: bool = False
    markup_context: str = ""
    #: root file of the analysis unit that produced the event (only
    #: populated under ``track_units``); incremental rescans carry a
    #: skipped root's findings forward by this attribution
    unit: str = ""

    def substituted(self, mapping: Dict[Label, TaintState]) -> "SinkEvent":
        # hand-rolled ``dataclasses.replace``: summary application calls
        # this once per recorded event per call site
        clone = SinkEvent.__new__(SinkEvent)
        clone.__dict__.update(self.__dict__)
        clone.__dict__["taint"] = self.taint.substituted(mapping)
        return clone


@dataclass
class FunctionSummary:
    """Reusable effect of one user-defined function (paper: "the summary
    of this analysis is reused in subsequent calls")."""

    key: str
    return_taint: TaintState = field(default_factory=TaintState.clean)
    return_class: str = ""
    sink_events: List[SinkEvent] = field(default_factory=list)
    ref_param_writes: Dict[int, TaintState] = field(default_factory=dict)
    #: (class lower, prop) -> taint written (may hold ParamRefs, which
    #: are substituted with the caller's arguments at each call site)
    prop_writes: Dict[Tuple[str, str], TaintState] = field(default_factory=dict)
    #: files whose definitions this summary was computed from: the
    #: defining file plus every file holding a callee body or a class
    #: consulted during method/property resolution
    dep_files: Set[str] = field(default_factory=set)
    #: lookups that found nothing ("fn:name" / "class:name"); the
    #: summary stays valid only while they keep finding nothing
    dep_unresolved: Set[str] = field(default_factory=set)
    #: ``dep_files`` pinned to content digests at persist time; the
    #: cross-run cache revalidates these against the current model
    dep_digests: Dict[str, str] = field(default_factory=dict)
    #: the body read global state at summarize time — order-dependent,
    #: so never persisted across runs
    uses_globals: bool = False
    #: the body declares ``static`` locals — their cross-call slots live
    #: in the engine, so the summary is never persisted across runs
    uses_statics: bool = False
    #: placeholder written by a unit fault boundary — never persisted
    faulted: bool = False
    #: global variable names the body read (``global $x``) / wrote
    #: through a global alias — name-level state coupling used by the
    #: incremental planner; only set on non-persisted summaries since
    #: ``uses_globals`` blocks persistence
    global_reads: Set[str] = field(default_factory=set)
    global_writes: Set[str] = field(default_factory=set)
    #: "class|prop" keys the body read (expanded over the ancestor
    #: chain, matching finalize-time property resolution)
    prop_reads: Set[str] = field(default_factory=set)
    #: "static:<owner>" slots the body touched
    static_tokens: Set[str] = field(default_factory=set)

    def __setstate__(self, state: Dict[str, object]) -> None:
        # summaries pickled by older versions lack the state-coupling
        # sets; default them so cached objects stay loadable
        self.__dict__.update(state)
        for name in ("global_reads", "global_writes", "prop_reads", "static_tokens"):
            if name not in self.__dict__:
                self.__dict__[name] = set()


def summary_is_valid(summary: FunctionSummary, model: PluginModel,
                     digests: Dict[str, str]) -> bool:
    """Can a persisted summary be reused against the current model?"""
    for path, digest in summary.dep_digests.items():
        if digests.get(path) != digest:
            return False
    for token in summary.dep_unresolved:
        kind, _, name = token.partition(":")
        if kind == "fn":
            if model.lookup_function(name) is not None:
                return False
        elif model.lookup_class(name) is not None:
            return False
    return True


@dataclass
class UnitFootprint:
    """What the units rooted at one file touched outside themselves.

    Recorded only under ``EngineOptions.track_units``.  The incremental
    planner intersects read/write sets across scans: a root whose file
    digest, dependency files, and state couplings are all unchanged can
    be skipped on rescan with its findings carried forward.
    """

    #: files whose definitions the units consulted (callee bodies,
    #: classes, resolved includes)
    dep_files: Set[str] = field(default_factory=set)
    #: failed lookups ("fn:name" / "class:name") — a skip is only valid
    #: while they keep failing
    dep_unresolved: Set[str] = field(default_factory=set)
    #: global variable names read / effectively written (taint or class
    #: changed; trace-only churn is ignored — only finding signatures
    #: are promised stable)
    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    #: "class|prop" property keys read (expanded over ancestors) and
    #: written (at the declaring class)
    prop_reads: Set[str] = field(default_factory=set)
    prop_writes: Set[str] = field(default_factory=set)
    #: "static:<owner>" cross-call slots touched
    statics: Set[str] = field(default_factory=set)
    #: a unit under this root faulted — its effects are partial, so the
    #: root is never skippable
    faulted: bool = False


class Scope:
    """One lexical scope of ``parser_variables`` records."""

    __slots__ = (
        "name",
        "records",
        "global_aliases",
        "ref_groups",
        "static_names",
        "static_slots",
        "is_global_image",
    )

    def __init__(self, name: str = "<main>") -> None:
        self.name = name
        self.records: Dict[str, VariableRecord] = {}
        #: names bound to the global scope via ``global $x`` — writes to
        #: these are mirrored into the global scope
        self.global_aliases: Set[str] = set()
        #: reference-alias groups from ``$b =& $a``: every member maps to
        #: one shared frozenset of the names denoting the same storage
        #: slot.  Groups are immutable — a new union rebuilds the set —
        #: so branch snapshots can share the mapping by shallow copy.
        self.ref_groups: Dict[str, FrozenSet[str]] = {}
        #: names declared ``static`` in this scope; writes to them are
        #: mirrored into the engine's per-function static slots
        self.static_names: Set[str] = set()
        #: the engine's slot dict for this scope's function (shared, so
        #: branch snapshots write through — statics only ever join)
        self.static_slots: Optional[Dict[str, TaintState]] = None
        #: True for the engine's global scope and its branch snapshots:
        #: reads against such a scope are global-state reads the
        #: incremental footprint tracker must record
        self.is_global_image = False

    def get(self, name: str) -> Optional[VariableRecord]:
        return self.records.get(name)

    def set(self, record: VariableRecord) -> None:
        self.records[record.name] = record

    def copy(self) -> "Scope":
        # records are immutable in practice (writes rebind via
        # ``updated()``) and taint states are interned values, so a
        # snapshot is a plain dict copy — no per-record cloning.  Global
        # aliases are deliberately NOT inherited: a branch snapshot must
        # not write through to the global scope for a path that may not
        # be taken (a ``global`` statement inside the branch re-binds).
        clone = Scope.__new__(Scope)  # skip __init__: fields set below
        clone.name = self.name
        clone.records = dict(self.records)
        clone.global_aliases = set()
        # reference aliases and statics ARE inherited: they only affect
        # records inside the snapshot itself (joined back afterwards) or
        # monotone static slots, never an untaken path's global binding.
        clone.ref_groups = dict(self.ref_groups)
        clone.static_names = set(self.static_names)
        clone.static_slots = self.static_slots
        clone.is_global_image = self.is_global_image
        return clone

    def join_from(self, *branches: "Scope") -> None:
        """Merge branch outcomes into this scope (taint union)."""
        names: Set[str] = set(self.records)
        for branch in branches:
            names.update(branch.records)
        scopes = (self, *branches)
        for name in names:
            variants = [
                scope.records[name]
                for scope in scopes
                if name in scope.records
            ]
            first = variants[0]
            for record in variants:
                if record is not first:
                    break
            else:
                # every path holds the same record object (name untouched
                # in all branches): the join is the identity, so skip the
                # rebind — taint states are interned, so this is exact
                self.records[name] = first
                continue
            taint = first.taint
            for record in variants[1:]:
                taint = taint.joined(record.taint)
            class_name = join_class_names(
                record.class_name or "" for record in variants
            )
            self.records[name] = variants[-1].updated(
                taint=taint, class_name=class_name or None
            )


class BudgetExceeded(Exception):
    """Internal signal: plugin-wide step budget exhausted."""


class UnitFault(Exception):
    """Internal signal: one analysis unit failed; the rest continue.

    Raised inside a per-unit fault boundary when the unit's step-budget
    slice, wall-clock deadline, or evaluation-depth cap trips.  Caught
    at the unit boundary and converted into a recovered incident.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class TaintEngine:
    """Whole-plugin taint analysis over a :class:`PluginModel`."""

    def __init__(
        self,
        model: PluginModel,
        profile: AnalyzerProfile,
        options: Optional[EngineOptions] = None,
    ) -> None:
        self.model = model
        self.profile = profile
        self.options = options or EngineOptions()
        #: every kind this profile's specs mention; ``ALL_KINDS`` itself
        #: (same object — the ``from_label`` fast path is identity-based)
        #: unless rule packs introduced extra kinds
        self._kind_universe = profile.kind_universe()
        self.globals = Scope("<global>")
        self.globals.is_global_image = True
        self.class_props = ClassPropertyStore()
        for class_info in model.classes.values():
            if class_info.parent:
                self.class_props.parents[class_info.name.lower()] = (
                    class_info.parent.lower()
                )
        self.summaries: Dict[str, FunctionSummary] = {}
        self._in_progress: Set[str] = set()
        #: cross-call taint of ``static`` locals, keyed by owning
        #: function key then variable name; joins only, never resets
        self._static_store: Dict[str, Dict[str, TaintState]] = {}
        self.events: List[SinkEvent] = []
        self._steps = 0
        self._current_file = "<unknown>"
        self._summary_stack: List[FunctionSummary] = []
        self._include_stack: List[str] = []
        #: True only when the plugin-wide step budget is exhausted;
        #: per-unit faults are recorded in :attr:`incidents` instead
        self.aborted = False
        #: typed robustness incidents from per-unit fault boundaries
        self.incidents: List[Incident] = []
        self._unit_limit: Optional[int] = None
        self._deadline_at: Optional[float] = None
        self._depth = 0
        #: incremental-rescan bookkeeping (``track_units`` only)
        self.track = bool(self.options.track_units)
        #: per-root-file aggregated state footprints
        self.footprints: Dict[str, UnitFootprint] = {}
        self._unit_fp: Optional[UnitFootprint] = None
        self._unit_root = ""
        #: function key -> root file under which a uses_globals /
        #: uses_statics summary was first computed; such summaries are
        #: order-dependent, so the planner pins them to their root
        self.state_summary_roots: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(self) -> List[Finding]:
        """Analyze the whole plugin and return deduplicated findings."""
        start = time.perf_counter()
        steps_before = self._steps
        try:
            if self.options.recover:
                return self._run_isolated()
            return self._run_strict()
        finally:
            counters.analysis_seconds += time.perf_counter() - start
            counters.engine_steps += self._steps - steps_before

    def _run_strict(self) -> List[Finding]:
        """Historical all-or-nothing analysis (``recover=False``)."""
        try:
            if self.options.analyze_uncalled:
                self._summarize_all_functions()
            for path, file_model in sorted(self.model.files.items()):
                self._current_file = path
                self._include_stack = [path]
                self._exec_block(file_model.tree.statements, self.globals)
            if self.options.analyze_uncalled:
                self._emit_uncalled_events()
        except BudgetExceeded:
            self.aborted = True
        return self._finalize_findings()

    def _run_isolated(self) -> List[Finding]:
        """Fault-isolated analysis: every unit in its own boundary.

        Analysis units — entry-point function summaries, top-level file
        walks, and the late summaries of :meth:`_emit_uncalled_events` —
        each run under :meth:`_run_unit`, so one pathological unit
        degrades to an incident while the rest complete.  Only the
        plugin-wide step budget (``BudgetExceeded``) still stops the
        remaining units, mirroring the strict path.
        """
        standalone = self.options.oop or self.options.analyze_methods_standalone
        reuse = self.options.reuse_roots
        if self.options.analyze_uncalled:
            for info in self.model.uncalled_functions():
                if self.aborted:
                    break
                if info.is_method and not standalone:
                    continue
                if info.file in reuse:
                    continue
                self._run_unit(
                    f"function {info.key}",
                    info.file,
                    lambda info=info: self._summarize(info),
                    summary_key=info.key,
                )
        for path, file_model in sorted(self.model.files.items()):
            if self.aborted:
                break
            if path in reuse:
                continue

            def run_file(path=path, file_model=file_model):
                self._current_file = path
                self._include_stack = [path]
                self._exec_block(file_model.tree.statements, self.globals)

            self._run_unit("<main>", path, run_file)
        if self.options.analyze_uncalled:
            for key, info in sorted(self.model.functions.items()):
                if self.aborted:
                    break
                if key in self.summaries:
                    continue
                if info.is_method and not standalone:
                    continue
                if info.file in reuse:
                    continue
                self._run_unit(
                    f"function {key}",
                    info.file,
                    lambda info=info: self._summarize(info),
                    summary_key=key,
                )
            # even a degraded run reports what its summaries did find
            self._collect_summary_events()
        return self._finalize_findings()

    def _run_unit(
        self,
        unit: str,
        file: str,
        body,
        summary_key: Optional[str] = None,
    ) -> bool:
        """Run one analysis unit inside a fault boundary.

        Returns True when the unit completed.  On failure the unit's
        partial work is kept (taint joins are monotone), the fault is
        recorded as an incident, and — for function units — an empty
        summary is stored so call sites do not re-run the failing body.
        """
        if self.options.unit_step_budget is not None:
            self._unit_limit = self._steps + self.options.unit_step_budget
        if self.options.unit_deadline is not None:
            self._deadline_at = time.monotonic() + self.options.unit_deadline
        self._depth = 0
        globals_before: Optional[Dict[str, Tuple[TaintState, str]]] = None
        if self.track:
            self._unit_root = file
            self._unit_fp = self.footprints.setdefault(file, UnitFootprint())
            globals_before = {
                name: (record.taint, record.class_name or "")
                for name, record in self.globals.records.items()
            }
        try:
            body()
            return True
        except BudgetExceeded:
            self.aborted = True
            self.incidents.append(
                Incident(
                    stage=IncidentStage.ANALYSIS,
                    severity=IncidentSeverity.FATAL,
                    file=file,
                    reason="analysis step budget exhausted",
                    recovered=False,
                    unit=unit,
                )
            )
        except UnitFault as fault:
            self.incidents.append(
                Incident(
                    stage=IncidentStage.ANALYSIS,
                    severity=IncidentSeverity.ERROR,
                    file=file,
                    reason=fault.reason,
                    recovered=True,
                    unit=unit,
                )
            )
        except RecursionError:
            self.incidents.append(
                Incident(
                    stage=IncidentStage.ANALYSIS,
                    severity=IncidentSeverity.ERROR,
                    file=file,
                    reason="recursion limit exceeded",
                    recovered=True,
                    unit=unit,
                )
            )
        except Exception as error:
            # catch-all fault boundary: an engine bug on one unit must
            # not zero out the findings of every other unit
            self.incidents.append(
                Incident(
                    stage=IncidentStage.ANALYSIS,
                    severity=IncidentSeverity.ERROR,
                    file=file,
                    reason=f"internal analysis error: {error!r}",
                    recovered=True,
                    unit=unit,
                )
            )
        finally:
            self._unit_limit = None
            self._deadline_at = None
            self._depth = 0
            if self.track:
                self._diff_globals(globals_before or {}, self._unit_fp)
                self._unit_fp = None
                self._unit_root = ""
        if self.track:
            # falling through the boundary means the unit faulted: its
            # effects are partial, so this root is never skippable
            self.footprints.setdefault(file, UnitFootprint()).faulted = True
        if summary_key is not None and summary_key not in self.summaries:
            # faulted placeholder: call sites stop re-running the failing
            # body, but the empty summary must never be persisted
            self.summaries[summary_key] = FunctionSummary(
                key=summary_key, faulted=True
            )
        return False

    #: the "no record" effective value for the unit-boundary diff —
    #: creating a clean, class-free binding is not an observable write
    _CLEAN_EFFECT: "Tuple[TaintState, str]" = (TaintState.clean(), "")

    def _diff_globals(
        self,
        before: Dict[str, Tuple[TaintState, str]],
        footprint: Optional[UnitFootprint],
    ) -> None:
        """Record global names whose effective value changed this unit.

        Taint states are interned, so identity compares are exact; a
        record object replaced with an equal value (``join_from``
        rebinds unchanged names) is correctly ignored.
        """
        if footprint is None:
            return
        # under register_globals an *uninitialized* global is attacker
        # data, so even creating a clean binding is an observable write;
        # otherwise absent and clean-without-class are equivalent
        strict = bool(self.profile.register_globals)
        records = self.globals.records
        for name, record in records.items():
            prior = before.get(name)
            if prior is None:
                if strict or record.taint is not self._CLEAN_EFFECT[0] or (
                    record.class_name or ""
                ):
                    footprint.writes.add(name)
            elif prior[0] is not record.taint or prior[1] != (record.class_name or ""):
                footprint.writes.add(name)
        for name, prior in before.items():
            if name not in records and (strict or prior != self._CLEAN_EFFECT):
                footprint.writes.add(name)

    def _summarize_all_functions(self) -> None:
        """Pre-analyze plugin entry points (paper: "phpSAFE starts by
        executing an inter-procedural parsing of the functions that are
        not called from the source code of the plugin").

        Called functions are summarized lazily at their first call site
        so globals carry their call-time state."""
        for info in self.model.uncalled_functions():
            if info.is_method and not (
                self.options.oop or self.options.analyze_methods_standalone
            ):
                continue
            self._summarize(info)

    def _emit_uncalled_events(self) -> None:
        """Report source→sink flows inside never-called functions.

        Every computed summary is scanned (covering corner cases like a
        function only reachable through its own recursion); flows that
        depend on the unknown parameters of an entry point are dropped
        (no caller exists inside the plugin to bind them), and events
        already emitted at real call sites deduplicate by sink line.
        """
        for key, info in sorted(self.model.functions.items()):
            if key not in self.summaries:
                if info.is_method and not (
                    self.options.oop or self.options.analyze_methods_standalone
                ):
                    continue
                self._summarize(info)
        self._collect_summary_events()

    def _collect_summary_events(self) -> None:
        """Promote summary-local sink events to plugin-level events."""
        for key, summary in sorted(self.summaries.items()):
            owner = ""
            if self.track:
                info = self.model.functions.get(key)
                owner = info.file if info is not None else ""
            for event in summary.sink_events:
                concrete = event.taint.substituted({})  # drop ParamRefs, keep PropRefs
                if concrete.active or self._has_prop_refs(event.taint):
                    promoted = replace(event, taint=event.taint)
                    if owner and not promoted.unit:
                        promoted.unit = owner
                    self.events.append(promoted)

    @staticmethod
    def _has_prop_refs(taint: TaintState) -> bool:
        from .taint import PropRef

        return any(
            isinstance(label, PropRef)
            for labels in taint.active.values()
            for label in labels
        )

    def _finalize_one(self, event: SinkEvent) -> Optional[Finding]:
        """Resolve one event's property placeholders into a finding."""
        resolved = self.class_props.resolve(event.taint)
        resolved = resolved.substituted({})  # drop any leftover placeholders
        labels = resolved.active.get(event.kind, set())
        concrete = [label for label in labels if isinstance(label, ConcreteSource)]
        if not concrete:
            return None
        vectors = tuple(
            sorted({label.vector for label in concrete}, key=lambda v: v.value)
        )
        via_oop = (
            event.via_oop
            or any(label.via_oop for label in concrete)
            or self._has_prop_refs(event.taint)
        )
        trace = tuple(sorted(label.describe() for label in concrete))[:4] + event.trace
        return Finding(
            kind=event.kind,
            file=event.file,
            line=event.line,
            sink=event.sink,
            variable=event.variable,
            vectors=vectors,
            trace=trace[: self.options.max_trace],
            via_oop=via_oop,
            markup_context=event.markup_context,
        )

    @staticmethod
    def dedupe_findings(findings: Sequence[Finding]) -> List[Finding]:
        """Collapse findings sharing (kind, file, line) to one winner.

        The winner is the canonical *minimum* over the finding's full
        representation, not the first seen: min-merge is associative and
        order-independent, so merging an incremental run's live findings
        with a prior manifest's carried findings reproduces exactly what
        one cold pass over all events would produce.
        """
        best: Dict[Tuple[str, str, int], Tuple[tuple, Finding]] = {}
        for finding in findings:
            rank = (
                finding.sink,
                finding.variable,
                tuple(vector.value for vector in finding.vectors),
                finding.markup_context,
                finding.via_oop,
                finding.trace,
            )
            prior = best.get(finding.key)
            if prior is None or rank < prior[0]:
                best[finding.key] = (rank, finding)
        deduped = [finding for _rank, finding in best.values()]
        deduped.sort(key=lambda finding: (finding.file, finding.line, finding.kind.value))
        return deduped

    def _finalize_findings(self) -> List[Finding]:
        """Resolve property placeholders and deduplicate into findings."""
        candidates = []
        for event in self.events:
            finding = self._finalize_one(event)
            if finding is not None:
                candidates.append(finding)
        return self.dedupe_findings(candidates)

    def findings_by_unit(self) -> Dict[str, List[Finding]]:
        """Finalized findings grouped by the root file that produced
        them (``track_units`` runs only; events emitted outside any unit
        group under ``""``).  Each group is deduplicated independently —
        the cross-group min-merge happens when groups are recombined."""
        grouped: Dict[str, List[Finding]] = {}
        for event in self.events:
            finding = self._finalize_one(event)
            if finding is not None:
                grouped.setdefault(event.unit, []).append(finding)
        return {
            unit: self.dedupe_findings(items) for unit, items in grouped.items()
        }

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.options.step_budget:
            raise BudgetExceeded()
        if self._unit_limit is not None and self._steps > self._unit_limit:
            raise UnitFault("unit step budget exhausted")
        # the clock is read every 256 steps: cheap enough for the hot
        # loop, granular enough for a seconds-scale deadline
        if (
            self._deadline_at is not None
            and (self._steps & 0xFF) == 0
            and time.monotonic() > self._deadline_at
        ):
            raise UnitFault("unit wall-clock deadline exceeded")

    def _emit(self, event: SinkEvent) -> None:
        if self._summary_stack:
            self._summary_stack[-1].sink_events.append(event)
        else:
            if self.track and self._unit_root and not event.unit:
                event = replace(event, unit=self._unit_root)
            self.events.append(event)

    # ------------------------------------------------------------------
    # Function summaries
    # ------------------------------------------------------------------

    def preload_summary(self, summary: FunctionSummary) -> None:
        """Install a cache-served summary before the run starts.

        Replays the summary's parameter-free property writes into the
        class property store — the commit :meth:`_record_prop_write`
        performs while a body is being summarized — so never-called
        methods keep contributing property taint on cache hits.
        """
        self.summaries[summary.key] = summary
        for (class_lower, prop), taint in summary.prop_writes.items():
            self.class_props.write(class_lower, prop, taint.drop_param_refs())

    def _merge_summary_deps(self, summary: FunctionSummary) -> None:
        """A caller's summary inherits its callee's dependencies: the
        callee's events are baked into the caller, so whatever
        invalidates the callee invalidates the caller too.  Under unit
        tracking the current root's footprint also absorbs them, so a
        memoized summary's state effects are attributed to *every* unit
        that applies it."""
        if self._summary_stack:
            frame = self._summary_stack[-1]
            frame.dep_files.update(summary.dep_files)
            frame.dep_unresolved.update(summary.dep_unresolved)
            frame.global_reads.update(summary.global_reads)
            frame.global_writes.update(summary.global_writes)
            frame.prop_reads.update(summary.prop_reads)
            frame.static_tokens.update(summary.static_tokens)
            if summary.uses_globals or summary.faulted or summary.uses_statics:
                frame.uses_globals = frame.uses_globals or summary.uses_globals
                frame.uses_statics = frame.uses_statics or summary.uses_statics
                frame.faulted = frame.faulted or summary.faulted
        if self.track and self._unit_fp is not None:
            footprint = self._unit_fp
            footprint.dep_files.update(summary.dep_files)
            footprint.dep_unresolved.update(summary.dep_unresolved)
            footprint.reads.update(summary.global_reads)
            footprint.writes.update(summary.global_writes)
            footprint.prop_reads.update(summary.prop_reads)
            footprint.prop_writes.update(
                f"{class_lower}|{prop}" for class_lower, prop in summary.prop_writes
            )
            footprint.statics.update(summary.static_tokens)

    def _summarize(self, info: FunctionInfo) -> FunctionSummary:
        cached = self.summaries.get(info.key)
        if cached is not None and self.options.use_summaries:
            counters.summary_memo_hits += 1
            self._merge_summary_deps(cached)
            return cached
        if info.key in self._in_progress:
            # recursion: "functions that are called recursively are
            # parsed only once to avoid endless loops"
            return FunctionSummary(key=info.key)
        self._in_progress.add(info.key)
        summary = FunctionSummary(key=info.key)
        summary.dep_files.add(info.file)

        def build_scope() -> Scope:
            activation = Scope(info.key)
            for index, param in enumerate(info.params):
                taint = TaintState.from_label(
                    ParamRef(info.key, index), self._kind_universe
                )
                activation.set(
                    VariableRecord(
                        name=param.name,
                        file=info.file,
                        line=info.line,
                        taint=taint,
                        is_input=True,
                    )
                )
            if info.class_name and self.options.oop:
                activation.set(
                    VariableRecord(
                        name="this",
                        file=info.file,
                        line=info.line,
                        class_name=info.class_name,
                    )
                )
            return activation

        scope = build_scope()
        previous_file = self._current_file
        self._current_file = info.file
        self._summary_stack.append(summary)
        try:
            self._exec_block(info.body, scope)
            if summary.uses_statics:
                # Statics stored by one activation are observed by the
                # next; a second pass against the joined slots reaches
                # the cross-call fixed point (same two-pass scheme as
                # :meth:`_exec_loop`).  Pass 1's effects are discarded —
                # pass 2 re-derives them with at-least-as-tainted state.
                summary.sink_events = []
                summary.return_taint = TaintState.clean()
                summary.return_class = ""
                summary.prop_writes = {}
                scope = build_scope()
                self._exec_block(info.body, scope)
        finally:
            self._summary_stack.pop()
            self._current_file = previous_file
            self._in_progress.discard(info.key)
        for index, param in enumerate(info.params):
            if param.by_ref:
                record = scope.get(param.name)
                if record is not None and record.taint.active:
                    summary.ref_param_writes[index] = record.taint
        self.summaries[info.key] = summary
        counters.summaries_computed += 1
        if self.track and (summary.uses_globals or summary.uses_statics):
            # order-dependent summary: remember which root first computed
            # it so the planner re-runs that root whenever it matters
            self.state_summary_roots.setdefault(
                info.key, self._unit_root or info.file
            )
        self._merge_summary_deps(summary)
        return summary

    def _apply_summary(
        self,
        summary: FunctionSummary,
        args: Sequence[Value],
        arg_exprs: Sequence[ast.Expr],
        scope: Scope,
        line: int,
    ) -> Value:
        """Substitute a summary at a call site (paper: "whenever the
        function is called, this data flow is added to the
        parser_variables, which is updated based on the calling
        arguments")."""
        mapping: Dict[Label, TaintState] = {}
        for index, value in enumerate(args):
            mapping[ParamRef(summary.key, index)] = value.taint
        for event in summary.sink_events:
            self._emit(event.substituted(mapping))
        for (class_lower, prop), taint in summary.prop_writes.items():
            self._record_prop_write(class_lower, prop, taint.substituted(mapping))
        for index, taint in summary.ref_param_writes.items():
            if index < len(arg_exprs) and isinstance(arg_exprs[index], ast.Variable):
                name = arg_exprs[index].name  # type: ignore[union-attr]
                self._note_global_read(scope, name)
                record = scope.get(name) or VariableRecord(
                    name=name, file=self._current_file, line=line
                )
                scope.set(record.updated(taint=record.taint.joined(taint.substituted(mapping))))
        return Value(
            taint=summary.return_taint.substituted(mapping),
            class_name=summary.return_class,
            trace=(f"return of {summary.key}() at {self._current_file}:{line}",),
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _exec_block(self, statements: Sequence[ast.Statement], scope: Scope) -> None:
        for statement in statements:
            self._exec(statement, scope)

    def _exec(self, node: ast.Statement, scope: Scope) -> None:
        self._depth += 1
        try:
            if self.options.recover and self._depth > self.options.max_eval_depth:
                raise UnitFault(
                    f"evaluation depth limit ({self.options.max_eval_depth}) exceeded"
                )
            self._exec_dispatch(node, scope)
        finally:
            self._depth -= 1

    def _exec_dispatch(self, node: ast.Statement, scope: Scope) -> None:  # noqa: C901
        self._tick()
        if isinstance(node, ast.ExpressionStatement):
            self._eval(node.expr, scope)
        elif isinstance(node, ast.EchoStatement):
            for expr in node.exprs:
                self._check_xss_output(expr, scope, sink="echo")
        elif isinstance(node, ast.InlineHTML):
            pass
        elif isinstance(node, ast.ErrorStmt):
            # a hole left by panic-mode parser recovery: nothing to do
            pass
        elif isinstance(node, ast.Block):
            self._exec_block(node.statements, scope)
        elif isinstance(node, ast.IfStatement):
            self._eval(node.cond, scope)
            branches = [node.then]
            for clause in node.elseifs:
                self._eval(clause.cond, scope)
                branches.append(clause.body)
            if node.otherwise is not None:
                branches.append(node.otherwise)
            self._exec_branches(branches, scope, exhaustive=node.otherwise is not None)
        elif isinstance(node, ast.WhileStatement):
            self._eval(node.cond, scope)
            self._exec_loop(node.body, scope)
        elif isinstance(node, ast.DoWhileStatement):
            self._exec_loop(node.body, scope)
            self._eval(node.cond, scope)
        elif isinstance(node, ast.ForStatement):
            for expr in node.init:
                self._eval(expr, scope)
            for expr in node.cond:
                self._eval(expr, scope)
            self._exec_loop(node.body + [ast.ExpressionStatement(expr=e) for e in node.update],
                            scope)
        elif isinstance(node, ast.ForeachStatement):
            self._exec_foreach(node, scope)
        elif isinstance(node, ast.SwitchStatement):
            self._eval(node.subject, scope)
            has_default = any(case.test is None for case in node.cases)
            # fallthrough: entering at case i runs every later case body
            # too unless a ``break`` intervenes; ``break`` is not
            # tracked, so each branch is the suffix starting at its case
            # (an over-approximation the outcome join keeps sound)
            bodies = [case.body for case in node.cases]
            suffixes = [
                [stmt for body in bodies[i:] for stmt in body]
                for i in range(len(bodies))
            ]
            self._exec_branches(suffixes, scope, exhaustive=has_default)
        elif isinstance(node, ast.ReturnStatement):
            self._exec_return(node, scope)
        elif isinstance(node, ast.GlobalStatement):
            self._exec_global(node, scope)
        elif isinstance(node, ast.StaticVarStatement):
            self._exec_static_vars(node, scope)
        elif isinstance(node, ast.UnsetStatement):
            # T_UNSET: "the properties of the variable are updated as
            # untainted and marked as non-vulnerable"
            for var in node.vars:
                if isinstance(var, ast.Variable):
                    scope.set(
                        VariableRecord(
                            name=var.name, file=self._current_file, line=node.line
                        )
                    )
        elif isinstance(node, ast.ThrowStatement):
            self._eval(node.expr, scope)
        elif isinstance(node, ast.TryStatement):
            branches = [node.body] + [catch.body for catch in node.catches]
            self._exec_branches(branches, scope)
            if node.finally_body is not None:
                self._exec_block(node.finally_body, scope)
        elif isinstance(node, (ast.FunctionDecl, ast.ClassDecl)):
            pass  # declarations were collected by the model stage
        elif isinstance(node, ast.NamespaceStatement):
            if node.body is not None:
                self._exec_block(node.body, scope)
        elif isinstance(node, ast.DeclareStatement):
            if node.body is not None:
                self._exec_block(node.body, scope)
        elif isinstance(
            node,
            (
                ast.BreakStatement,
                ast.ContinueStatement,
                ast.UseStatement,
                ast.ConstStatement,
                ast.GotoStatement,
                ast.LabelStatement,
            ),
        ):
            pass
        else:  # pragma: no cover - defensive
            pass

    def _exec_branches(
        self,
        branches: List[List[ast.Statement]],
        scope: Scope,
        exhaustive: bool = False,
    ) -> None:
        """Execute each branch from the pre-state and join the outcomes
        ("the analysis takes into account all possible paths").

        ``exhaustive`` means the branches cover every path (an ``if``
        with ``else``, a ``switch`` with ``default``): the pre-state is
        then not a possible outcome and a variable cleaned on every
        branch really is clean afterwards.
        """
        outcomes: List[Scope] = []
        for branch in branches:
            snapshot = scope.copy()
            self._exec_block(branch, snapshot)
            outcomes.append(snapshot)
        if not exhaustive:
            outcomes.append(scope.copy())
        if outcomes:
            joined = outcomes[0]
            joined.join_from(*outcomes[1:])
            scope.records = joined.records

    def _exec_loop(self, body: Sequence[ast.Statement], scope: Scope) -> None:
        """Two joined passes propagate loop-carried taint."""
        snapshot = scope.copy()
        self._exec_block(list(body), snapshot)
        self._exec_block(list(body), snapshot)
        scope.join_from(snapshot)

    def _exec_foreach(self, node: ast.ForeachStatement, scope: Scope) -> None:
        subject = self._eval(node.subject, scope)
        for target in (node.key_var, node.value_var):
            if isinstance(target, ast.Variable):
                scope.set(
                    VariableRecord(
                        name=target.name,
                        file=self._current_file,
                        line=node.line,
                        taint=subject.taint.copy(),
                        class_name=None,
                        trace=subject.trace,
                    )
                )
            elif target is not None:
                self._assign_to(target, subject, scope, node.line)
        # element values of a tainted container stay tainted but their
        # class is unknown; remember the container taint for ->prop reads
        self._exec_loop(node.body, scope)

    def _exec_return(self, node: ast.ReturnStatement, scope: Scope) -> None:
        if not self._summary_stack:
            if node.expr is not None:
                self._eval(node.expr, scope)
            return
        summary = self._summary_stack[-1]
        if node.expr is None:
            return
        value = self._eval(node.expr, scope)
        summary.return_taint = summary.return_taint.joined(value.taint)
        summary.return_class = summary.return_class or value.class_name

    def _exec_static_vars(self, node: ast.StaticVarStatement, scope: Scope) -> None:
        """``static $s`` keeps its value across calls: one taint slot per
        (function, variable) lives in the engine, every activation joins
        the stored taint into its binding, and writes join back through
        :meth:`_assign_to` — so taint stored by one call is observed by
        the next (reached via the two-pass scheme in :meth:`_summarize`)."""
        if self._summary_stack:
            frame = self._summary_stack[-1]
            frame.uses_statics = True
            owner = frame.key
            frame.static_tokens.add(f"static:{owner}")
        else:
            owner = f"<main>:{self._current_file}"
        if self.track and self._unit_fp is not None:
            self._unit_fp.statics.add(f"static:{owner}")
        slots = self._static_store.setdefault(owner, {})
        for name, default in node.vars:
            value = self._eval(default, scope) if default is not None else Value.clean()
            taint = value.taint
            prior = slots.get(name)
            if prior is not None:
                taint = taint.joined(prior)
            slots[name] = taint
            scope.set(
                VariableRecord(
                    name=name, file=self._current_file, line=node.line, taint=taint
                )
            )
            scope.static_names.add(name)
            scope.static_slots = slots

    def _exec_global(self, node: ast.GlobalStatement, scope: Scope) -> None:
        """Bind names to the global scope; known CMS instances (e.g.
        ``global $wpdb``) get their class from the profile."""
        frame = self._summary_stack[-1] if self._summary_stack else None
        if frame is not None:
            # the summary observes run-order-dependent global state, so
            # it cannot be reused across runs
            frame.uses_globals = True
        for name in node.names:
            if frame is not None:
                frame.global_reads.add(name)
            if self.track and self._unit_fp is not None:
                self._unit_fp.reads.add(name)
            record = self.globals.get(name)
            if record is None:
                class_name = None
                if self.options.oop:
                    instance = self.profile.known_instance(name)
                    if instance is not None:
                        class_name = instance.class_name
                record = VariableRecord(
                    name=name,
                    file=self._current_file,
                    line=node.line,
                    class_name=class_name,
                )
                self.globals.set(record)
                if class_name and frame is not None:
                    # materializing a known CMS instance binding is a
                    # class-bearing write other units can observe
                    frame.global_writes.add(name)
            scope.set(record)
            scope.global_aliases.add(name)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, node: Optional[ast.Expr], scope: Scope) -> Value:
        self._depth += 1
        try:
            if self.options.recover and self._depth > self.options.max_eval_depth:
                raise UnitFault(
                    f"evaluation depth limit ({self.options.max_eval_depth}) exceeded"
                )
            return self._eval_dispatch(node, scope)
        finally:
            self._depth -= 1

    def _eval_dispatch(self, node: Optional[ast.Expr], scope: Scope) -> Value:  # noqa: C901
        self._tick()
        if node is None:
            return Value.clean()
        if isinstance(node, ast.Literal):
            return Value.clean()
        if isinstance(node, ast.Variable):
            return self._eval_variable(node, scope)
        if isinstance(node, ast.VariableVariable):
            self._eval(node.expr, scope)
            return Value.clean()
        if isinstance(node, ast.InterpolatedString):
            value = Value.clean()
            for part in node.parts:
                value = value.joined(self._eval(part, scope))
            value.class_name = ""
            return value
        if isinstance(node, ast.ShellExec):
            value = Value.clean()
            for part in node.parts:
                value = value.joined(self._eval(part, scope))
            if (
                VulnKind.CMDI in self.options.construct_kinds
                and value.taint.active.get(VulnKind.CMDI)
            ):
                self._emit(
                    SinkEvent(
                        kind=VulnKind.CMDI,
                        sink="`...`",
                        file=self._current_file,
                        line=node.line,
                        variable=value.name_hint,
                        taint=value.taint,
                        trace=value.trace,
                    )
                )
            return value
        if isinstance(node, ast.ArrayLiteral):
            value = Value.clean()
            for item in node.items:
                if item.key is not None:
                    value = value.joined(self._eval(item.key, scope))
                value = value.joined(self._eval(item.value, scope))
            value.class_name = ""
            return value
        if isinstance(node, ast.ArrayAccess):
            return self._eval_array_access(node, scope)
        if isinstance(node, ast.PropertyAccess):
            return self._eval_property_access(node, scope)
        if isinstance(node, ast.StaticPropertyAccess):
            if self.options.oop:
                self._note_prop_read(node.class_name, node.name)
                return Value(taint=self.class_props.read(node.class_name, node.name))
            return Value.clean()
        if isinstance(node, (ast.ClassConstAccess, ast.ConstFetch)):
            return Value.clean()
        if isinstance(node, ast.Assignment):
            return self._eval_assignment(node, scope)
        if isinstance(node, ast.Binary):
            return self._eval_binary(node, scope)
        if isinstance(node, ast.Unary):
            inner = self._eval(node.operand, scope)
            if node.op in ("!", "-", "+", "~"):
                return Value.clean()
            return inner  # @-suppression and throw pass the value through
        if isinstance(node, ast.Ternary):
            self._eval(node.cond, scope)
            left = (
                self._eval(node.if_true, scope)
                if node.if_true is not None
                else self._eval(node.cond, scope)
            )
            right = self._eval(node.if_false, scope)
            return left.joined(right)
        if isinstance(node, ast.Cast):
            inner = self._eval(node.operand, scope)
            if node.to in ("int", "float", "bool", "unset"):
                return Value.clean()
            return inner
        if isinstance(node, ast.IncDec):
            self._eval(node.target, scope)
            return Value.clean()
        if isinstance(node, (ast.IssetExpr, ast.EmptyExpr, ast.InstanceofExpr)):
            return Value.clean()
        if isinstance(node, ast.ListExpr):
            value = Value.clean()
            for target in node.targets:
                if target is not None:
                    value = value.joined(self._eval(target, scope))
            return value
        if isinstance(node, ast.Closure):
            return Value.clean()
        if isinstance(node, ast.FunctionCall):
            return self._eval_function_call(node, scope)
        if isinstance(node, ast.MethodCall):
            return self._eval_method_call(node, scope)
        if isinstance(node, ast.StaticCall):
            return self._eval_static_call(node, scope)
        if isinstance(node, ast.New):
            return self._eval_new(node, scope)
        if isinstance(node, ast.Clone):
            return self._eval(node.expr, scope)
        if isinstance(node, ast.IncludeExpr):
            return self._eval_include(node, scope)
        if isinstance(node, ast.ExitExpr):
            if node.expr is not None:
                self._check_xss_output(node.expr, scope, sink="exit")
            return Value.clean()
        if isinstance(node, ast.PrintExpr):
            self._check_xss_output(node.expr, scope, sink="print")
            return Value.clean()
        return Value.clean()  # pragma: no cover - defensive

    # -- variables, arrays, properties ------------------------------------

    def _eval_variable(self, node: ast.Variable, scope: Scope) -> Value:
        name = node.name
        source = self.profile.superglobal_source(name)
        if source is not None:
            label = ConcreteSource(
                vector=source.vector,
                name=f"${name}",
                file=self._current_file,
                line=node.line,
            )
            return Value(
                taint=TaintState.from_label(label, source.kinds),
                trace=(f"${name} read at {self._current_file}:{node.line}",),
                name_hint=f"${name}",
            )
        if self.track and self._unit_fp is not None and scope.is_global_image:
            # a top-level read observes whatever earlier units left in
            # the global scope — record it even when nothing is bound
            # yet (an earlier unit *writing* it is still a coupling)
            self._unit_fp.reads.add(name)
        record = scope.get(name)
        if record is None and scope is not self.globals:
            pass  # locals do not fall back to globals without `global`
        if record is None and scope is self.globals:
            record = self.globals.get(name)
        if record is None:
            if self.options.oop:
                instance = self.profile.known_instance(name)
                if instance is not None:
                    return Value(class_name=instance.class_name, name_hint=f"${name}")
            if self.profile.register_globals and scope is self.globals:
                # Pixy-era model: uninitialized globals are attacker-set
                label = ConcreteSource(
                    vector=InputVector.GET,
                    name=f"register_globals:${name}",
                    file=self._current_file,
                    line=node.line,
                )
                return Value(
                    taint=TaintState.from_label(label, self._kind_universe),
                    trace=(f"uninitialized ${name} at {self._current_file}:{node.line}",),
                    name_hint=f"${name}",
                )
            return Value(name_hint=f"${name}")
        class_name = record.class_name or ""
        if not class_name and self.options.oop:
            # conventional names keep their known CMS type even when the
            # assignment was opaque (e.g. $db = JFactory::getDBO())
            instance = self.profile.known_instance(name)
            if instance is not None:
                class_name = instance.class_name
        return Value(
            taint=record.taint.copy(),
            class_name=class_name,
            trace=record.trace,
            name_hint=f"${name}",
        )

    def _eval_array_access(self, node: ast.ArrayAccess, scope: Scope) -> Value:
        container = self._eval(node.array, scope)
        if node.index is not None:
            # evaluate for side effects; an index rarely carries the
            # payload into the element value
            self._eval(node.index, scope)
        hint = container.name_hint + "[...]" if container.name_hint else ""
        return Value(
            taint=container.taint,
            trace=container.trace,
            name_hint=hint,
        )

    def _eval_property_access(self, node: ast.PropertyAccess, scope: Scope) -> Value:
        obj = self._eval(node.object, scope)
        prop = node.name if isinstance(node.name, str) else ""
        if not isinstance(node.name, str) and node.name is not None:
            self._eval(node.name, scope)
        hint = f"{obj.name_hint}->{prop}" if obj.name_hint else f"->{prop}"
        if self.options.oop and obj.class_name and prop:
            self._note_prop_read(obj.class_name, prop)
            return Value(
                taint=self.class_props.read(obj.class_name, prop),
                trace=obj.trace,
                name_hint=hint,
            )
        # property of an untyped value (e.g. a DB result row object):
        # propagate the container's taint
        return Value(taint=obj.taint, trace=obj.trace, name_hint=hint)

    # -- assignment -----------------------------------------------------------

    def _eval_assignment(self, node: ast.Assignment, scope: Scope) -> Value:
        value = self._eval(node.value, scope)
        if node.op == "=":
            if (
                node.by_ref
                and isinstance(node.target, ast.Variable)
                and isinstance(node.value, ast.Variable)
            ):
                self._link_reference(node.target.name, node.value.name, scope)
            result = value
        elif node.op == ".=":
            current = self._eval(node.target, scope)
            result = current.joined(value)
        elif node.op == "??=":
            # assigns only when the target is null, so afterwards the
            # value may come from either side: join them
            current = self._eval(node.target, scope)
            result = current.joined(value)
        else:  # arithmetic/bitwise compound: numeric result
            self._eval(node.target, scope)
            result = Value.clean()
        self._assign_to(node.target, result, scope, node.line)
        return result

    def _link_reference(self, target: str, source: str, scope: Scope) -> None:
        """``$b =& $a``: both names denote one storage slot from now on.

        The union of the two names' existing groups becomes a fresh
        frozenset shared by every member, and :meth:`_assign_to` mirrors
        each write across the group.  (By-ref *parameters* are handled
        separately through ``ref_param_writes``.)"""
        group = set(scope.ref_groups.get(target, (target,)))
        group.update(scope.ref_groups.get(source, (source,)))
        shared = frozenset(group)
        for name in shared:
            scope.ref_groups[name] = shared

    def _assign_to(
        self, target: Optional[ast.Expr], value: Value, scope: Scope, line: int
    ) -> None:
        if isinstance(target, ast.Variable):
            trace = value.trace + (
                f"${target.name} assigned at {self._current_file}:{line}",
            )
            was_global_alias = (
                scope is not self.globals
                and target.name in scope.global_aliases
                and scope.get(target.name) is not None
            )
            scope.set(
                VariableRecord(
                    name=target.name,
                    file=self._current_file,
                    line=line,
                    taint=value.taint.copy(),
                    class_name=value.class_name or None,
                    trace=trace[-self.options.max_trace:],
                )
            )
            if was_global_alias:
                # `global $x` alias: write through to the global scope
                self.globals.set(scope.records[target.name])
            if target.name in scope.static_names and scope.static_slots is not None:
                # `static $x`: join the write into the cross-call slot
                prior = scope.static_slots.get(target.name)
                scope.static_slots[target.name] = (
                    value.taint.copy() if prior is None else prior.joined(value.taint)
                )
            group = scope.ref_groups.get(target.name)
            if group is not None:
                # `$b =& $a` aliases: mirror the write to every member
                written = scope.records[target.name]
                for alias in group:
                    if alias != target.name:
                        scope.set(written.updated(name=alias))
        elif isinstance(target, ast.ArrayAccess):
            base = target.array
            while isinstance(base, ast.ArrayAccess):
                base = base.array
            if isinstance(base, ast.Variable):
                self._note_global_read(scope, base.name)
                record = scope.get(base.name) or VariableRecord(
                    name=base.name, file=self._current_file, line=line
                )
                scope.set(record.updated(taint=record.taint.joined(value.taint)))
            elif isinstance(base, ast.PropertyAccess):
                self._assign_to(base, value, scope, line)
        elif isinstance(target, ast.PropertyAccess):
            obj = self._eval(target.object, scope)
            prop = target.name if isinstance(target.name, str) else ""
            if self.options.oop and obj.class_name and prop:
                self._record_prop_write(obj.class_name, prop, value.taint)
            elif isinstance(target.object, ast.Variable):
                # untyped object: taint the container variable itself
                self._note_global_read(scope, target.object.name)
                record = scope.get(target.object.name) or VariableRecord(
                    name=target.object.name, file=self._current_file, line=line
                )
                scope.set(record.updated(taint=record.taint.joined(value.taint)))
        elif isinstance(target, ast.StaticPropertyAccess):
            if self.options.oop:
                self._record_prop_write(target.class_name, target.name, value.taint)
        elif isinstance(target, ast.ListExpr):
            for sub_target in target.targets:
                if sub_target is not None:
                    self._assign_to(sub_target, value, scope, line)

    def _declaring_class(self, class_name: str, prop: str) -> str:
        """Walk up the hierarchy to the ancestor declaring ``prop``.

        Properties are stored under their declaring class so sibling
        subclasses writing/reading an inherited property share one slot
        (matching PHP's storage semantics, object-insensitively).
        """
        declaring = class_name
        current: Optional[str] = class_name
        seen: Set[str] = set()
        while current and current.lower() not in seen:
            seen.add(current.lower())
            info = self._lookup_class_dep(current)
            if info is None:
                break
            if prop in info.property_names:
                declaring = info.name
            current = info.parent
        return declaring

    # -- model lookups with summary-dependency recording -------------------

    def _dep_sinks(self) -> List[Tuple[Set[str], Set[str]]]:
        """(dep_files, dep_unresolved) targets for the current context:
        the enclosing summary frame and — under unit tracking — the
        current root's footprint."""
        sinks: List[Tuple[Set[str], Set[str]]] = []
        if self._summary_stack:
            frame = self._summary_stack[-1]
            sinks.append((frame.dep_files, frame.dep_unresolved))
        if self.track and self._unit_fp is not None:
            sinks.append((self._unit_fp.dep_files, self._unit_fp.dep_unresolved))
        return sinks

    def _lookup_function_dep(self, name: str):
        info = self.model.lookup_function(name)
        for dep_files, dep_unresolved in self._dep_sinks():
            if info is not None:
                dep_files.add(info.file)
            else:
                dep_unresolved.add("fn:" + name.lower())
        return info

    def _lookup_class_dep(self, name: str):
        info = self.model.lookup_class(name)
        for dep_files, dep_unresolved in self._dep_sinks():
            if info is not None:
                dep_files.add(info.file)
            else:
                dep_unresolved.add("class:" + name.lower())
        return info

    def _resolve_method_dep(self, class_name: str, method: str):
        """Like :meth:`PluginModel.resolve_method`, recording every file
        of the consulted inheritance chain as a summary dependency —
        editing any class on the chain (adding an override, changing a
        parent) must invalidate summaries that dispatched through it."""
        info = self.model.resolve_method(class_name, method)
        sinks = self._dep_sinks()
        if sinks:
            seen: Set[str] = set()
            current: Optional[str] = class_name
            while current and current.lower() not in seen:
                seen.add(current.lower())
                class_info = self.model.lookup_class(current)
                if class_info is None:
                    for _dep_files, dep_unresolved in sinks:
                        dep_unresolved.add("class:" + current.lower())
                    break
                for dep_files, _dep_unresolved in sinks:
                    dep_files.add(class_info.file)
                for trait in class_info.decl.uses:
                    trait_info = self.model.lookup_class(trait)
                    for dep_files, dep_unresolved in sinks:
                        if trait_info is not None:
                            dep_files.add(trait_info.file)
                        else:
                            dep_unresolved.add("class:" + trait.lower())
                current = class_info.parent
            if info is not None:
                for dep_files, _dep_unresolved in sinks:
                    dep_files.add(info.file)
        return info

    def _record_prop_write(self, class_name: str, prop: str, taint: TaintState) -> None:
        """Commit a property write.

        Inside a function summary the parameter-dependent part is kept in
        the summary (substituted per call site); the parameter-free part
        is committed to the shared class property store immediately so
        writes by never-called methods are still visible (Section III.E).
        """
        class_name = self._declaring_class(class_name, prop)
        if self.track and self._unit_fp is not None:
            self._unit_fp.prop_writes.add(f"{class_name.lower()}|{prop}")
        if self._summary_stack:
            summary = self._summary_stack[-1]
            key = ClassPropertyStore.key(class_name, prop)
            existing = summary.prop_writes.get(key)
            summary.prop_writes[key] = (
                taint.copy() if existing is None else existing.joined(taint)
            )
            self.class_props.write(class_name, prop, taint.drop_param_refs())
        else:
            self.class_props.write(class_name, prop, taint)

    def _note_global_read(self, scope: Scope, name: str) -> None:
        """Record a read-modify-write touch of a (possibly) global name
        that bypasses :meth:`_eval_variable`."""
        if self.track and self._unit_fp is not None and scope.is_global_image:
            self._unit_fp.reads.add(name)

    def _note_prop_read(self, class_name: str, prop: str) -> None:
        """Record a property read for incremental state coupling.

        Reads resolve through the ancestor chain (both at
        :meth:`ClassPropertyStore.read` placeholder resolution and at
        finalize), so the read set includes every ancestor's key — a
        write to an inherited slot anywhere on the chain couples."""
        keys: Set[str] = set()
        current = class_name.lower()
        seen: Set[str] = set()
        while current and current not in seen:
            seen.add(current)
            keys.add(f"{current}|{prop}")
            current = self.class_props.parents.get(current, "")
        if self._summary_stack:
            self._summary_stack[-1].prop_reads.update(keys)
        if self.track and self._unit_fp is not None:
            self._unit_fp.prop_reads.update(keys)

    # -- binary ------------------------------------------------------------------

    def _eval_binary(self, node: ast.Binary, scope: Scope) -> Value:
        left = self._eval(node.left, scope)
        right = self._eval(node.right, scope)
        if node.op == ".":
            joined = left.joined(right)
            joined.class_name = ""
            return joined
        if node.op == "??":
            # either operand may be the result, so the value carries the
            # union of both operands' taint
            return left.joined(right)
        if node.op in ("&&", "||", "and", "or", "xor"):
            return Value.clean()
        # arithmetic/comparison produce numeric/boolean values
        return Value.clean()

    # -- calls ----------------------------------------------------------------------

    def _eval_args(self, args: Sequence[ast.Expr], scope: Scope) -> List[Value]:
        return [self._eval(arg, scope) for arg in args]

    def _eval_function_call(self, node: ast.FunctionCall, scope: Scope) -> Value:
        if not isinstance(node.name, str):
            self._eval(node.name, scope)
            self._eval_args(node.args, scope)
            return Value.clean()
        name = node.name
        lowered = name.lower()
        values = self._eval_args(node.args, scope)

        sinks = self.profile.function_sinks(lowered)
        if sinks and lowered not in ("echo", "print", "exit"):
            for sink in sinks:
                self._check_sink(sink.kind, name, node, values, sink_spec=sink)

        filter_spec = self.profile.function_filter(lowered)
        if filter_spec is not None:
            joined = Value.clean()
            for value in values:
                joined = joined.joined(value)
            return Value(
                taint=joined.taint.filtered(filter_spec.kinds),
                trace=joined.trace + (f"filtered by {name}()",),
            )

        revert = self.profile.revert(lowered)
        if revert is not None:
            joined = Value.clean()
            for value in values:
                joined = joined.joined(value)
            return Value(
                taint=joined.taint.reverted(revert.kinds),
                trace=joined.trace + (f"reverted by {name}()",),
            )

        source = self.profile.function_source(lowered)
        if source is not None:
            label = ConcreteSource(
                vector=source.vector,
                name=f"{name}()",
                file=self._current_file,
                line=node.line,
            )
            return Value(
                taint=TaintState.from_label(label, source.kinds),
                trace=(f"{name}() read at {self._current_file}:{node.line}",),
            )

        info = self._lookup_function_dep(lowered)
        if info is not None and not info.is_method:
            summary = self._summarize(info)
            return self._apply_summary(summary, values, node.args, scope, node.line)

        propagation = self.profile.function_propagation(lowered)
        if propagation is not None:
            return self._apply_propagation(propagation, name, values)

        if lowered in PASSTHROUGH_FUNCTIONS:
            joined = Value.clean()
            for value in values:
                joined = joined.joined(value)
            joined.class_name = ""
            return joined
        if lowered in CLEAN_FUNCTIONS:
            return Value.clean()
        if self.options.unknown_call_policy == "propagate":
            joined = Value.clean()
            for value in values:
                joined = joined.joined(value)
            joined.class_name = ""
            return joined
        return Value.clean()

    def _eval_method_call(self, node: ast.MethodCall, scope: Scope) -> Value:
        obj = self._eval(node.object, scope)
        if not isinstance(node.method, str):
            self._eval_args(node.args, scope)
            return Value.clean()
        if not self.options.oop:
            self._eval_args(node.args, scope)
            return Value.clean()
        method = node.method
        class_name = obj.class_name
        values = self._eval_args(node.args, scope)
        if not class_name:
            return Value(taint=TaintState.clean())
        return self._dispatch_method(class_name, method, node, values, obj, scope)

    def _eval_static_call(self, node: ast.StaticCall, scope: Scope) -> Value:
        values = self._eval_args(node.args, scope)
        return self._static_call_with_values(node, values, scope)

    def _static_call_with_values(
        self, node: ast.StaticCall, values: List[Value], scope: Scope
    ) -> Value:
        """Static-call resolution after the arguments are evaluated
        (shared with the IR evaluator, which lowers the argument list)."""
        if not self.options.oop or not isinstance(node.method, str):
            return Value.clean()
        class_name = node.class_name
        if class_name.startswith("$"):
            record = scope.get(class_name[1:])
            class_name = (record.class_name or "") if record else ""
        if class_name.lower() in ("self", "static", "parent"):
            this = scope.get("this")
            current = this.class_name if this and this.class_name else ""
            if class_name.lower() == "parent" and current:
                class_info = self._lookup_class_dep(current)
                class_name = (class_info.parent or "") if class_info else ""
            else:
                class_name = current
        if not class_name:
            return Value.clean()
        return self._dispatch_method(
            class_name, node.method, node, values, Value(class_name=class_name), scope
        )

    def _dispatch_method(
        self,
        class_name: str,
        method: str,
        node: Union[ast.MethodCall, ast.StaticCall],
        values: List[Value],
        obj: Value,
        scope: Scope,
    ) -> Value:
        """Shared resolution for ``->`` and ``::`` calls."""
        qualified = f"{obj.name_hint or class_name}->{method}"

        for sink in self.profile.method_sinks(class_name, method):
            self._check_sink(
                sink.kind, qualified, node, values, sink_spec=sink, via_oop=True
            )

        filter_spec = self.profile.method_filter(class_name, method)
        if filter_spec is not None:
            joined = Value.clean()
            for value in values:
                joined = joined.joined(value)
            return Value(
                taint=joined.taint.filtered(filter_spec.kinds),
                trace=joined.trace + (f"filtered by {qualified}()",),
            )

        source = self.profile.method_source(class_name, method)
        if source is not None:
            label = ConcreteSource(
                vector=source.vector,
                name=f"${class_name.lower()}->{method}()"
                if not obj.name_hint
                else f"{obj.name_hint}->{method}()",
                file=self._current_file,
                line=node.line,
                via_oop=True,
            )
            return Value(
                taint=TaintState.from_label(label, source.kinds),
                trace=(f"{qualified}() read at {self._current_file}:{node.line}",),
            )

        info = self._resolve_method_dep(class_name, method)
        if info is not None:
            summary = self._summarize(info)
            return self._apply_summary(summary, values, node.args, scope, node.line)

        propagation = self.profile.method_propagation(class_name, method)
        if propagation is not None:
            return self._apply_propagation(propagation, qualified, values)
        return Value.clean()

    def _apply_propagation(
        self, spec: "PropagationSpec", name: str, values: List[Value]
    ) -> Value:
        """ArgToReturn propagation: the return value carries the taint of
        the spec's argument positions, restricted to the spec's kinds."""
        joined = Value.clean()
        for index, value in enumerate(values):
            if spec.arg_is_propagated(index):
                joined = joined.joined(value)
        taint = joined.taint.restricted(spec.kinds)
        if taint.is_clean() and not taint.suppressed:
            return Value.clean()
        return Value(taint=taint, trace=joined.trace + (f"through {name}()",))

    def _eval_new(self, node: ast.New, scope: Scope) -> Value:
        values = self._eval_args(node.args, scope)
        return self._new_with_values(node, values, scope)

    def _new_with_values(
        self, node: ast.New, values: List[Value], scope: Scope
    ) -> Value:
        """Constructor dispatch after the arguments are evaluated
        (shared with the IR evaluator)."""
        if not isinstance(node.class_name, str):
            return Value.clean()
        class_name = node.class_name
        if self.options.oop:
            constructor = self._resolve_method_dep(class_name, "__construct")
            if constructor is None:
                # PHP4-style constructor: method named like the class
                constructor = self._resolve_method_dep(class_name, class_name)
            if constructor is not None:
                summary = self._summarize(constructor)
                self._apply_summary(summary, values, node.args, scope, node.line)
        return Value(class_name=class_name)

    def _eval_include(self, node: ast.IncludeExpr, scope: Scope) -> Value:
        """Inline the included file's top level (paper: "as the PHP file
        can include other PHP files recursively, all of them must be
        analyzed in order to obtain the complete AST").

        A tainted include path is also a file-inclusion sink (extension
        kind ``VulnKind.LFI``)."""
        path_value = self._eval(node.path, scope)
        return self._include_with_value(node, path_value, scope)

    def _include_with_value(
        self, node: ast.IncludeExpr, path_value: Value, scope: Scope
    ) -> Value:
        """Include handling after the path expression is evaluated
        (shared with the IR evaluator)."""
        if (
            VulnKind.LFI in self.options.construct_kinds
            and path_value.taint.active.get(VulnKind.LFI)
        ):
            self._emit(
                SinkEvent(
                    kind=VulnKind.LFI,
                    sink=node.kind,
                    file=self._current_file,
                    line=node.line,
                    variable=path_value.name_hint,
                    taint=path_value.taint,
                    trace=path_value.trace,
                )
            )
        if self._summary_stack:
            return Value.clean()  # includes inside functions: skipped
        from .model import _static_path

        raw = _static_path(node.path)
        if not raw:
            return Value.clean()
        resolved = self.model.resolve_include(raw, self._include_stack[-1])
        if (
            resolved is None
            or resolved in self._include_stack
            or len(self._include_stack) > self.options.max_include_depth
        ):
            return Value.clean()
        file_model = self.model.files.get(resolved)
        if file_model is None:
            return Value.clean()
        if self.track and self._unit_fp is not None:
            # the inlined file's content is part of this root's result
            self._unit_fp.dep_files.add(resolved)
        previous_file = self._current_file
        self._include_stack.append(resolved)
        self._current_file = resolved
        try:
            self._exec_block(file_model.tree.statements, scope)
        finally:
            self._include_stack.pop()
            self._current_file = previous_file
        return Value.clean()

    # -- sinks ------------------------------------------------------------------------

    def _check_xss_output(
        self, expr: Optional[ast.Expr], scope: Scope, sink: str
    ) -> None:
        """echo/print/<?=: evaluate and flag XSS-tainted output.

        The markup context at the injection point (element text,
        attribute, script block, URL ...) is derived from the literal
        markup emitted before the first dynamic part — RIPS's
        context-sensitive string analysis (paper Section II)."""
        value = self._eval(expr, scope)
        if value.taint.active.get(VulnKind.XSS):
            prefix = _literal_prefix(expr)
            context = context_at_end(prefix)
            self._emit(
                SinkEvent(
                    kind=VulnKind.XSS,
                    sink=sink,
                    file=self._current_file,
                    line=expr.line if expr is not None else 0,
                    variable=value.name_hint or _describe_expr(expr),
                    taint=value.taint,
                    trace=value.trace,
                    markup_context=context.value,
                )
            )

    def _check_sink(
        self,
        kind: VulnKind,
        sink_name: str,
        node: ast.Expr,
        values: Sequence[Value],
        sink_spec,
        via_oop: bool = False,
    ) -> None:
        for index, value in enumerate(values):
            if not sink_spec.arg_is_sensitive(index):
                continue
            if value.taint.active.get(kind):
                self._emit(
                    SinkEvent(
                        kind=kind,
                        sink=sink_name,
                        file=self._current_file,
                        line=node.line,
                        variable=value.name_hint,
                        taint=value.taint,
                        trace=value.trace,
                        via_oop=via_oop,
                    )
                )


def _literal_prefix(expr: Optional[ast.Expr]) -> str:
    """Concatenated literal markup before the first dynamic part."""
    parts: List[str] = []

    def collect(node: Optional[ast.Expr]) -> bool:
        """Append literals in output order; False at first dynamic part."""
        if node is None:
            return False
        if isinstance(node, ast.Literal):
            parts.append(str(node.value) if node.value is not None else "")
            return True
        if isinstance(node, ast.Binary) and node.op == ".":
            return collect(node.left) and collect(node.right)
        if isinstance(node, ast.InterpolatedString):
            for part in node.parts:
                if not collect(part):
                    return False
            return True
        return False

    collect(expr)
    return "".join(parts)


def _describe_expr(expr: Optional[ast.Expr]) -> str:
    if expr is None:
        return ""
    try:
        text = print_expr(expr)
    except TypeError:
        return type(expr).__name__
    return text if len(text) <= 60 else text[:57] + "..."

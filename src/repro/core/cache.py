"""Incremental analysis cache (paper Section VI: "improvement of
phpSAFE, mainly regarding performance, memory consumption").

Parsing dominates re-scan cost when a plugin is analyzed repeatedly
(CI on every commit, the history workflow, the evaluation harness's
timing repetitions).  :class:`ModelCache` memoizes the per-file
model-construction products — token stream, AST, LOC, include list —
keyed by a content hash, so an unchanged file is never re-lexed or
re-parsed.  ASTs are treated as immutable by the analysis stage, so
sharing them across runs is safe.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..php.errors import PhpSyntaxError


def content_key(path: str, source: str) -> str:
    """Cache key: path + content digest (path matters for includes)."""
    digest = hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()
    return f"{path}:{digest}"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ModelCache:
    """Content-addressed store of parsed file models.

    Also caches *parse failures*: a file that failed to parse will fail
    identically until its content changes.
    """

    max_entries: int = 4096
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: Dict[str, object] = field(default_factory=dict, repr=False)
    _failures: Dict[str, PhpSyntaxError] = field(default_factory=dict, repr=False)

    def lookup(self, path: str, source: str) -> Tuple[object, Optional[PhpSyntaxError]]:
        """Return ``(file model or None, cached failure or None)``."""
        key = content_key(path, source)
        if key in self._entries:
            self.stats.hits += 1
            return self._entries[key], None
        if key in self._failures:
            self.stats.hits += 1
            return None, self._failures[key]
        self.stats.misses += 1
        return None, None

    def store(self, path: str, source: str, file_model: object) -> None:
        self._evict_if_full()
        self._entries[content_key(path, source)] = file_model

    def store_failure(self, path: str, source: str, error: PhpSyntaxError) -> None:
        self._evict_if_full()
        self._failures[content_key(path, source)] = error

    def _evict_if_full(self) -> None:
        """Simple FIFO eviction; cache keys are content-stable."""
        while len(self._entries) + len(self._failures) >= self.max_entries:
            if self._entries:
                self._entries.pop(next(iter(self._entries)))
            elif self._failures:  # pragma: no cover - failure-only cache
                self._failures.pop(next(iter(self._failures)))

    def clear(self) -> None:
        self._entries.clear()
        self._failures.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries) + len(self._failures)

"""Incremental analysis cache (paper Section VI: "improvement of
phpSAFE, mainly regarding performance, memory consumption").

Parsing dominates re-scan cost when a plugin is analyzed repeatedly
(CI on every commit, the history workflow, the evaluation harness's
timing repetitions).  :class:`ModelCache` memoizes the per-file
model-construction products — token stream, AST, LOC, include list —
keyed by a content hash, so an unchanged file is never re-lexed or
re-parsed.  ASTs are treated as immutable by the analysis stage, so
sharing them across runs is safe.

Eviction is true LRU: a lookup hit refreshes the entry's recency, and
inserting beyond ``max_entries`` evicts the least recently used entry.
Parse failures share the same budget and recency queue as models.
:class:`~repro.batch.diskcache.DiskModelCache` layers a persistent
content-addressed tier under this memory cache via the :meth:`_load` /
:meth:`_insert` hooks.

The cache is additionally bounded by **bytes** when ``max_bytes`` is
set: every slot carries an approximate heap-size estimate
(:func:`approx_slot_bytes`), and insertion evicts LRU entries until
*both* caps hold — whichever cap trips first wins.  Entry counts alone
are a memory lie at scale: 4096 slots of multi-MB file models from a
"single huge file" plugin are gigabytes of RSS while the entry counter
reports a healthy cache.  An entry whose own estimate exceeds
``max_bytes`` is never retained in memory at all (the persistent disk
tier, when present, still keeps it) — a cache must stay a cache, not
become the leak.
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..php.errors import PhpSyntaxError


# -- approximate slot sizing -------------------------------------------------
#
# Exact deep sizeof over a shared/interned AST is both slow and wrong
# (interned tokens and hash-consed taint states are shared across
# entries); instead each artifact type gets a calibrated linear
# estimate.  The FileModel coefficients come from tracemalloc
# measurements of representative OOP plugin files: ~150 heap bytes per
# token, ~560 per effective line of AST/index, ~2 per raw source byte —
# about 48 bytes of heap per source byte with tokens, half that once
# tokens are spilled.

_TOKEN_BYTES = 150
_LOC_BYTES = 560
_INSTRUCTION_BYTES = 200
_SLOT_OVERHEAD = 256


def approx_object_bytes(obj: object) -> int:
    """Approximate heap footprint of one cached artifact, in bytes."""
    if obj is None:
        return 0
    source = getattr(obj, "source", None)
    if isinstance(source, str):  # FileModel (or compatible)
        tokens = getattr(obj, "tokens", None) or ()
        loc = getattr(obj, "loc", 0) or 0
        return (
            _SLOT_OVERHEAD
            + 2 * len(source)
            + _TOKEN_BYTES * len(tokens)
            + _LOC_BYTES * loc
        )
    codes = getattr(obj, "codes", None)
    if codes is not None:  # IRProgram: flat instruction tuples per body
        instructions = sum(len(body) for body in codes)
        return _SLOT_OVERHEAD + _INSTRUCTION_BYTES * max(1, instructions)
    # summaries, parse failures, anything else: shallow size plus a
    # fixed allowance for their (small) owned containers
    try:
        shallow = sys.getsizeof(obj)
    except TypeError:  # pragma: no cover - exotic objects
        shallow = 64
    return _SLOT_OVERHEAD + shallow + 1024


def approx_slot_bytes(slot: "_Slot") -> int:
    """Approximate footprint of a cache slot (model or failure)."""
    model, error = slot
    return approx_object_bytes(model if model is not None else error)


def content_key(path: str, source: str, variant: str = "") -> str:
    """Cache key: path + content digest (path matters for includes).

    ``variant`` distinguishes parse modes sharing one cache: a file
    parsed with panic-mode recovery produces a different model (partial
    AST + incidents) than a strict parse, so the two must not share a
    slot.
    """
    digest = hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()
    if variant:
        return f"{path}:{variant}:{digest}"
    return f"{path}:{digest}"


def summary_key(fingerprint: str, function_key: str, digest: str) -> str:
    """Summary-cache key: analyzer configuration fingerprint (knowledge
    base + engine options) + function key + defining-file content digest.
    The ``summary2!`` prefix keeps these slots disjoint from file models
    (model keys start with a file path, which never contains ``!``
    before a ``:``).  The ``2`` retired the pre-incremental namespace:
    summaries pickled before the state-coupling sets (``prop_reads``
    &c.) were added would deserialize with empty sets and let the
    rescan planner skip roots it must not."""
    return f"summary2!{fingerprint}!{function_key}!{digest}"


def ir_key(fingerprint: str, path: str, digest: str) -> str:
    """Lowered-IR cache key: analyzer configuration fingerprint + file
    path + content digest.  The ``ir1!`` prefix keeps these slots
    disjoint from file models and summaries (same reasoning as
    :func:`summary_key`); the ``1`` is the on-disk generation — the
    instruction encoding itself is additionally versioned through
    :data:`repro.core.ir.IR_VERSION` inside the stored program."""
    return f"ir1!{fingerprint}!{path}!{digest}"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    #: subset of ``hits`` served from a persistent tier (disk cache)
    disk_hits: int = 0
    evictions: int = 0
    #: subset of ``evictions`` forced by the byte cap while the entry
    #: count was still under ``max_entries`` (memory pressure, not
    #: capacity pressure)
    byte_evictions: int = 0
    #: entries never retained because they alone exceeded ``max_bytes``
    oversized: int = 0
    #: corrupt persistent entries detected and quarantined (disk cache)
    corrupt: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class IRCacheStats:
    """Counters of the lowered-IR tier (one entry per file), separate
    from the parse and summary tiers for the same observability reason."""

    hits: int = 0
    misses: int = 0
    #: subset of ``hits`` served from the persistent tier
    disk_hits: int = 0
    stores: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class SummaryCacheStats:
    """Counters of the function-summary tier, separate from the parse
    tier so each cache's effectiveness is observable on its own."""

    hits: int = 0
    misses: int = 0
    #: entries found but rejected by dependency validation
    stale: int = 0
    #: subset of ``hits`` served from the persistent tier
    disk_hits: int = 0
    stores: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: One cached outcome: ``(file model, None)`` or ``(None, parse failure)``.
_Slot = Tuple[Optional[object], Optional[PhpSyntaxError]]


@dataclass
class ModelCache:
    """Content-addressed store of parsed file models.

    Also caches *parse failures*: a file that failed to parse will fail
    identically until its content changes.
    """

    max_entries: int = 4096
    #: approximate in-memory byte bound (None = entries-only bound);
    #: sized via :func:`approx_slot_bytes` at insertion time
    max_bytes: Optional[int] = None
    stats: CacheStats = field(default_factory=CacheStats)
    summary_stats: SummaryCacheStats = field(default_factory=SummaryCacheStats)
    ir_stats: IRCacheStats = field(default_factory=IRCacheStats)
    #: recency-ordered (dict insertion order): first key is the LRU victim
    _slots: Dict[str, _Slot] = field(default_factory=dict, repr=False)
    #: per-key size estimates backing :attr:`current_bytes`
    _sizes: Dict[str, int] = field(default_factory=dict, repr=False)
    #: running total of ``_sizes`` (kept incrementally; O(1) reads)
    _total_bytes: int = field(default=0, repr=False)

    def lookup(
        self, path: str, source: str, variant: str = ""
    ) -> Tuple[object, Optional[PhpSyntaxError]]:
        """Return ``(file model or None, cached failure or None)``."""
        slot = self._load(content_key(path, source, variant))
        if slot is None:
            self.stats.misses += 1
            return None, None
        self.stats.hits += 1
        return slot

    def store(
        self, path: str, source: str, file_model: object, variant: str = ""
    ) -> None:
        self._insert(content_key(path, source, variant), (file_model, None))

    def store_failure(
        self, path: str, source: str, error: PhpSyntaxError, variant: str = ""
    ) -> None:
        self._insert(content_key(path, source, variant), (None, error))

    # -- function-summary tier ---------------------------------------------
    #
    # Summaries live in the same recency queue and persistent object
    # store as file models (the key namespaces are disjoint), but keep
    # their own hit/miss counters: the parse tier's stats stay exact.

    def lookup_summary(self, key: str) -> Optional[object]:
        """Return the persisted :class:`FunctionSummary` under ``key``."""
        disk_hits_before = self.stats.disk_hits
        slot = self._load(key)
        if self.stats.disk_hits != disk_hits_before:
            # re-attribute the disk hit to the summary tier's counters
            self.stats.disk_hits = disk_hits_before
            self.summary_stats.disk_hits += 1
        if slot is None:
            self.summary_stats.misses += 1
            return None
        self.summary_stats.hits += 1
        return slot[0]

    def store_summary(self, key: str, summary: object) -> None:
        self.summary_stats.stores += 1
        self._insert(key, (summary, None))

    # -- lowered-IR tier ----------------------------------------------------

    def lookup_ir(self, key: str) -> Optional[object]:
        """Return the cached :class:`~repro.core.ir.IRProgram` under
        ``key``, or None.  Version/shape validation is the caller's job —
        the cache only answers by content address."""
        disk_hits_before = self.stats.disk_hits
        slot = self._load(key)
        if self.stats.disk_hits != disk_hits_before:
            # re-attribute the disk hit to the IR tier's counters
            self.stats.disk_hits = disk_hits_before
            self.ir_stats.disk_hits += 1
        if slot is None:
            self.ir_stats.misses += 1
            return None
        self.ir_stats.hits += 1
        return slot[0]

    def store_ir(self, key: str, program: object) -> None:
        self.ir_stats.stores += 1
        self._insert(key, (program, None))

    # -- storage hooks (extended by the persistent disk tier) ---------------

    def _load(self, key: str) -> Optional[_Slot]:
        """Memory probe; a hit moves the entry to the back of the queue."""
        slot = self._slots.pop(key, None)
        if slot is not None:
            self._slots[key] = slot
        return slot

    def _insert(self, key: str, slot: _Slot) -> None:
        """Insert (or refresh) ``key``, then evict LRU entries until
        both bounds hold — strictly over capacity only (the cache holds
        exactly ``max_entries`` entries, not ``max_entries - 1``), and
        at most ``max_bytes`` of estimated heap when that cap is set.
        Whichever cap trips first drives the eviction."""
        self._evict_key(key)  # refresh: the replacement is re-estimated
        size = approx_slot_bytes(slot)
        if self.max_bytes is not None and size > self.max_bytes:
            # never retain an entry that alone busts the byte budget —
            # the persistent tier (when present) still keeps it
            self.stats.oversized += 1
            return
        self._slots[key] = slot
        self._sizes[key] = size
        self._total_bytes += size
        while len(self._slots) > self.max_entries or (
            self.max_bytes is not None and self._total_bytes > self.max_bytes
        ):
            if len(self._slots) <= self.max_entries:
                self.stats.byte_evictions += 1
            self._evict_key(next(iter(self._slots)))
            self.stats.evictions += 1

    def _evict_key(self, key: str) -> Optional[_Slot]:
        """Drop ``key`` from the memory tier, keeping sizes consistent."""
        slot = self._slots.pop(key, None)
        if slot is not None:
            self._total_bytes -= self._sizes.pop(key, 0)
        return slot

    # -- eager spill --------------------------------------------------------

    def spill(self, keys: Iterable[str]) -> int:
        """Eagerly evict ``keys`` from the memory tier; returns the
        estimated bytes released.  On a persistent cache this demotes
        the artifacts to disk (they were written at insert time); on a
        memory-only cache they are simply recomputable.  The streaming
        scanner calls this the moment a plugin's analysis roots
        complete, so huge file models do not linger until LRU pressure
        finally reaches them."""
        released = 0
        for key in keys:
            if key in self._slots:
                released += self._sizes.get(key, 0)
                self._evict_key(key)
        return released

    @property
    def current_bytes(self) -> int:
        """Approximate bytes held by the memory tier right now."""
        return self._total_bytes

    def occupancy(self) -> Dict[str, object]:
        """Live occupancy snapshot for telemetry/metrics consumers."""
        return {
            "entries": len(self._slots),
            "max_entries": self.max_entries,
            "bytes": self._total_bytes,
            "max_bytes": self.max_bytes,
            "evictions": self.stats.evictions,
            "byte_evictions": self.stats.byte_evictions,
            "oversized": self.stats.oversized,
        }

    def clear(self) -> None:
        self._slots.clear()
        self._sizes.clear()
        self._total_bytes = 0
        self.stats = CacheStats()
        self.summary_stats = SummaryCacheStats()
        self.ir_stats = IRCacheStats()

    def __len__(self) -> int:
        return len(self._slots)

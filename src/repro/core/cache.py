"""Incremental analysis cache (paper Section VI: "improvement of
phpSAFE, mainly regarding performance, memory consumption").

Parsing dominates re-scan cost when a plugin is analyzed repeatedly
(CI on every commit, the history workflow, the evaluation harness's
timing repetitions).  :class:`ModelCache` memoizes the per-file
model-construction products — token stream, AST, LOC, include list —
keyed by a content hash, so an unchanged file is never re-lexed or
re-parsed.  ASTs are treated as immutable by the analysis stage, so
sharing them across runs is safe.

Eviction is true LRU: a lookup hit refreshes the entry's recency, and
inserting beyond ``max_entries`` evicts the least recently used entry.
Parse failures share the same budget and recency queue as models.
:class:`~repro.batch.diskcache.DiskModelCache` layers a persistent
content-addressed tier under this memory cache via the :meth:`_load` /
:meth:`_insert` hooks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..php.errors import PhpSyntaxError


def content_key(path: str, source: str, variant: str = "") -> str:
    """Cache key: path + content digest (path matters for includes).

    ``variant`` distinguishes parse modes sharing one cache: a file
    parsed with panic-mode recovery produces a different model (partial
    AST + incidents) than a strict parse, so the two must not share a
    slot.
    """
    digest = hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()
    if variant:
        return f"{path}:{variant}:{digest}"
    return f"{path}:{digest}"


def summary_key(fingerprint: str, function_key: str, digest: str) -> str:
    """Summary-cache key: analyzer configuration fingerprint (knowledge
    base + engine options) + function key + defining-file content digest.
    The ``summary2!`` prefix keeps these slots disjoint from file models
    (model keys start with a file path, which never contains ``!``
    before a ``:``).  The ``2`` retired the pre-incremental namespace:
    summaries pickled before the state-coupling sets (``prop_reads``
    &c.) were added would deserialize with empty sets and let the
    rescan planner skip roots it must not."""
    return f"summary2!{fingerprint}!{function_key}!{digest}"


def ir_key(fingerprint: str, path: str, digest: str) -> str:
    """Lowered-IR cache key: analyzer configuration fingerprint + file
    path + content digest.  The ``ir1!`` prefix keeps these slots
    disjoint from file models and summaries (same reasoning as
    :func:`summary_key`); the ``1`` is the on-disk generation — the
    instruction encoding itself is additionally versioned through
    :data:`repro.core.ir.IR_VERSION` inside the stored program."""
    return f"ir1!{fingerprint}!{path}!{digest}"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    #: subset of ``hits`` served from a persistent tier (disk cache)
    disk_hits: int = 0
    evictions: int = 0
    #: corrupt persistent entries detected and quarantined (disk cache)
    corrupt: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class IRCacheStats:
    """Counters of the lowered-IR tier (one entry per file), separate
    from the parse and summary tiers for the same observability reason."""

    hits: int = 0
    misses: int = 0
    #: subset of ``hits`` served from the persistent tier
    disk_hits: int = 0
    stores: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class SummaryCacheStats:
    """Counters of the function-summary tier, separate from the parse
    tier so each cache's effectiveness is observable on its own."""

    hits: int = 0
    misses: int = 0
    #: entries found but rejected by dependency validation
    stale: int = 0
    #: subset of ``hits`` served from the persistent tier
    disk_hits: int = 0
    stores: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: One cached outcome: ``(file model, None)`` or ``(None, parse failure)``.
_Slot = Tuple[Optional[object], Optional[PhpSyntaxError]]


@dataclass
class ModelCache:
    """Content-addressed store of parsed file models.

    Also caches *parse failures*: a file that failed to parse will fail
    identically until its content changes.
    """

    max_entries: int = 4096
    stats: CacheStats = field(default_factory=CacheStats)
    summary_stats: SummaryCacheStats = field(default_factory=SummaryCacheStats)
    ir_stats: IRCacheStats = field(default_factory=IRCacheStats)
    #: recency-ordered (dict insertion order): first key is the LRU victim
    _slots: Dict[str, _Slot] = field(default_factory=dict, repr=False)

    def lookup(
        self, path: str, source: str, variant: str = ""
    ) -> Tuple[object, Optional[PhpSyntaxError]]:
        """Return ``(file model or None, cached failure or None)``."""
        slot = self._load(content_key(path, source, variant))
        if slot is None:
            self.stats.misses += 1
            return None, None
        self.stats.hits += 1
        return slot

    def store(
        self, path: str, source: str, file_model: object, variant: str = ""
    ) -> None:
        self._insert(content_key(path, source, variant), (file_model, None))

    def store_failure(
        self, path: str, source: str, error: PhpSyntaxError, variant: str = ""
    ) -> None:
        self._insert(content_key(path, source, variant), (None, error))

    # -- function-summary tier ---------------------------------------------
    #
    # Summaries live in the same recency queue and persistent object
    # store as file models (the key namespaces are disjoint), but keep
    # their own hit/miss counters: the parse tier's stats stay exact.

    def lookup_summary(self, key: str) -> Optional[object]:
        """Return the persisted :class:`FunctionSummary` under ``key``."""
        disk_hits_before = self.stats.disk_hits
        slot = self._load(key)
        if self.stats.disk_hits != disk_hits_before:
            # re-attribute the disk hit to the summary tier's counters
            self.stats.disk_hits = disk_hits_before
            self.summary_stats.disk_hits += 1
        if slot is None:
            self.summary_stats.misses += 1
            return None
        self.summary_stats.hits += 1
        return slot[0]

    def store_summary(self, key: str, summary: object) -> None:
        self.summary_stats.stores += 1
        self._insert(key, (summary, None))

    # -- lowered-IR tier ----------------------------------------------------

    def lookup_ir(self, key: str) -> Optional[object]:
        """Return the cached :class:`~repro.core.ir.IRProgram` under
        ``key``, or None.  Version/shape validation is the caller's job —
        the cache only answers by content address."""
        disk_hits_before = self.stats.disk_hits
        slot = self._load(key)
        if self.stats.disk_hits != disk_hits_before:
            # re-attribute the disk hit to the IR tier's counters
            self.stats.disk_hits = disk_hits_before
            self.ir_stats.disk_hits += 1
        if slot is None:
            self.ir_stats.misses += 1
            return None
        self.ir_stats.hits += 1
        return slot[0]

    def store_ir(self, key: str, program: object) -> None:
        self.ir_stats.stores += 1
        self._insert(key, (program, None))

    # -- storage hooks (extended by the persistent disk tier) ---------------

    def _load(self, key: str) -> Optional[_Slot]:
        """Memory probe; a hit moves the entry to the back of the queue."""
        slot = self._slots.pop(key, None)
        if slot is not None:
            self._slots[key] = slot
        return slot

    def _insert(self, key: str, slot: _Slot) -> None:
        """Insert (or refresh) ``key``, then evict LRU entries only once
        the cache is strictly over capacity — the cache holds exactly
        ``max_entries`` entries, not ``max_entries - 1``."""
        self._slots.pop(key, None)
        self._slots[key] = slot
        while len(self._slots) > self.max_entries:
            self._slots.pop(next(iter(self._slots)))
            self.stats.evictions += 1

    def clear(self) -> None:
        self._slots.clear()
        self.stats = CacheStats()
        self.summary_stats = SummaryCacheStats()
        self.ir_stats = IRCacheStats()

    def __len__(self) -> int:
        return len(self._slots)

"""Automatic remediation proposals for findings.

Section III.D: phpSAFE's review data helps practitioners "trace back the
path of the tainted variables to the point they entered the system and
locate the best place to fix the vulnerabilities found".  This module
takes the next step and *proposes the fix*: it rewrites the sink
expression at a finding's location to route the tainted value through
the appropriate sanitizer (``esc_html`` for XSS at echo sinks,
``$wpdb->prepare``-style escaping for SQL, ``escapeshellarg`` for
commands, ``basename`` for includes), then re-prints the file.

Fixes are *proposals*: the caller receives the patched source plus a
diff-style summary and decides whether to apply it.  ``verify_fix``
re-runs the analyzer to show the finding is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..config.vulnerability import VulnKind
from ..php import ast_nodes as ast
from ..php.parser import parse_source
from ..php.printer import print_file
from ..plugin import Plugin
from .phpsafe import PhpSafe
from .results import Finding

#: Sanitizer applied per vulnerability kind at the sink.
KIND_SANITIZER = {
    VulnKind.XSS: "esc_html",
    VulnKind.SQLI: "esc_sql",
    VulnKind.CMDI: "escapeshellarg",
    VulnKind.LFI: "basename",
}


@dataclass(frozen=True)
class FixProposal:
    """One proposed remediation."""

    finding: Finding
    file: str
    original_source: str
    patched_source: str
    description: str

    @property
    def changed(self) -> bool:
        return self.patched_source != self.original_source


_ALREADY_SAFE = frozenset(
    {sanitizer.lower() for sanitizer in KIND_SANITIZER.values()}
    | {
        "esc_html", "esc_attr", "esc_js", "esc_url", "esc_sql",
        "htmlentities", "htmlspecialchars", "intval", "absint",
        "sanitize_text_field", "escapeshellarg", "basename",
    }
)


def _needs_wrap(expr: ast.Expr) -> bool:
    """Skip literals and expressions already routed through a sanitizer."""
    if isinstance(expr, ast.Literal):
        return False
    if isinstance(expr, ast.FunctionCall) and isinstance(expr.name, str):
        return expr.name.lower() not in _ALREADY_SAFE
    return True


def _wrap(expr: ast.Expr, sanitizer: str) -> ast.Expr:
    return ast.FunctionCall(line=expr.line, name=sanitizer, args=[expr])


class _SinkRewriter:
    """Wrap tainted expressions at one sink site."""

    def __init__(self, finding: Finding) -> None:
        self.finding = finding
        self.sanitizer = KIND_SANITIZER[finding.kind]
        if finding.kind is VulnKind.XSS and finding.markup_context:
            from ..php.htmlcontext import MarkupContext

            self.sanitizer = MarkupContext(
                finding.markup_context
            ).recommended_sanitizer
        self.rewrote = False

    # -- per-construct rewrites ------------------------------------------

    def rewrite(self, node: object) -> None:
        for child in ast.walk(node):  # type: ignore[arg-type]
            if isinstance(child, ast.EchoStatement) and self._at_sink(child.exprs):
                child.exprs = [self._sanitize(expr) for expr in child.exprs]
                self.rewrote = True
            elif isinstance(child, ast.PrintExpr) and self._at_sink(
                [child.expr] if child.expr else []
            ):
                child.expr = self._sanitize(child.expr)  # type: ignore[arg-type]
                self.rewrote = True
            elif isinstance(child, (ast.FunctionCall, ast.MethodCall)):
                name = child.name if isinstance(child, ast.FunctionCall) else child.method
                if (
                    isinstance(name, str)
                    and self._matches_sink_name(name)
                    and self._at_sink(child.args)
                ):
                    child.args = [self._sanitize(arg) for arg in child.args]
                    self.rewrote = True
            elif isinstance(child, ast.IncludeExpr) and self.finding.kind is (
                VulnKind.LFI
            ):
                if child.path is not None and self._at_sink([child.path]):
                    child.path = self._sanitize(child.path)
                    self.rewrote = True

    def _matches_sink_name(self, name: str) -> bool:
        sink = self.finding.sink
        return name.lower() == sink.split("->")[-1].lower()

    def _at_sink(self, exprs: List[ast.Expr]) -> bool:
        lines = {expr.line for expr in exprs if expr is not None}
        return self.finding.line in lines

    def _sanitize(self, expr: ast.Expr) -> ast.Expr:
        if expr is None or not _needs_wrap(expr):
            return expr
        return _wrap(expr, self.sanitizer)


def propose_fix(plugin: Plugin, finding: Finding) -> Optional[FixProposal]:
    """Build a remediation proposal for one finding, or None."""
    source = plugin.files.get(finding.file)
    if source is None:
        return None
    tree = parse_source(source, finding.file)
    rewriter = _SinkRewriter(finding)
    rewriter.rewrite(tree)
    if not rewriter.rewrote:
        return None
    patched = print_file(tree)
    description = (
        f"route the value at {finding.file}:{finding.line} through "
        f"{rewriter.sanitizer}() before the {finding.sink} sink"
    )
    return FixProposal(
        finding=finding,
        file=finding.file,
        original_source=source,
        patched_source=patched,
        description=description,
    )


def apply_fixes(
    plugin: Plugin, findings: List[Finding]
) -> Tuple[Plugin, List[FixProposal]]:
    """Apply proposals for every finding; returns the patched plugin.

    All findings of one file are rewritten in a single AST pass against
    the *original* source (printing normalizes the file and would shift
    the line numbers later findings refer to).
    """
    patched = Plugin(name=plugin.name, version=plugin.version, files=dict(plugin.files))
    proposals: List[FixProposal] = []
    by_file: dict = {}
    for finding in findings:
        by_file.setdefault(finding.file, []).append(finding)
    for file, file_findings in sorted(by_file.items()):
        source = patched.files.get(file)
        if source is None:
            continue
        tree = parse_source(source, file)
        fixed_any = False
        for finding in sorted(file_findings, key=lambda f: f.line):
            rewriter = _SinkRewriter(finding)
            rewriter.rewrite(tree)
            if rewriter.rewrote:
                fixed_any = True
                proposals.append(
                    FixProposal(
                        finding=finding,
                        file=file,
                        original_source=source,
                        patched_source="",  # filled after the joint print
                        description=(
                            f"route the value at {file}:{finding.line} through "
                            f"{rewriter.sanitizer}() before the "
                            f"{finding.sink} sink"
                        ),
                    )
                )
        if fixed_any:
            printed = print_file(tree)
            patched.files[file] = printed
            proposals = [
                replace(p, patched_source=printed) if p.file == file and
                not p.patched_source else p
                for p in proposals
            ]
    return patched, proposals


def verify_fix(patched: Plugin, original_finding: Finding) -> bool:
    """Re-analyze: True when the original sink no longer fires."""
    report = PhpSafe().analyze(patched)
    return not any(
        finding.kind is original_finding.kind
        and finding.file == original_finding.file
        and finding.sink == original_finding.sink
        and finding.variable == original_finding.variable
        for finding in report.findings
    )

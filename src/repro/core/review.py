"""Reviewer-facing report generation (paper Sections III and III.D).

The original phpSAFE "has a web interface ... the output of the
analysis is presented in a web page that helps reviewing the results,
including the vulnerable variables, the entry point of the vulnerability
in the source code PHP file, the flow of the vulnerable data from
variable to variable" and exposes resources "related to the variables
..., functions, PHP files included, tokens (the complete AST) and debug
information".

This module renders a :class:`~repro.core.results.ToolReport` in three
formats: a self-contained HTML review page (the web-interface analogue),
JSON (for CI integration — Section III: "it can be tuned to produce and
store the results in other formats or distribute them over the
network"), and plain text for terminals.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional

from ..plugin import Plugin
from .model import PluginModel
from .results import Finding, ToolReport

_SEVERITY_ORDER = {"sqli": 0, "cmdi": 1, "lfi": 2, "xss": 3}


def sorted_findings(report: ToolReport) -> List[Finding]:
    """Findings ordered for review: severity class, then location."""
    return sorted(
        report.findings,
        key=lambda finding: (
            _SEVERITY_ORDER.get(finding.kind.value, 9),
            finding.file,
            finding.line,
        ),
    )


def fix_hint(finding: Finding) -> str:
    """The remediation advice a reviewer would attach.

    XSS hints are markup-context-specific (attribute vs element text vs
    script block) when the engine determined the context.
    """
    if finding.kind.value == "xss":
        if finding.markup_context:
            from ..php.htmlcontext import MarkupContext

            context = MarkupContext(finding.markup_context)
            return (
                f"escape for the {context.value} context: "
                f"{context.recommended_sanitizer}()"
            )
        return "escape at output: esc_html()/esc_attr()/htmlentities()"
    if finding.kind.value == "sqli":
        return "use parameterized queries: $wpdb->prepare() with placeholders"
    if finding.kind.value == "cmdi":
        return "quote shell arguments with escapeshellarg()"
    if finding.kind.value == "lfi":
        return "whitelist the include target or apply basename()"
    return "validate and sanitize the input"


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------


def to_json(report: ToolReport, indent: Optional[int] = 1) -> str:
    """Machine-readable report (stable schema for CI pipelines)."""
    document = {
        "tool": report.tool,
        "plugin": report.plugin,
        "files_analyzed": report.files_analyzed,
        "loc_analyzed": report.loc_analyzed,
        "seconds": round(report.seconds, 4),
        "findings": [
            {
                "kind": finding.kind.value,
                "file": finding.file,
                "line": finding.line,
                "sink": finding.sink,
                "variable": finding.variable,
                "vectors": [vector.value for vector in finding.vectors],
                "via_oop": finding.via_oop,
                "trace": list(finding.trace),
                "fix_hint": fix_hint(finding),
            }
            for finding in sorted_findings(report)
        ],
        "failures": [
            {
                "file": failure.file,
                "reason": failure.reason,
                "is_error": failure.is_error,
                "completed": failure.completed,
            }
            for failure in report.failures
        ],
        "incidents": [incident.to_dict() for incident in report.incidents],
        "files_skipped": report.files_skipped,
        "loc_skipped": report.loc_skipped,
        "coverage": round(report.coverage, 4),
    }
    return json.dumps(document, indent=indent)


# ---------------------------------------------------------------------------
# Plain text
# ---------------------------------------------------------------------------


def to_text(report: ToolReport) -> str:
    """Terminal-friendly review summary."""
    lines = [
        f"{report.tool} report for {report.plugin}",
        f"  {report.files_analyzed} files, {report.loc_analyzed} LOC, "
        f"{len(report.findings)} finding(s), "
        f"{len(report.failed_files)} failed file(s)",
        "",
    ]
    for finding in sorted_findings(report):
        lines.append(f"  {finding.describe()}")
        for step in finding.trace:
            lines.append(f"      {step}")
        lines.append(f"      fix: {fix_hint(finding)}")
        lines.append("")
    for failure in report.failures:
        lines.append(f"  ! {failure.file}: {failure.reason}")
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# HTML (the web-interface analogue)
# ---------------------------------------------------------------------------

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: system-ui, sans-serif; margin: 2em; color: #222; }}
h1 {{ font-size: 1.4em; }} h2 {{ font-size: 1.1em; margin-top: 1.6em; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{ border: 1px solid #ccc; padding: 4px 8px; text-align: left;
          font-size: 0.92em; vertical-align: top; }}
th {{ background: #f0f0f0; }}
.kind-sqli {{ color: #a00; font-weight: bold; }}
.kind-xss {{ color: #c60; font-weight: bold; }}
.kind-cmdi {{ color: #909; font-weight: bold; }}
.kind-lfi {{ color: #069; font-weight: bold; }}
.trace {{ color: #555; font-size: 0.85em; }}
.hint {{ color: #060; font-size: 0.88em; }}
code {{ background: #f6f6f6; padding: 1px 4px; }}
.snippet {{ background: #fbfbfb; border-left: 3px solid #c60;
            padding: 4px 8px; font-family: monospace; white-space: pre;
            font-size: 0.85em; overflow-x: auto; }}
.failure {{ color: #a00; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p>{summary}</p>
{findings_section}
{failures_section}
{variables_section}
</body>
</html>
"""


def _escape(text: object) -> str:
    return html.escape(str(text), quote=True)


def _source_snippet(plugin: Optional[Plugin], finding: Finding, context: int = 2) -> str:
    if plugin is None or finding.file not in plugin.files:
        return ""
    lines = plugin.files[finding.file].splitlines()
    start = max(0, finding.line - 1 - context)
    end = min(len(lines), finding.line + context)
    rendered = []
    for index in range(start, end):
        marker = "&#9658; " if index == finding.line - 1 else "  "
        rendered.append(f"{marker}{index + 1:4d}  {_escape(lines[index])}")
    return '<div class="snippet">' + "\n".join(rendered) + "</div>"


def to_html(report: ToolReport, plugin: Optional[Plugin] = None) -> str:
    """A self-contained review page.

    Passing the analyzed ``plugin`` adds source snippets around each
    sink — "the entry point of the vulnerability in the source code".
    """
    title = f"{report.tool} — {report.plugin}"
    summary = (
        f"{report.files_analyzed} files, {report.loc_analyzed} LOC analyzed in "
        f"{report.seconds:.2f}s — <b>{len(report.findings)} finding(s)</b>, "
        f"{len(report.failed_files)} file(s) not analyzed."
    )

    rows = []
    for finding in sorted_findings(report):
        trace_html = "<br>".join(_escape(step) for step in finding.trace)
        vectors = ", ".join(vector.value for vector in finding.vectors)
        rows.append(
            "<tr>"
            f'<td class="kind-{finding.kind.value}">{_escape(finding.kind)}</td>'
            f"<td><code>{_escape(finding.file)}:{finding.line}</code>"
            f"{_source_snippet(plugin, finding)}</td>"
            f"<td><code>{_escape(finding.sink)}</code></td>"
            f"<td>{_escape(finding.variable)}</td>"
            f"<td>{_escape(vectors)}{' (OOP)' if finding.via_oop else ''}</td>"
            f'<td><div class="trace">{trace_html}</div>'
            f'<div class="hint">fix: {_escape(fix_hint(finding))}</div></td>'
            "</tr>"
        )
    if rows:
        findings_section = (
            "<h2>Findings</h2><table><tr><th>Kind</th><th>Location</th>"
            "<th>Sink</th><th>Variable</th><th>Input vector</th>"
            "<th>Data flow &amp; fix</th></tr>" + "".join(rows) + "</table>"
        )
    else:
        findings_section = "<h2>Findings</h2><p>No vulnerabilities detected.</p>"

    if report.failures:
        failure_items = "".join(
            f'<li class="failure"><code>{_escape(f.file)}</code>: '
            f"{_escape(f.reason)}</li>"
            for f in report.failures
        )
        failures_section = f"<h2>Files not analyzed</h2><ul>{failure_items}</ul>"
    else:
        failures_section = ""

    if report.variables:
        variable_rows = "".join(
            "<tr>"
            f"<td><code>${_escape(name)}</code></td>"
            f"<td>{'tainted' if not record.taint.is_clean() else 'clean'}</td>"
            f"<td><code>{_escape(record.file)}:{record.line}</code></td>"
            "</tr>"
            for name, record in sorted(report.variables.items())
        )
        variables_section = (
            "<h2>Variables (parser_variables dump)</h2>"
            "<table><tr><th>Variable</th><th>State</th><th>Last write</th></tr>"
            + variable_rows
            + "</table>"
        )
    else:
        variables_section = ""

    return _PAGE_TEMPLATE.format(
        title=_escape(title),
        summary=summary,
        findings_section=findings_section,
        failures_section=failures_section,
        variables_section=variables_section,
    )


def coverage_summary(plugin: Plugin) -> Dict[str, object]:
    """Static-coverage facts for a plugin (CFG-based).

    phpSAFE's selling point over dynamic analysis is 100% code coverage
    (Section II); this summarizes what "all the code" means for a
    plugin: functions, methods, entry points and acyclic path counts.
    """
    from ..php.cfg import build_file_cfgs

    model = PluginModel.build(plugin)
    functions = len([f for f in model.functions.values() if not f.is_method])
    methods = len([f for f in model.functions.values() if f.is_method])
    uncalled = len(model.uncalled_functions())
    paths = 0
    dead_blocks = 0
    for file_model in model.files.values():
        for cfg in build_file_cfgs(file_model.tree).values():
            paths += cfg.path_count(limit=100_000)
            dead_blocks += len(cfg.unreachable_blocks())
    return {
        "files": len(model.files),
        "loc": model.total_loc,
        "functions": functions,
        "methods": methods,
        "entry_points_never_called": uncalled,
        "acyclic_paths": paths,
        "dead_blocks": dead_blocks,
    }

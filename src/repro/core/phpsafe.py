"""The phpSAFE facade: the paper's single ``PHP-SAFE`` class.

"Since phpSAFE is developed in OOP, its functions become accessible
through the instantiation of a single PHP class called PHP-SAFE, which
receives as input the PHP file to be analyzed and delivers the results
in the properties of the object instantiated from the PHP-SAFE class."
(Section III) — this module is that class, in Python: construct a
:class:`PhpSafe` (optionally customizing the profile or feature flags),
call :meth:`analyze` on a plugin or :meth:`analyze_source` on a single
file, read the findings off the returned report.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from ..config.profiles import AnalyzerProfile, generic_php, wordpress
from ..incidents import Incident, IncidentSeverity, IncidentStage
from ..perf import counters, derive
from ..plugin import Plugin
from .cache import ModelCache, summary_key
from .engine import EngineOptions, TaintEngine, summary_is_valid
from .model import PluginModel
from .results import FileFailure, Finding, ToolReport
from .tool import AnalyzerTool


@dataclass
class PhpSafeOptions:
    """Feature flags — also the ablation knobs of experiment A1."""

    #: Load the WordPress-specific configuration (sources/filters/sinks
    #: and known instances like ``$wpdb``) on top of generic PHP.
    wordpress_config: bool = True
    #: Named base profile (``wordpress``, ``drupal``, ``joomla``,
    #: ``generic``); ``None`` keeps the legacy ``wordpress_config``
    #: switch semantics.  Resolved through ``repro.rules``.
    profile_name: Optional[str] = None
    #: Rule packs layered onto the base profile: shipped pack names
    #: (``ssrf``) or filesystem paths.  Pack content hashes flow into
    #: the profile fingerprint, hence into every cache key.
    rule_packs: Tuple[str, ...] = ()
    #: Parse OOP constructs: properties, methods, ``new``, ``$this``.
    oop: bool = True
    #: Analyze functions never called from plugin code (entry points).
    analyze_uncalled: bool = True
    #: Memoize function summaries (parse each function only once).
    use_summaries: bool = True
    #: Cumulative include-closure budget per file, in source bytes;
    #: reproduces the paper's memory-exhaustion failures (Section V.E).
    include_budget: int = 120_000
    #: Fault-tolerant pipeline (Section V.E): panic-mode lexer/parser
    #: recovery plus per-unit engine isolation.  ``False`` (the CLI's
    #: ``--strict``) reproduces the historical all-or-nothing behaviour.
    recover: bool = True
    #: Per-file wall-clock deadline, in seconds, for the serial path
    #: (the batch path gets its timeout from SIGALRM).  Only honoured
    #: with ``recover=True``; overrides ``engine.unit_deadline``.
    file_deadline: Optional[float] = None
    #: Run the taint fixed-point over lowered linear IR instead of
    #: re-walking the AST (same findings, ~2x faster analysis; the
    #: difftest ``ir`` axis enforces signature equality).  ``False``
    #: (the CLI's ``--no-ir``) selects the reference AST interpreter.
    use_ir: bool = True
    #: Drop token lists from FileModels as soon as their trees exist
    #: (streaming scans; roughly halves the per-file model footprint).
    #: Tokens feed nothing after parse, so findings are unaffected.
    spill_tokens: bool = False
    engine: EngineOptions = field(default_factory=EngineOptions)


#: Process-wide L1 artifact cache: parse models, lowered IR and function
#: summaries, shared by every tool constructed without an explicit cache
#: (the ``re`` module's compiled-pattern cache is the model).  Safe to
#: share because every tier is content-addressed — model slots key on
#: path + source digest + parse variant, and IR/summary slots embed the
#: analyzer-configuration fingerprint — so two tools can only ever hit
#: the same slot when they would have computed the identical artifact.
#: Created lazily so importing the module costs nothing; bounded LRU so
#: long-lived processes (serve daemons, fleet workers) cannot grow it
#: without limit.
_PROCESS_CACHE: Optional[ModelCache] = None
_PROCESS_CACHE_ENTRIES = 512
#: Byte ceiling for the shared cache.  Entry counts alone are a poor
#: bound — 512 slots of multi-MB FileModels is gigabytes — so the cache
#: also evicts by approximate heap bytes, whichever cap trips first.
#: 256 MB keeps a warm fleet worker's artifact set resident while
#: guaranteeing long-lived daemons cannot leak models across jobs.
_PROCESS_CACHE_MAX_BYTES = 256 * 1024 * 1024


def process_cache() -> ModelCache:
    """The shared per-process artifact cache (created on first use)."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = ModelCache(
            max_entries=_PROCESS_CACHE_ENTRIES,
            max_bytes=_PROCESS_CACHE_MAX_BYTES,
        )
    return _PROCESS_CACHE


def process_cache_occupancy() -> Dict[str, object]:
    """Occupancy snapshot of the process cache for telemetry.

    Returns the cache's entry/byte usage against both caps without
    forcing the cache into existence — an untouched process reports
    zero occupancy.
    """
    if _PROCESS_CACHE is None:
        return {
            "entries": 0,
            "max_entries": _PROCESS_CACHE_ENTRIES,
            "bytes": 0,
            "max_bytes": _PROCESS_CACHE_MAX_BYTES,
            "evictions": 0,
            "byte_evictions": 0,
            "oversized": 0,
        }
    return _PROCESS_CACHE.occupancy()


class PhpSafe(AnalyzerTool):
    """phpSAFE: OOP-aware XSS/SQLi static analyzer for PHP plugins."""

    name = "phpSAFE"

    def __init__(
        self,
        profile: Optional[AnalyzerProfile] = None,
        options: Optional[PhpSafeOptions] = None,
        cache: Optional[ModelCache] = None,
        cache_dir: Optional[str] = None,
        use_process_cache: bool = True,
    ) -> None:
        self.options = options or PhpSafeOptions()
        if cache is None and cache_dir is not None:
            # late import: the batch subsystem builds on top of core
            from ..batch.diskcache import DiskModelCache

            cache = DiskModelCache(cache_dir)
        if cache is None and use_process_cache:
            cache = process_cache()
        #: cross-run parse cache (Section VI performance work);
        #: ``cache_dir`` selects the disk-persistent variant, the default
        #: is the process-wide L1, ``use_process_cache=False`` disables
        #: caching entirely (cold-measurement harnesses)
        self.cache = cache
        if profile is not None:
            self.profile = profile
        elif self.options.profile_name or self.options.rule_packs:
            # late import: rules builds on config, core builds on both
            from ..rules import resolve_profile

            self.profile = resolve_profile(self.options)
        elif self.options.wordpress_config:
            self.profile = wordpress()
        else:
            self.profile = generic_php()

    def _summary_fingerprint(self, engine_options: EngineOptions) -> str:
        """Configuration identity of the persistent summary cache: the
        knowledge base plus every engine option that changes what a
        function summary contains.  Resource budgets are excluded — a
        summary is the same analysis result regardless of how much
        budget was left when it was computed (faulted placeholder
        summaries are never persisted)."""
        spec = (
            # evaluator tag: IR and AST runs must never share cached
            # summaries, rescan manifests, or lowered-IR entries — the
            # results are identical by contract, but a shared namespace
            # would mask an evaluator divergence instead of surfacing it
            "ir" if self.options.use_ir else "ast",
            self.profile.fingerprint(),
            engine_options.oop,
            engine_options.analyze_uncalled,
            engine_options.analyze_methods_standalone,
            engine_options.recover,
            tuple(sorted(kind.value for kind in engine_options.construct_kinds)),
            engine_options.unknown_call_policy,
            engine_options.max_include_depth,
            engine_options.max_trace,
        )
        return hashlib.sha256(repr(spec).encode("utf-8")).hexdigest()[:16]

    def _preload_summaries(
        self,
        engine: TaintEngine,
        model: PluginModel,
        fingerprint: str,
        digests: Dict[str, str],
    ) -> Set[str]:
        """Install valid cross-run summaries before the engine runs.

        A hit must survive dependency validation: every file the summary
        was computed from still has the same content, and every lookup
        that found nothing still finds nothing."""
        preloaded: Set[str] = set()
        for key, info in model.functions.items():
            digest = digests.get(info.file)
            if not digest:
                continue
            cached = self.cache.lookup_summary(summary_key(fingerprint, key, digest))
            if cached is None:
                counters.summary_cache_misses += 1
                continue
            if not summary_is_valid(cached, model, digests):
                self.cache.summary_stats.stale += 1
                counters.summary_cache_stale += 1
                continue
            engine.preload_summary(cached)
            preloaded.add(key)
            counters.summary_cache_hits += 1
        return preloaded

    def _store_summaries(
        self,
        engine: TaintEngine,
        model: PluginModel,
        fingerprint: str,
        digests: Dict[str, str],
        preloaded: Set[str],
    ) -> None:
        """Persist the summaries this run computed, pinned to the
        content digests of every file they depend on."""
        for key, summary in engine.summaries.items():
            if (
                key in preloaded
                or summary.faulted
                or summary.uses_globals
                or summary.uses_statics
            ):
                continue
            info = model.functions.get(key)
            if info is None:
                continue
            digest = digests.get(info.file)
            if not digest:
                continue
            dep_digests: Dict[str, str] = {}
            for path in summary.dep_files:
                dep_digest = digests.get(path)
                if not dep_digest:
                    break
                dep_digests[path] = dep_digest
            else:
                summary.dep_digests = dep_digests
                self.cache.store_summary(
                    summary_key(fingerprint, key, digest), summary
                )

    def _engine_options(
        self,
        track_units: bool = False,
        reuse_roots: FrozenSet[str] = frozenset(),
    ) -> EngineOptions:
        unit_deadline = self.options.engine.unit_deadline
        if self.options.file_deadline is not None:
            unit_deadline = self.options.file_deadline
        return EngineOptions(
            oop=self.options.oop,
            analyze_uncalled=self.options.analyze_uncalled,
            analyze_methods_standalone=True,
            use_summaries=self.options.use_summaries,
            recover=self.options.recover,
            unit_deadline=unit_deadline,
            track_units=track_units,
            reuse_roots=reuse_roots,
            **{
                key: getattr(self.options.engine, key)
                for key in (
                    "step_budget",
                    "max_include_depth",
                    "max_trace",
                    "unit_step_budget",
                    "max_eval_depth",
                )
            },
        )

    def analyze(self, plugin: Plugin) -> ToolReport:
        """Run the four stages on every file of ``plugin``."""
        report, _model, _engine = self._scan(plugin, self._engine_options())
        return report

    def _scan(
        self,
        plugin: Plugin,
        engine_options: EngineOptions,
        model: Optional[PluginModel] = None,
        carried: Sequence[Finding] = (),
    ) -> Tuple[ToolReport, PluginModel, TaintEngine]:
        """The shared scan core behind :meth:`analyze` and
        :meth:`rescan`: build (or accept) the model, run the engine,
        shape the report.  ``carried`` findings from a prior manifest
        are min-merged with the live ones before deduplication."""
        perf_before = counters.snapshot()
        report = ToolReport(tool=self.name, plugin=plugin.slug)
        if model is None:
            model = PluginModel.build(
                plugin,
                include_budget=self.options.include_budget,
                cache=self.cache,
                recover=self.options.recover,
                spill_tokens=self.options.spill_tokens,
            )
        # unrecoverable skips keep their historical FileFailure shape so
        # the Section V.E robustness tables are unchanged
        for path, error in sorted(model.parse_failures.items()):
            report.failures.append(
                FileFailure(file=path, reason=str(error), is_error=False)
            )
        for path, error in sorted(model.budget_failures.items()):
            report.failures.append(
                FileFailure(file=path, reason=str(error), is_error=False)
            )
        fingerprint = ""
        if self.cache is not None:
            fingerprint = self._summary_fingerprint(engine_options)
        if self.options.use_ir:
            # late import: the IR evaluator builds on top of the engine
            from .ir import IRTaintEngine

            engine: TaintEngine = IRTaintEngine(
                model,
                self.profile,
                engine_options,
                ir_store=self.cache,
                ir_fingerprint=fingerprint,
            )
        else:
            engine = TaintEngine(model, self.profile, engine_options)
        use_summary_cache = self.cache is not None and engine_options.use_summaries
        digests: Dict[str, str] = {}
        preloaded: Set[str] = set()
        if use_summary_cache:
            digests = model.file_digests()
            preloaded = self._preload_summaries(engine, model, fingerprint, digests)
        live = engine.run()
        if carried:
            merged = TaintEngine.dedupe_findings(list(live) + list(carried))
        else:
            merged = live
        for finding in merged:
            report.add_finding(finding)
        if use_summary_cache:
            self._store_summaries(engine, model, fingerprint, digests, preloaded)
        report.incidents = list(model.incidents) + list(engine.incidents)
        # recovered incidents map to "error message but analysis
        # completed" failures (the Pixy column of the paper's table)
        for incident in report.incidents:
            if incident.recovered:
                report.failures.append(
                    FileFailure(
                        file=incident.file,
                        reason=incident.describe(),
                        is_error=True,
                        completed=True,
                    )
                )
        if engine.aborted:
            report.failures.append(
                FileFailure(
                    file="<plugin>",
                    reason="analysis step budget exhausted",
                    is_error=True,
                )
            )
            if not any(
                incident.severity is IncidentSeverity.FATAL
                for incident in report.incidents
            ):
                report.incidents.append(
                    Incident(
                        stage=IncidentStage.ANALYSIS,
                        severity=IncidentSeverity.FATAL,
                        file="<plugin>",
                        reason="analysis step budget exhausted",
                        recovered=False,
                    )
                )
        report.files_analyzed = len(model.files)
        report.loc_analyzed = model.total_loc
        report.files_skipped = len(model.parse_failures) + len(model.budget_failures)
        report.loc_skipped = sum(model.skipped_loc.values())
        # reviewer resources (paper Section III.D): final variable dump
        report.variables = dict(engine.globals.records)
        # per-run observability: counter deltas plus derived rates
        report.perf = counters.since(perf_before)
        report.perf.update(derive(report.perf))
        return report, model, engine

    def rescan(
        self, plugin: Plugin, manifest: Optional[Dict[str, object]] = None
    ) -> "Tuple[ToolReport, Dict[str, object], RescanStats]":
        """Diff-aware scan against a prior manifest.

        Returns ``(report, new_manifest, stats)``.  With no (usable)
        manifest this is a full scan that additionally records unit
        footprints; with one, roots whose file digest, dependency set,
        and state couplings are unchanged are skipped and their
        findings carried forward — then re-validated against the
        executed units' actual footprints, falling back to a full
        tracked scan on any violation.  The report's finding set is
        identical to a cold :meth:`analyze` either way (``difftest``
        enforces this); only ``report.variables`` may omit entries a
        skipped unit would have written.
        """
        from .incremental import (
            RescanStats,
            build_manifest,
            carried_findings,
            plan_rescan,
            plugin_file_digests,
            validate_rescan,
        )

        digests = plugin_file_digests(plugin)
        base_options = self._engine_options(track_units=True)
        fingerprint = self._summary_fingerprint(base_options)
        model = PluginModel.build(
            plugin,
            include_budget=self.options.include_budget,
            cache=self.cache,
            recover=self.options.recover,
            spill_tokens=self.options.spill_tokens,
        )
        if self.options.recover:
            plan = plan_rescan(manifest, fingerprint, digests, model)
        else:
            # the skip machinery works on recover-mode analysis units
            plan = plan_rescan(None, fingerprint, digests, model)
            plan.reason = "strict mode has no skippable units"
        stats = RescanStats(
            changed_files=sorted(plan.changed_files),
            fallback_reason="",
        )
        if not plan.full and manifest is not None:
            options = self._engine_options(
                track_units=True, reuse_roots=plan.reuse_roots
            )
            report, model, engine = self._scan(
                plugin,
                options,
                model=model,
                carried=carried_findings(manifest, plan.reuse_roots),
            )
            violation = validate_rescan(manifest, plan, engine, model)
            if violation is None:
                new_manifest = build_manifest(
                    fingerprint,
                    digests,
                    engine,
                    prior=manifest,
                    reuse_roots=plan.reuse_roots,
                )
                stats.roots_total = len(new_manifest["roots"])  # type: ignore[arg-type]
                stats.roots_reused = len(plan.reuse_roots)
                return report, new_manifest, stats
            stats.fallback_reason = violation
        elif plan.reason:
            stats.fallback_reason = plan.reason
        report, model, engine = self._scan(plugin, base_options, model=model)
        new_manifest = build_manifest(fingerprint, digests, engine)
        stats.roots_total = len(new_manifest["roots"])  # type: ignore[arg-type]
        stats.roots_reused = 0
        return report, new_manifest, stats

    def analyze_source(self, source: str, filename: str = "input.php") -> ToolReport:
        """Convenience: analyze a single PHP source string."""
        plugin = Plugin(name=filename, files={filename: source})
        return self.analyze(plugin)

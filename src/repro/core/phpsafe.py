"""The phpSAFE facade: the paper's single ``PHP-SAFE`` class.

"Since phpSAFE is developed in OOP, its functions become accessible
through the instantiation of a single PHP class called PHP-SAFE, which
receives as input the PHP file to be analyzed and delivers the results
in the properties of the object instantiated from the PHP-SAFE class."
(Section III) — this module is that class, in Python: construct a
:class:`PhpSafe` (optionally customizing the profile or feature flags),
call :meth:`analyze` on a plugin or :meth:`analyze_source` on a single
file, read the findings off the returned report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config.profiles import AnalyzerProfile, generic_php, wordpress
from ..incidents import Incident, IncidentSeverity, IncidentStage
from ..plugin import Plugin
from .cache import ModelCache
from .engine import EngineOptions, TaintEngine
from .model import PluginModel
from .results import FileFailure, ToolReport
from .tool import AnalyzerTool


@dataclass
class PhpSafeOptions:
    """Feature flags — also the ablation knobs of experiment A1."""

    #: Load the WordPress-specific configuration (sources/filters/sinks
    #: and known instances like ``$wpdb``) on top of generic PHP.
    wordpress_config: bool = True
    #: Parse OOP constructs: properties, methods, ``new``, ``$this``.
    oop: bool = True
    #: Analyze functions never called from plugin code (entry points).
    analyze_uncalled: bool = True
    #: Memoize function summaries (parse each function only once).
    use_summaries: bool = True
    #: Cumulative include-closure budget per file, in source bytes;
    #: reproduces the paper's memory-exhaustion failures (Section V.E).
    include_budget: int = 120_000
    #: Fault-tolerant pipeline (Section V.E): panic-mode lexer/parser
    #: recovery plus per-unit engine isolation.  ``False`` (the CLI's
    #: ``--strict``) reproduces the historical all-or-nothing behaviour.
    recover: bool = True
    #: Per-file wall-clock deadline, in seconds, for the serial path
    #: (the batch path gets its timeout from SIGALRM).  Only honoured
    #: with ``recover=True``; overrides ``engine.unit_deadline``.
    file_deadline: Optional[float] = None
    engine: EngineOptions = field(default_factory=EngineOptions)


class PhpSafe(AnalyzerTool):
    """phpSAFE: OOP-aware XSS/SQLi static analyzer for PHP plugins."""

    name = "phpSAFE"

    def __init__(
        self,
        profile: Optional[AnalyzerProfile] = None,
        options: Optional[PhpSafeOptions] = None,
        cache: Optional[ModelCache] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.options = options or PhpSafeOptions()
        if cache is None and cache_dir is not None:
            # late import: the batch subsystem builds on top of core
            from ..batch.diskcache import DiskModelCache

            cache = DiskModelCache(cache_dir)
        #: optional cross-run parse cache (Section VI performance work);
        #: ``cache_dir`` selects the disk-persistent variant
        self.cache = cache
        if profile is not None:
            self.profile = profile
        elif self.options.wordpress_config:
            self.profile = wordpress()
        else:
            self.profile = generic_php()

    def analyze(self, plugin: Plugin) -> ToolReport:
        """Run the four stages on every file of ``plugin``."""
        report = ToolReport(tool=self.name, plugin=plugin.slug)
        model = PluginModel.build(
            plugin,
            include_budget=self.options.include_budget,
            cache=self.cache,
            recover=self.options.recover,
        )
        # unrecoverable skips keep their historical FileFailure shape so
        # the Section V.E robustness tables are unchanged
        for path, error in sorted(model.parse_failures.items()):
            report.failures.append(
                FileFailure(file=path, reason=str(error), is_error=False)
            )
        for path, error in sorted(model.budget_failures.items()):
            report.failures.append(
                FileFailure(file=path, reason=str(error), is_error=False)
            )
        unit_deadline = self.options.engine.unit_deadline
        if self.options.file_deadline is not None:
            unit_deadline = self.options.file_deadline
        engine_options = EngineOptions(
            oop=self.options.oop,
            analyze_uncalled=self.options.analyze_uncalled,
            analyze_methods_standalone=True,
            use_summaries=self.options.use_summaries,
            recover=self.options.recover,
            unit_deadline=unit_deadline,
            **{
                key: getattr(self.options.engine, key)
                for key in (
                    "step_budget",
                    "max_include_depth",
                    "max_trace",
                    "unit_step_budget",
                    "max_eval_depth",
                )
            },
        )
        engine = TaintEngine(model, self.profile, engine_options)
        for finding in engine.run():
            report.add_finding(finding)
        report.incidents = list(model.incidents) + list(engine.incidents)
        # recovered incidents map to "error message but analysis
        # completed" failures (the Pixy column of the paper's table)
        for incident in report.incidents:
            if incident.recovered:
                report.failures.append(
                    FileFailure(
                        file=incident.file,
                        reason=incident.describe(),
                        is_error=True,
                        completed=True,
                    )
                )
        if engine.aborted:
            report.failures.append(
                FileFailure(
                    file="<plugin>",
                    reason="analysis step budget exhausted",
                    is_error=True,
                )
            )
            if not any(
                incident.severity is IncidentSeverity.FATAL
                for incident in report.incidents
            ):
                report.incidents.append(
                    Incident(
                        stage=IncidentStage.ANALYSIS,
                        severity=IncidentSeverity.FATAL,
                        file="<plugin>",
                        reason="analysis step budget exhausted",
                        recovered=False,
                    )
                )
        report.files_analyzed = len(model.files)
        report.loc_analyzed = model.total_loc
        report.files_skipped = len(model.parse_failures) + len(model.budget_failures)
        report.loc_skipped = sum(model.skipped_loc.values())
        # reviewer resources (paper Section III.D): final variable dump
        report.variables = dict(engine.globals.records)
        return report

    def analyze_source(self, source: str, filename: str = "input.php") -> ToolReport:
        """Convenience: analyze a single PHP source string."""
        plugin = Plugin(name=filename, files={filename: source})
        return self.analyze(plugin)

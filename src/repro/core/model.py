"""Model-construction stage (paper Section III.B).

Builds, per plugin: the token stream and AST of every file, the table of
all user-defined functions and their parameters, the class table (with
inheritance links), the set of *called* function names, and the include
graph.  From these it derives the list of functions "that are not called
from the code of the plugin" — which phpSAFE analyzes anyway, "as they
may be directly called from the main application".

The stage also enforces the per-file analysis budget that reproduces the
paper's robustness observations: files whose include closure is too
large make phpSAFE "unable to analyze" them (Section V.E).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..incidents import Incident, IncidentSeverity, IncidentStage
from ..perf import counters
from ..php import ast_nodes as ast
from ..php.errors import AnalysisBudgetExceeded, PhpParseError, PhpSyntaxError
from ..php.lexer import Lexer, count_loc
from ..php.parser import Parser
from ..php.tokens import Token
from ..plugin import Plugin


@dataclass
class FunctionInfo:
    """A user-defined function or method known to the model."""

    key: str  # lower-cased name, or "class::method"
    name: str
    params: List[ast.Param]
    body: List[ast.Statement]
    file: str
    line: int
    class_name: Optional[str] = None
    visibility: str = "public"
    static: bool = False

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """A user-defined class and its members."""

    name: str
    decl: ast.ClassDecl
    file: str
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    parent: Optional[str] = None

    @property
    def property_names(self) -> List[str]:
        return [prop.name for prop in self.decl.properties]


@dataclass
class FileModel:
    """One parsed file of the plugin."""

    path: str
    source: str
    tokens: List[Token]
    tree: ast.PhpFile
    loc: int
    includes: List[str] = field(default_factory=list)
    #: recovered lex/parse incidents from panic-mode recovery; kept on
    #: the file model so cache hits replay them into the plugin model
    incidents: List[Incident] = field(default_factory=list)
    #: sha256 of ``source`` — the identity the incremental summary cache
    #: validates function-summary dependencies against
    digest: str = ""
    #: single-pass node index (:func:`repro.php.ast_nodes.index_file`);
    #: cached with the model so cache hits skip the tree traversal.
    #: ``None`` on models unpickled from older stores — recomputed lazily.
    index: Optional[ast.FileIndex] = None


class PluginModel:
    """The complete model of a plugin, ready for the analysis stage."""

    def __init__(self, plugin: Plugin) -> None:
        self.plugin = plugin
        self.files: Dict[str, FileModel] = {}
        self.parse_failures: Dict[str, PhpSyntaxError] = {}
        #: files skipped because their include closure blew the budget —
        #: a model-stage resource incident, distinct from syntax errors
        self.budget_failures: Dict[str, AnalysisBudgetExceeded] = {}
        #: LOC of every skipped file, for coverage accounting
        self.skipped_loc: Dict[str, int] = {}
        #: typed robustness incidents from every stage of model building
        self.incidents: List[Incident] = []
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.called_names: Set[str] = set()
        self.called_methods: Set[str] = set()

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        plugin: Plugin,
        include_budget: int = 400_000,
        cache=None,
        recover: bool = False,
        spill_tokens: bool = False,
    ) -> "PluginModel":
        """Parse every file and collect the model tables.

        ``include_budget`` caps the cumulative source size (in bytes) of
        a file plus its transitive includes; exceeding it records the
        file as an analysis failure (the phpSAFE memory-exhaustion
        behaviour of Section V.E).  ``cache`` is an optional
        :class:`~repro.core.cache.ModelCache` that skips re-parsing
        unchanged files across runs.  ``recover=True`` enables
        panic-mode lexer/parser recovery: a file with a localized syntax
        error still yields a partial model, with each repair recorded in
        :attr:`incidents`.  ``spill_tokens=True`` drops each file's
        token list once its tree is built — tokens are a parse
        by-product no downstream stage reads, and they carry roughly
        half a FileModel's heap footprint, so streaming scans spill them
        eagerly (the tree itself cannot be spilled mid-run: function
        bodies and include execution hold references into it).
        """
        model = cls(plugin)
        variant = "recover" if recover else ""
        for path, source in plugin.iter_files():
            digest = hashlib.sha256(source.encode("utf-8", "replace")).hexdigest()
            if cache is not None:
                cached, cached_error = cache.lookup(path, source, variant)
                if cached_error is not None:
                    model._record_parse_failure(path, source, cached_error)
                    continue
                if cached is not None:
                    if not getattr(cached, "digest", ""):
                        cached.digest = digest  # entry from a pre-digest store
                    if spill_tokens and getattr(cached, "tokens", None):
                        cached.tokens = []  # shared entry; safe, see above
                    model.files[path] = cached  # type: ignore[assignment]
                    model.incidents.extend(getattr(cached, "incidents", []))
                    continue
            try:
                lexer = Lexer(source, path, recover=recover, significant=True)
                tokens = lexer.tokenize()
                parse_start = time.perf_counter()
                parser = Parser(tokens, path, recover=recover)
                tree = parser.parse_file()
                counters.parse_seconds += time.perf_counter() - parse_start
                counters.files_parsed += 1
                file_incidents = lexer.incidents + parser.incidents
            except PhpSyntaxError as error:
                model._record_parse_failure(path, source, error)
                if cache is not None:
                    cache.store_failure(path, source, error, variant)
                continue
            except Exception as error:  # includes RecursionError
                if not recover:
                    raise
                # fault boundary: an unexpected crash inside the PHP
                # substrate degrades to a skipped file, not a dead run
                wrapped = PhpParseError(
                    f"internal parser error: {error!r}", path, 0
                )
                model._record_parse_failure(path, source, wrapped)
                if cache is not None:
                    cache.store_failure(path, source, wrapped, variant)
                continue
            index = ast.index_file(tree)
            if spill_tokens:
                tokens = []  # spilled before caching: the byte-size
                # accounting and the persisted object both see the
                # token-free footprint
            file_model = FileModel(
                path=path,
                source=source,
                tokens=tokens,
                tree=tree,
                loc=count_loc(source),
                includes=_collect_includes(index),
                incidents=file_incidents,
                digest=digest,
                index=index,
            )
            model.files[path] = file_model
            model.incidents.extend(file_incidents)
            if cache is not None:
                cache.store(path, source, file_model, variant)
        model._check_include_budgets(include_budget)
        model._collect_definitions()
        return model

    def _record_parse_failure(
        self, path: str, source: str, error: PhpSyntaxError
    ) -> None:
        """A file the substrate could not process at all: skip it."""
        self.parse_failures[path] = error
        self.skipped_loc[path] = count_loc(source)
        stage = (
            IncidentStage.LEX
            if getattr(error, "stage", "parse") == "lex"
            else IncidentStage.PARSE
        )
        self.incidents.append(
            Incident(
                stage=stage,
                severity=IncidentSeverity.ERROR,
                file=path,
                reason=getattr(error, "message", str(error)),
                recovered=False,
                line=getattr(error, "line", 0),
            )
        )

    def _check_include_budgets(self, budget: int) -> None:
        """Fail files whose transitive include closure exceeds budget.

        All closure sizes are computed against the full file set first,
        so a failing library also fails every file that includes it."""
        sizes = {path: self._closure_size(path, set()) for path in self.files}
        for path, size in sizes.items():
            if size > budget:
                error = AnalysisBudgetExceeded(path, budget, size)
                self.budget_failures[path] = error
                self.skipped_loc[path] = self.files[path].loc
                self.incidents.append(
                    Incident(
                        stage=IncidentStage.MODEL,
                        severity=IncidentSeverity.ERROR,
                        file=path,
                        reason=str(error),
                        recovered=False,
                    )
                )
                del self.files[path]

    def _closure_size(self, path: str, seen: Set[str]) -> int:
        if path in seen or path not in self.files:
            return 0
        seen.add(path)
        model = self.files[path]
        size = len(model.source)
        for include in model.includes:
            resolved = self.resolve_include(include, path)
            if resolved:
                size += self._closure_size(resolved, seen)
        return size

    def _collect_definitions(self) -> None:
        """Collect definitions and call sites from each file's node
        index (built in one traversal at parse time and cached with the
        file model, so cache hits skip the tree walk entirely)."""
        for path, file_model in self.files.items():
            index = getattr(file_model, "index", None)
            if index is None:  # model unpickled from a pre-index store
                index = file_model.index = ast.index_file(file_model.tree)
            self.called_names.update(index.called_names)
            self.called_methods.update(index.called_methods)
            for node in index.functions:
                info = FunctionInfo(
                    key=node.name.lower(),
                    name=node.name,
                    params=node.params,
                    body=node.body,
                    file=path,
                    line=node.line,
                )
                self.functions.setdefault(info.key, info)
            for node in index.classes:
                if node.kind not in ("class", "trait"):
                    continue
                class_info = ClassInfo(
                    name=node.name, decl=node, file=path, parent=node.parent
                )
                for method in node.methods:
                    if method.body is None:
                        continue
                    method_info = FunctionInfo(
                        key=f"{node.name.lower()}::{method.name.lower()}",
                        name=method.name,
                        params=method.params,
                        body=method.body,
                        file=path,
                        line=method.line,
                        class_name=node.name,
                        visibility=method.visibility,
                        static=method.static,
                    )
                    class_info.methods[method.name.lower()] = method_info
                    self.functions.setdefault(method_info.key, method_info)
                self.classes.setdefault(node.name.lower(), class_info)

    # -- queries ---------------------------------------------------------------

    def lookup_function(self, name: str) -> Optional[FunctionInfo]:
        return self.functions.get(name.lower())

    def lookup_class(self, name: str) -> Optional[ClassInfo]:
        return self.classes.get(name.lower())

    def resolve_method(self, class_name: str, method: str) -> Optional[FunctionInfo]:
        """Find ``method`` on ``class_name`` or its ancestors."""
        seen: Set[str] = set()
        current: Optional[str] = class_name
        while current and current.lower() not in seen:
            seen.add(current.lower())
            class_info = self.lookup_class(current)
            if class_info is None:
                return None
            info = class_info.methods.get(method.lower())
            if info is not None:
                return info
            # trait methods are looked up like inherited ones
            for trait in class_info.decl.uses:
                trait_info = self.lookup_class(trait)
                if trait_info and method.lower() in trait_info.methods:
                    return trait_info.methods[method.lower()]
            current = class_info.parent
        return None

    def uncalled_functions(self) -> List[FunctionInfo]:
        """Functions/methods never invoked from plugin code.

        These are plugin entry points (hooks, callbacks) the main
        application calls; phpSAFE analyzes them to reach 100% coverage
        (Section III.C) — "this is a feature that all tools prepared for
        analyzing plugins should have" (Section V.A).
        """
        out: List[FunctionInfo] = []
        for info in self.functions.values():
            if info.is_method:
                if info.name.lower() not in self.called_methods:
                    out.append(info)
            elif info.key not in self.called_names:
                out.append(info)
        return sorted(out, key=lambda info: (info.file, info.line))

    def resolve_include(self, raw_path: str, from_file: str) -> Optional[str]:
        """Map an include path to a plugin file, tolerating the common
        ``dirname(__FILE__) . '/x.php'`` and plain-relative idioms."""
        candidate = raw_path.replace("\\", "/").lstrip("/")
        base = os.path.dirname(from_file)
        options = [
            os.path.normpath(os.path.join(base, candidate)),
            os.path.normpath(candidate),
        ]
        for option in options:
            if option in self.files:
                return option
        basename = os.path.basename(candidate)
        matches = [path for path in self.files if os.path.basename(path) == basename]
        if len(matches) == 1:
            return matches[0]
        return None

    def file_digests(self) -> Dict[str, str]:
        """Content digest per analyzable file (summary-cache validation)."""
        return {
            path: file_model.digest
            for path, file_model in self.files.items()
            if file_model.digest
        }

    @property
    def total_loc(self) -> int:
        return sum(file_model.loc for file_model in self.files.values())


def _collect_includes(index: ast.FileIndex) -> List[str]:
    """Extract statically-resolvable include targets from a file index."""
    includes: List[str] = []
    for node in index.includes:
        target = _static_path(node.path)
        if target:
            includes.append(target)
    return includes


def _static_path(expr: Optional[ast.Expr]) -> Optional[str]:
    """Best-effort constant folding of include path expressions."""
    if expr is None:
        return None
    if isinstance(expr, ast.Literal) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.Binary) and expr.op == ".":
        left = _static_path(expr.left)
        right = _static_path(expr.right)
        if right is None:
            return None
        # `dirname(__FILE__) . '/inc.php'` — keep the literal tail
        return (left or "") + right
    if isinstance(expr, ast.FunctionCall) and expr.name in ("dirname", "plugin_dir_path"):
        return ""
    if isinstance(expr, ast.ConstFetch):
        return ""
    if isinstance(expr, ast.InterpolatedString):
        parts = [part.value for part in expr.parts if isinstance(part, ast.Literal)]
        if parts:
            return "".join(str(part) for part in parts)
    return None

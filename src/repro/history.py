"""Historic scan data and plugin approval (paper Section VI).

The paper's future work: "We also intend to study the evolution of
plugin security and plugin updates over time by enabling historic data
in phpSAFE.  Developers may use it for approving third-party plugins
before allowing their integration."  This module implements both:

- :class:`HistoryStore` — a JSON-backed archive of scan results; adding
  a scan of a new plugin version lets you diff findings across versions
  (new / fixed / persistent — the Section V.D inertia analysis, per
  plugin) and chart the security evolution over releases;
- :class:`ApprovalPolicy` — a configurable gate ("no SQLi, at most N
  XSS, no analysis failures") producing an auditable decision for the
  approve-before-integration workflow.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .config.vulnerability import VulnKind
from .core.results import Finding, ToolReport

#: Cross-version matching identity for a finding.  Line numbers shift
#: between releases, so findings match on (kind, file, sink, variable).
FindingKey = Tuple[str, str, str, str]


def finding_key(finding: Finding) -> FindingKey:
    return (finding.kind.value, finding.file, finding.sink, finding.variable)


@dataclass(frozen=True)
class ScanRecord:
    """One archived scan of one plugin version."""

    plugin: str
    version: str
    tool: str
    scanned_at: str  # ISO date supplied by the caller
    loc: int
    files: int
    findings: Tuple[dict, ...]
    failed_files: Tuple[str, ...] = ()

    @property
    def finding_keys(self) -> List[FindingKey]:
        return [
            (f["kind"], f["file"], f["sink"], f["variable"]) for f in self.findings
        ]

    def count(self, kind: Optional[VulnKind] = None) -> int:
        if kind is None:
            return len(self.findings)
        return sum(1 for f in self.findings if f["kind"] == kind.value)

    @classmethod
    def from_report(
        cls, report: ToolReport, version: str, scanned_at: str
    ) -> "ScanRecord":
        plugin_name = report.plugin.split("@", 1)[0]
        return cls(
            plugin=plugin_name,
            version=version,
            tool=report.tool,
            scanned_at=scanned_at,
            loc=report.loc_analyzed,
            files=report.files_analyzed,
            findings=tuple(
                {
                    "kind": f.kind.value,
                    "file": f.file,
                    "line": f.line,
                    "sink": f.sink,
                    "variable": f.variable,
                    "vectors": [v.value for v in f.vectors],
                    "via_oop": f.via_oop,
                }
                for f in report.findings
            ),
            failed_files=tuple(report.failed_files),
        )


@dataclass
class FindingsDiff:
    """What changed between two scans of the same plugin."""

    older: ScanRecord
    newer: ScanRecord
    introduced: List[dict] = field(default_factory=list)
    fixed: List[dict] = field(default_factory=list)
    persistent: List[dict] = field(default_factory=list)

    @property
    def persistence_share(self) -> float:
        """Fraction of the newer version's findings already known —
        the plugin-level Section V.D inertia number."""
        total = len(self.newer.findings)
        return len(self.persistent) / total if total else 0.0

    def summary(self) -> str:
        return (
            f"{self.older.plugin} {self.older.version} → {self.newer.version}: "
            f"+{len(self.introduced)} new, -{len(self.fixed)} fixed, "
            f"{len(self.persistent)} persistent "
            f"({self.persistence_share * 100:.0f}% of current)"
        )


def diff_scans(older: ScanRecord, newer: ScanRecord) -> FindingsDiff:
    """Match findings across versions and classify the change.

    Matching is a *multiset* operation: two findings sharing a key (two
    identical sinks on different lines of one file) are two distinct
    occurrences, so fixing one of them counts as one fixed and one
    persistent — never as "nothing changed".
    """
    older_counts = Counter(older.finding_keys)
    newer_counts = Counter(newer.finding_keys)
    diff = FindingsDiff(older=older, newer=newer)
    matched: Counter = Counter()
    for finding in newer.findings:
        key = (finding["kind"], finding["file"], finding["sink"], finding["variable"])
        if matched[key] < older_counts[key]:
            matched[key] += 1
            diff.persistent.append(finding)
        else:
            diff.introduced.append(finding)
    consumed: Counter = Counter()
    for finding in older.findings:
        key = (finding["kind"], finding["file"], finding["sink"], finding["variable"])
        consumed[key] += 1
        if consumed[key] > newer_counts[key]:
            diff.fixed.append(finding)
    return diff


class HistoryStore:
    """A JSON-file archive of scan records, grouped by plugin."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._scans: Dict[str, List[ScanRecord]] = {}
        if path and os.path.exists(path):
            self._load()

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:  # type: ignore[arg-type]
            raw = json.load(handle)
        for plugin, scans in raw.items():
            records = [
                ScanRecord(
                    plugin=scan["plugin"],
                    version=scan["version"],
                    tool=scan["tool"],
                    scanned_at=scan["scanned_at"],
                    loc=scan["loc"],
                    files=scan["files"],
                    findings=tuple(scan["findings"]),
                    failed_files=tuple(scan.get("failed_files", ())),
                )
                for scan in scans
            ]
            # chronological, not insertion, order: a hand-edited archive
            # (or one written by an older version) must still diff the
            # right pair; ties keep file order (stable sort)
            records.sort(key=lambda record: record.scanned_at)
            self._scans[plugin] = records

    def save(self) -> None:
        if not self.path:
            raise ValueError("HistoryStore was created without a path")
        serializable = {
            plugin: [
                {
                    "plugin": scan.plugin,
                    "version": scan.version,
                    "tool": scan.tool,
                    "scanned_at": scan.scanned_at,
                    "loc": scan.loc,
                    "files": scan.files,
                    "findings": list(scan.findings),
                    "failed_files": list(scan.failed_files),
                }
                for scan in scans
            ]
            for plugin, scans in self._scans.items()
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(serializable, handle, indent=1)

    # -- recording ------------------------------------------------------------

    def record(self, report: ToolReport, version: str, scanned_at: str) -> ScanRecord:
        scan = ScanRecord.from_report(report, version=version, scanned_at=scanned_at)
        scans = self._scans.setdefault(scan.plugin, [])
        scans.append(scan)
        # keep the archive ordered by scan date so backfilling an older
        # version after a newer one cannot make ``latest``/``diff_latest``
        # compare the wrong pair; the stable sort keeps same-day scans in
        # recording order
        scans.sort(key=lambda record: record.scanned_at)
        return scan

    # -- queries -----------------------------------------------------------------

    def plugins(self) -> List[str]:
        return sorted(self._scans)

    def scans_of(self, plugin: str) -> List[ScanRecord]:
        return list(self._scans.get(plugin, []))

    def latest(self, plugin: str) -> Optional[ScanRecord]:
        scans = self._scans.get(plugin)
        return scans[-1] if scans else None

    def diff_latest(self, plugin: str) -> Optional[FindingsDiff]:
        """Diff of the two most recent scans of ``plugin``."""
        scans = self._scans.get(plugin, [])
        if len(scans) < 2:
            return None
        return diff_scans(scans[-2], scans[-1])

    def evolution(self, plugin: str) -> List[Tuple[str, int]]:
        """(version, finding count) series — the paper's evolution study
        at single-plugin granularity."""
        return [(scan.version, scan.count()) for scan in self._scans.get(plugin, [])]


# ---------------------------------------------------------------------------
# Approval (the paper's approve-before-integration workflow)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ApprovalDecision:
    """An auditable gate decision."""

    plugin: str
    version: str
    approved: bool
    reasons: Tuple[str, ...] = ()

    def __str__(self) -> str:
        verdict = "APPROVED" if self.approved else "REJECTED"
        detail = ("; ".join(self.reasons)) or "meets policy"
        return f"{self.plugin}@{self.version}: {verdict} — {detail}"


@dataclass
class ApprovalPolicy:
    """Thresholds a plugin must meet before integration.

    Defaults encode a strict gate: no injection flaws of any class, no
    files the analyzer could not process (an unanalyzable file is an
    unaudited file), and no regression against the previous scan.
    """

    max_sqli: int = 0
    max_xss: int = 0
    max_other: int = 0
    allow_failed_files: int = 0
    forbid_regressions: bool = True

    def evaluate(
        self, scan: ScanRecord, previous: Optional[ScanRecord] = None
    ) -> ApprovalDecision:
        reasons: List[str] = []
        sqli = scan.count(VulnKind.SQLI)
        xss = scan.count(VulnKind.XSS)
        other = scan.count() - sqli - xss
        if sqli > self.max_sqli:
            reasons.append(f"{sqli} SQLi finding(s) (max {self.max_sqli})")
        if xss > self.max_xss:
            reasons.append(f"{xss} XSS finding(s) (max {self.max_xss})")
        if other > self.max_other:
            reasons.append(f"{other} other finding(s) (max {self.max_other})")
        if len(scan.failed_files) > self.allow_failed_files:
            reasons.append(
                f"{len(scan.failed_files)} file(s) could not be analyzed"
            )
        if self.forbid_regressions and previous is not None:
            diff = diff_scans(previous, scan)
            if diff.introduced:
                reasons.append(
                    f"{len(diff.introduced)} new finding(s) vs "
                    f"version {previous.version}"
                )
        return ApprovalDecision(
            plugin=scan.plugin,
            version=scan.version,
            approved=not reasons,
            reasons=tuple(reasons),
        )

"""Command-line interface: ``phpsafe`` / ``python -m repro``.

Subcommands:

``scan PATH``
    Analyze a plugin directory (or single ``.php`` file) with phpSAFE
    and print the findings with their flow traces.  A directory of
    plugin directories (e.g. a generated corpus version) is scanned as
    a batch; ``--jobs N`` fans the batch out over worker processes,
    ``--cache-dir`` persists the parse cache across runs, ``--timeout``
    bounds each plugin, and ``--telemetry`` writes the JSON scan report.
``compare PATH``
    Run phpSAFE, RIPS-like and Pixy-like on the same target and print a
    side-by-side summary; ``--jobs``/``--cache-dir`` reuse the batch
    machinery and ``--json`` emits machine-readable per-tool results.
``serve``
    Run the analysis-as-a-service daemon: an HTTP front end over a
    durable job queue and worker pool, with SARIF export and live
    metrics (see :mod:`repro.service`).
``corpus OUTDIR``
    Generate the synthetic 2012/2014 plugin corpora to disk, with the
    ground-truth manifest as JSON.
``evaluate``
    Run the full paper evaluation (Tables I–III, Fig. 2, Sections
    V.B–V.E) and print every table, paper-vs-measured.
``report PATH``
    Analyze and export a review report (HTML, JSON, SARIF or text).
``confirm PATH``
    Analyze, then dynamically confirm each finding in the simulated
    attack runtime (the paper's manual exploitation, automated).
``fix PATH``
    Analyze and print auto-remediation proposals (patched source goes
    to ``--out`` when given).
``approve PATH``
    Gate a plugin against the integration policy (Section VI workflow).
``history ACTION``
    Maintain the historic scan archive (Section VI future work):
    ``record`` scans a plugin version into the archive, ``diff``
    classifies the change between the two most recent scans
    (new / fixed / persistent), ``evolution`` prints the per-version
    finding-count series.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .baselines import PixyLike, RipsLike
from .core import PhpSafe, PhpSafeOptions
from .corpus import build_corpus
from .evaluation import (
    analyze_inertia,
    both_versions_breakdown,
    compute_overlap,
    evaluate_both,
    render_fig2,
    render_inertia,
    render_robustness,
    render_table1,
    render_table2,
    render_table3,
    vector_breakdown,
)
from .plugin import Plugin


def _load_target(path: str) -> Plugin:
    if os.path.isdir(path):
        return Plugin.load_from(path)
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        source = handle.read()
    return Plugin(name=os.path.basename(path), files={os.path.basename(path): source})


def _load_targets(path: str) -> list:
    """Expand ``path`` to the plugins it holds.

    A directory with no PHP files of its own whose subdirectories do
    contain PHP (a corpus checkout, e.g. ``out/2012/``) yields one
    plugin per subdirectory; anything else is a single plugin.
    """
    if not os.path.isdir(path):
        return [_load_target(path)]
    entries = sorted(os.listdir(path))
    if any(entry.endswith(".php") for entry in entries):
        return [Plugin.load_from(path)]
    plugins = []
    for entry in entries:
        subdir = os.path.join(path, entry)
        if os.path.isdir(subdir):
            plugin = Plugin.load_from(subdir)
            if plugin.files:
                plugins.append(plugin)
    return plugins or [Plugin.load_from(path)]


def _iter_targets(path: str):
    """Lazy variant of :func:`_load_targets` for streaming scans: a
    corpus checkout yields one plugin at a time, so the corpus never
    has to fit in memory alongside the scan."""
    if not os.path.isdir(path):
        yield _load_target(path)
        return
    entries = sorted(os.listdir(path))
    if any(entry.endswith(".php") for entry in entries):
        yield Plugin.load_from(path)
        return
    yielded = False
    for entry in entries:
        subdir = os.path.join(path, entry)
        if os.path.isdir(subdir):
            plugin = Plugin.load_from(subdir)
            if plugin.files:
                yielded = True
                yield plugin
    if not yielded:
        yield Plugin.load_from(path)


def _make_tool(
    name: str,
    no_oop: bool = False,
    generic: bool = False,
    strict: bool = False,
    no_ir: bool = False,
    profile: Optional[str] = None,
    rule_packs: Sequence[str] = (),
):
    if name == "phpsafe":
        options = PhpSafeOptions(
            oop=not no_oop,
            wordpress_config=not generic,
            recover=not strict,
            use_ir=not no_ir,
            profile_name=profile,
            rule_packs=tuple(rule_packs),
        )
        return PhpSafe(options=options)
    if profile or rule_packs:
        raise SystemExit(f"--profile/--rule-pack require --tool phpsafe, not {name}")
    if name == "rips":
        return RipsLike()
    if name == "pixy":
        return PixyLike()
    raise SystemExit(f"unknown tool: {name}")


def _print_incidents(report, indent: str = "  ") -> None:
    for incident in report.incidents:
        print(f"{indent}~ {incident.describe()}")


def _load_sarif(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"--baseline {path}: {exc}")


def _baseline_gate(reports, baseline_path: str):
    """Classify the reports' findings against a prior SARIF log.

    Returns ``(counts, new)``: the per-state tallies and the number of
    findings not present in the baseline — what a fail-only-on-new
    gate fails on.
    """
    from .service.sarif import apply_baseline, new_result_count, to_sarif

    document = to_sarif(list(reports))
    counts = apply_baseline(document, _load_sarif(baseline_path))
    return counts, new_result_count(document)


def cmd_scan(args: argparse.Namespace) -> int:
    if args.cprofile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            exit_code = _cmd_scan_impl(args)
        finally:
            profiler.disable()
            stream = io.StringIO()
            stats = pstats.Stats(profiler, stream=stream)
            stats.sort_stats("cumulative").print_stats(args.cprofile)
            print(stream.getvalue().rstrip())
        return exit_code
    return _cmd_scan_impl(args)


def _cmd_scan_impl(args: argparse.Namespace) -> int:
    if args.stream:
        return _scan_stream(args)
    tool = _make_tool(
        args.tool,
        no_oop=args.no_oop,
        generic=args.generic,
        strict=args.strict,
        no_ir=args.no_ir,
        profile=args.profile,
        rule_packs=args.rule_pack,
    )
    targets = _load_targets(args.path)
    batch_requested = (
        args.jobs != 1 or args.cache_dir or args.timeout or args.telemetry
    )
    if len(targets) > 1 or batch_requested:
        return _scan_batch(args, tool, targets)
    plugin = targets[0]
    report = tool.analyze_timed(plugin)
    print(
        f"{tool.name}: {plugin.slug} — {report.files_analyzed} files, "
        f"{report.loc_analyzed} LOC, {report.seconds:.2f}s"
    )
    for finding in report.findings:
        print(f"  {finding.describe()}")
        if args.trace:
            for step in finding.trace:
                print(f"      {step}")
    for failure in report.failures:
        print(f"  ! {failure.file}: {failure.reason}")
    if args.show_incidents:
        _print_incidents(report)
    summary = (
        f"{len(report.findings)} finding(s), {len(report.failed_files)} failed file(s)"
    )
    if report.incidents:
        summary += (
            f", {len(report.incidents)} incident(s)"
            f" ({report.recovered_count} recovered)"
        )
    if report.files_skipped:
        summary += f", {report.files_skipped} file(s) / {report.loc_skipped} LOC skipped"
    print(summary)
    perf = getattr(report, "perf", None)
    if perf and perf.get("tokens_per_second"):
        print(
            f"perf: {perf.get('tokens_per_second', 0):,.0f} tokens/s,"
            f" {perf.get('nodes_per_second', 0):,.0f} engine steps/s,"
            f" taint intern hit rate {perf.get('taint_intern_hit_rate', 0):.0%}"
        )
    return _scan_exit_code(args, [report])


def _scan_stream(args: argparse.Namespace) -> int:
    """``scan --stream SINK``: memory-bounded streaming evaluation.

    Plugins are loaded lazily, findings go to the JSONL sink instead of
    memory, and the artifact cache is byte-capped.  Only the phpSAFE
    tool streams (the baseline tools have no cache to bound).
    """
    from .batch.streaming import stream_scan, streaming_options

    if args.tool != "phpsafe":
        raise SystemExit("--stream supports only --tool phpsafe")
    options = streaming_options(
        PhpSafeOptions(
            oop=not args.no_oop,
            wordpress_config=not args.generic,
            recover=not args.strict,
            use_ir=not args.no_ir,
            profile_name=args.profile,
            rule_packs=tuple(args.rule_pack),
        )
    )
    summary = stream_scan(
        _iter_targets(args.path),
        args.stream,
        options=options,
        max_cache_bytes=args.max_cache_bytes,
    )
    print(
        f"phpSAFE: streamed {summary.plugins} plugin(s) — "
        f"{summary.files} files, {summary.loc} LOC, "
        f"{summary.seconds:.2f}s ({summary.loc_per_second:,.0f} LOC/s)"
    )
    print(
        f"{summary.findings} finding(s) → {args.stream}, "
        f"{summary.failures} failure(s), {summary.incidents} incident(s), "
        f"peak cache {summary.peak_cache_bytes / 1e6:.1f} MB "
        f"(cap {args.max_cache_bytes / 1e6:.1f} MB), "
        f"spilled {summary.spilled_bytes / 1e6:.1f} MB"
    )
    if args.telemetry:
        with open(args.telemetry, "w", encoding="utf-8") as handle:
            json.dump(summary.to_dict(), handle, indent=1)
            handle.write("\n")
    return 0 if not summary.findings else 1


def _scan_exit_code(args: argparse.Namespace, reports) -> int:
    """Exit 1 on findings — all of them, or under ``--fail-on new``
    only those absent from the ``--baseline`` SARIF log."""
    if args.baseline:
        counts, new = _baseline_gate(reports, args.baseline)
        print(
            f"baseline: {counts['new']} new, {counts['unchanged']} unchanged,"
            f" {counts['absent']} absent"
        )
        if args.fail_on == "new":
            return 1 if new else 0
    # without a baseline every finding is new, so "--fail-on new"
    # degenerates to the default any-finding gate (fail safe)
    return 0 if not any(report.findings for report in reports) else 1


def _scan_batch(args: argparse.Namespace, tool, targets) -> int:
    from .batch import BatchOptions, BatchScanner, ToolSpec

    spec = ToolSpec.from_tool(tool)
    if spec is None:
        raise SystemExit(f"tool {tool.name} cannot run in batch mode")
    if args.cache_dir:
        try:
            os.makedirs(args.cache_dir, exist_ok=True)
        except OSError as exc:
            raise SystemExit(f"--cache-dir {args.cache_dir}: {exc}")
    scanner = BatchScanner(
        spec,
        BatchOptions(
            jobs=args.jobs, timeout=args.timeout, cache_dir=args.cache_dir
        ),
    )
    result = scanner.scan(targets)
    telemetry = result.telemetry
    print(
        f"{tool.name}: batch of {len(targets)} plugin(s), jobs={telemetry.jobs}"
        f" — {telemetry.total_files} files, {telemetry.total_loc} LOC,"
        f" {telemetry.wall_seconds:.2f}s wall"
    )
    total_failed = 0
    for report, stats in zip(result.reports, telemetry.plugins):
        marker = "" if stats.outcome == "ok" else f" [{stats.outcome}]"
        print(
            f"  {report.plugin}: {len(report.findings)} finding(s), "
            f"{stats.seconds:.2f}s{marker}"
        )
        for finding in report.findings:
            print(f"    {finding.describe()}")
            if args.trace:
                for step in finding.trace:
                    print(f"        {step}")
        for failure in report.failures:
            print(f"    ! {failure.file}: {failure.reason}")
        if args.show_incidents:
            _print_incidents(report, indent="    ")
        total_failed += len(report.failed_files)
    print(
        f"{telemetry.total_findings} finding(s), {total_failed} failed file(s), "
        f"cache hit rate {telemetry.cache_hit_rate:.0%}, "
        f"summary cache {telemetry.summary_hits}/"
        f"{telemetry.summary_hits + telemetry.summary_misses} hit(s)"
        f" ({telemetry.summary_stale} stale), "
        f"incidents: {telemetry.total_incidents} recorded"
        f" ({telemetry.total_recovered} recovered) / {telemetry.timeouts} timeout(s)"
        f" / {telemetry.crashes} crash(es)"
        f" / {telemetry.worker_restarts} restart(s)"
    )
    if args.telemetry:
        telemetry.write(args.telemetry)
        print(f"telemetry written to {args.telemetry}")
    return _scan_exit_code(args, result.reports)


def cmd_compare(args: argparse.Namespace) -> int:
    from .batch import BatchOptions, BatchScanner, ToolSpec

    targets = _load_targets(args.path)
    if args.cache_dir:
        try:
            os.makedirs(args.cache_dir, exist_ok=True)
        except OSError as exc:
            raise SystemExit(f"--cache-dir {args.cache_dir}: {exc}")
    documents = []
    for tool in (PhpSafe(), RipsLike(), PixyLike()):
        spec = ToolSpec.from_tool(tool)
        scanner = BatchScanner(
            spec,
            BatchOptions(jobs=args.jobs, cache_dir=args.cache_dir),
        )
        result = scanner.scan(targets)
        merged = result.merged_report()
        findings = merged.findings if merged else []
        failed = merged.failed_files if merged else []
        xss = len([f for f in findings if f.kind.value == "xss"])
        sqli = len(findings) - xss
        seconds = result.telemetry.wall_seconds
        if args.json:
            documents.append(
                {
                    "tool": tool.name,
                    "xss": xss,
                    "sqli": sqli,
                    "failed_files": len(failed),
                    "seconds": round(seconds, 4),
                    "findings": [
                        {
                            "kind": finding.kind.value,
                            "plugin": finding.plugin,
                            "file": finding.file,
                            "line": finding.line,
                            "sink": finding.sink,
                            "variable": finding.variable,
                        }
                        for finding in findings
                    ],
                }
            )
            continue
        print(
            f"{tool.name:8s} XSS={xss:4d} SQLi={sqli:3d} "
            f"failed_files={len(failed):3d} time={seconds:.2f}s"
        )
        if args.verbose:
            for finding in findings:
                print(f"    {finding.describe()}")
    if args.json:
        print(
            json.dumps(
                {
                    "target": args.path,
                    "plugins": len(targets),
                    "jobs": args.jobs,
                    "tools": documents,
                },
                indent=1,
            )
        )
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    for version in args.versions:
        corpus = build_corpus(version, scale=args.scale)
        version_dir = os.path.join(args.outdir, version)
        os.makedirs(version_dir, exist_ok=True)
        for plugin in corpus.plugins:
            plugin.write_to(version_dir)
        manifest = [
            {
                "spec_id": entry.spec.spec_id,
                "kind": entry.spec.kind.value,
                "vector": entry.spec.vector.value,
                "region": entry.spec.region,
                "vulnerable": entry.spec.is_vulnerable,
                "carried": entry.spec.carried,
                "plugin": entry.plugin,
                "file": entry.file,
                "line": entry.line,
            }
            for entry in corpus.truth.entries
        ]
        manifest_path = os.path.join(version_dir, "ground-truth.json")
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
        print(
            f"{version}: {corpus.total_files} files, {corpus.total_loc} LOC, "
            f"{corpus.truth.vulnerable_count()} vulnerabilities → {version_dir}"
        )
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    corpora = [build_corpus(version, scale=args.scale) for version in ("2012", "2014")]
    evaluations = evaluate_both(
        corpora,
        lambda: [PhpSafe(), RipsLike(), PixyLike()],
        timing_repetitions=args.repetitions,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    older, newer = evaluations["2012"], evaluations["2014"]
    print(render_table1(evaluations, convention=args.convention))
    print()
    print(render_fig2(compute_overlap(older), compute_overlap(newer)))
    print()
    print(
        render_table2(
            vector_breakdown(older),
            vector_breakdown(newer),
            both_versions_breakdown(older, newer),
        )
    )
    print()
    print(render_inertia(analyze_inertia(older, newer)))
    print()
    print(render_table3(evaluations))
    print()
    print(render_robustness(evaluations))
    return 0


def cmd_difftest(args: argparse.Namespace) -> int:
    from .difftest import (
        ConfigMatrixOracle,
        OracleOptions,
        render_oracle_reports,
        render_slice_table,
        run_slices,
    )

    failed = False
    if not args.skip_slices:
        results = run_slices()
        print(render_slice_table(results))
        print()
        failed = any(not result.ok for result in results)
    oracle = ConfigMatrixOracle(
        OracleOptions(
            versions=tuple(args.versions), scale=args.scale, jobs=args.jobs
        )
    )
    reports = oracle.run()
    print(render_oracle_reports(reports, verbose=args.verbose))
    failed = failed or any(not report.ok for report in reports)
    return 1 if failed else 0


def cmd_report(args: argparse.Namespace) -> int:
    from .core.review import to_html, to_json, to_text

    if args.baseline and args.format != "sarif":
        raise SystemExit("--baseline requires --format sarif")
    plugin = _load_target(args.path)
    report = PhpSafe().analyze_timed(plugin)
    if args.format == "html":
        rendered = to_html(report, plugin)
    elif args.format == "json":
        rendered = to_json(report)
    elif args.format == "sarif":
        from .service.sarif import apply_baseline, to_sarif

        document = to_sarif(report)
        if args.baseline:
            counts = apply_baseline(document, _load_sarif(args.baseline))
            print(
                f"baseline: {counts['new']} new, {counts['unchanged']} unchanged,"
                f" {counts['absent']} absent",
                file=sys.stderr,
            )
        rendered = json.dumps(document, indent=1)
    else:
        rendered = to_text(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.format} report to {args.out}")
    else:
        print(rendered)
    return 0


def cmd_confirm(args: argparse.Namespace) -> int:
    from .dynamic import confirm_findings

    plugin = _load_target(args.path)
    report = PhpSafe().analyze(plugin)
    if not report.findings:
        print("no findings to confirm")
        return 0
    confirmed = 0
    for verdict in confirm_findings(plugin, report.findings):
        print(f"{verdict.status.value:12s} {verdict.finding.describe()}")
        if verdict.evidence:
            print(f"             {verdict.evidence}")
        confirmed += verdict.confirmed
    print(f"{confirmed} of {len(report.findings)} finding(s) dynamically confirmed")
    return 1 if confirmed else 0


def cmd_fix(args: argparse.Namespace) -> int:
    from .core.autofix import apply_fixes, verify_fix

    plugin = _load_target(args.path)
    report = PhpSafe().analyze(plugin)
    if not report.findings:
        print("nothing to fix")
        return 0
    patched, proposals = apply_fixes(plugin, report.findings)
    for proposal in proposals:
        verified = verify_fix(patched, proposal.finding)
        status = "verified" if verified else "UNVERIFIED"
        print(f"[{status}] {proposal.description}")
    if args.out:
        patched.write_to(args.out)
        print(f"patched plugin written under {args.out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .batch import ToolSpec
    from .service import AnalysisService, run_service

    tool = _make_tool(
        args.tool,
        no_oop=args.no_oop,
        generic=args.generic,
        strict=args.strict,
        no_ir=args.no_ir,
        profile=args.profile,
        rule_packs=args.rule_pack,
    )
    spec = ToolSpec.from_tool(tool)
    if spec is None:
        raise SystemExit(f"tool {tool.name} cannot run as a service")
    if args.coordinator:
        return _serve_coordinator(args, spec, tool.name)
    service = AnalysisService(
        data_dir=args.data_dir,
        spec=spec,
        jobs=args.jobs,
        timeout=args.timeout,
        cache_dir=args.cache_dir,
        max_queue_depth=args.max_queue_depth,
        isolation=args.isolation,
        store_dir=args.store_dir,
        node_name=args.node,
        retry_after=args.retry_after,
    )
    if service.requeued:
        print(
            f"recovered {service.requeued} interrupted job(s) from the spool",
            flush=True,
        )

    def announce(host: str, port: int) -> None:
        identity = f" node {args.node}," if args.node else ""
        print(
            f"{tool.name} service listening on http://{host}:{port}"
            f" —{identity} workers={args.jobs}, queue depth"
            f" {args.max_queue_depth}, data dir {args.data_dir}",
            flush=True,
        )

    run_service(service, args.host, args.port, on_ready=announce)
    print("service stopped: queue drained and persisted", flush=True)
    return 0


def _serve_coordinator(args: argparse.Namespace, spec, tool_name: str) -> int:
    """``phpsafe serve --coordinator --nodes name=host:port …``"""
    from .service import FleetCoordinator, HttpNodeClient, run_service

    if not args.nodes:
        raise SystemExit("--coordinator needs at least one --nodes entry")
    if not args.store_dir:
        raise SystemExit(
            "--coordinator needs --store-dir (the result store every"
            " node shares)"
        )
    clients = {}
    for entry in args.nodes:
        name, _, address = entry.partition("=")
        if not address:
            name, address = f"node{len(clients)}", name
        clients[name] = HttpNodeClient(address, timeout=args.timeout or 10.0)
    coordinator = FleetCoordinator(
        data_dir=args.data_dir,
        nodes=clients,
        spec=spec,
        store_dir=args.store_dir,
        min_live=args.min_live,
        max_queue_depth=args.max_queue_depth,
        retry_after=args.retry_after,
    )
    if coordinator.requeued:
        print(
            f"recovered {coordinator.requeued} interrupted job(s) from the"
            " dispatch ledger",
            flush=True,
        )

    def announce(host: str, port: int) -> None:
        print(
            f"{tool_name} fleet coordinator on http://{host}:{port}"
            f" — {len(clients)} node(s): "
            + ", ".join(f"{n}={c.address}" for n, c in sorted(clients.items())),
            flush=True,
        )

    run_service(coordinator, args.host, args.port, on_ready=announce)
    print("coordinator stopped: dispatch ledger persisted", flush=True)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.action == "scale":
        from .benchscale import run_and_gate as run_scale

        return run_scale(
            args.tiers,
            path=args.output,
            record_baseline=args.record_baseline,
            quick=args.quick,
            seed=args.seed,
            parity=not args.no_parity,
        )
    from .service.chaos import config_from_args, run_and_gate

    assert args.action == "fleet"  # argparse enforces the choice
    return run_and_gate(config_from_args(args))


def cmd_approve(args: argparse.Namespace) -> int:
    from .history import ApprovalPolicy, HistoryStore, ScanRecord

    plugin = _load_target(args.path)
    report = PhpSafe().analyze(plugin)
    record = ScanRecord.from_report(
        report, version=plugin.version or "unversioned", scanned_at=args.date
    )
    previous = None
    if args.history:
        previous = HistoryStore(args.history).latest(record.plugin)
    policy = ApprovalPolicy(max_xss=args.max_xss, max_sqli=args.max_sqli)
    decision = policy.evaluate(record, previous)
    print(decision)
    for reason in decision.reasons:
        print(f"  - {reason}")
    return 0 if decision.approved else 1


def cmd_history(args: argparse.Namespace) -> int:
    from .history import HistoryStore

    store = HistoryStore(args.store)
    if args.action == "record":
        plugin = _load_target(args.path)
        report = PhpSafe().analyze(plugin)
        version = args.version or plugin.version or "unversioned"
        scan = store.record(report, version=version, scanned_at=args.date)
        store.save()
        print(
            f"recorded {scan.plugin}@{scan.version} ({scan.scanned_at}):"
            f" {scan.count()} finding(s) → {args.store}"
        )
        diff = store.diff_latest(scan.plugin)
        if diff is not None:
            print(diff.summary())
        return 0
    if args.action == "diff":
        diff = store.diff_latest(args.plugin)
        if diff is None:
            print(f"{args.plugin}: fewer than two scans recorded")
            return 1
        print(diff.summary())
        for finding in diff.introduced:
            print(
                f"  + {finding['kind']} {finding['file']}:{finding['line']}"
                f" via {finding['sink']}"
            )
        for finding in diff.fixed:
            print(
                f"  - {finding['kind']} {finding['file']}:{finding['line']}"
                f" via {finding['sink']}"
            )
        if args.verbose:
            for finding in diff.persistent:
                print(
                    f"  = {finding['kind']} {finding['file']}:{finding['line']}"
                    f" via {finding['sink']}"
                )
        return 1 if diff.introduced else 0
    # evolution
    series = store.evolution(args.plugin)
    if not series:
        print(f"{args.plugin}: no scans recorded")
        return 1
    peak = max(count for _, count in series) or 1
    for version, count in series:
        bar = "#" * round(count / peak * 40)
        print(f"  {version:16s} {count:4d} {bar}")
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    from .rules import PackError, builtin_pack_names, load_pack

    if args.action == "show":
        refs = [args.pack]
    else:
        refs = list(args.packs) or builtin_pack_names()
        if not refs:
            print("no rule packs found")
            return 1
    exit_code = 0
    for ref in refs:
        try:
            pack = load_pack(ref)
        except PackError as exc:
            exit_code = 1
            print(f"{ref}: INVALID — {len(exc.issues)} issue(s)")
            for incident in exc.to_incidents():
                print(f"  ~ {incident.describe()}")
            continue
        counts = pack.entry_counts()
        summary = ", ".join(
            f"{count} {section}" for section, count in counts.items() if count
        )
        if args.action == "validate":
            print(f"{pack.name}@{pack.version}: ok ({summary})")
        elif args.action == "list":
            print(
                f"{pack.name:16s} {pack.version:8s} {pack.content_hash}  "
                f"{pack.title or pack.description}"
            )
        else:  # show
            print(f"{pack.name}@{pack.version} ({pack.path})")
            print(f"  content hash: {pack.content_hash}")
            if pack.title:
                print(f"  title: {pack.title}")
            if pack.description:
                print(f"  {pack.description}")
            for decl in pack.kinds:
                print(f"  kind {decl.value}: {decl.title or decl.description}")
            for sink in pack.sinks:
                where = f"{sink.class_name}::{sink.name}" if sink.class_name else sink.name
                argspec = (
                    ",".join(str(i) for i in sink.args)
                    if sink.args is not None
                    else "*"
                )
                note = f" — {sink.description}" if sink.description else ""
                print(f"  sink {where}(args {argspec}) → {sink.kind}{note}")
            for source in pack.sources:
                label = "superglobal" if source.superglobal else source.vector
                print(f"  source {source.name} [{label}] → {','.join(source.kinds)}")
            for flt in pack.filters:
                print(f"  filter {flt.name} → {','.join(flt.kinds) or '*'}")
            for revert in pack.reverts:
                print(f"  revert {revert.name} → {','.join(revert.kinds)}")
            for prop in pack.propagation:
                print(f"  propagation {prop.name} → {','.join(prop.kinds)}")
            print(f"  totals: {summary}")
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="phpsafe",
        description="phpSAFE reproduction: XSS/SQLi static analysis of PHP plugins",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="analyze a plugin directory or PHP file")
    scan.add_argument("path")
    scan.add_argument("--tool", choices=("phpsafe", "rips", "pixy"), default="phpsafe")
    scan.add_argument("--no-oop", action="store_true", help="disable OOP resolution")
    scan.add_argument(
        "--generic", action="store_true", help="generic PHP profile (no WordPress)"
    )
    scan.add_argument("--trace", action="store_true", help="print flow traces")
    scan.add_argument(
        "--strict", action="store_true",
        help="disable error recovery (a parse error skips the whole file)",
    )
    scan.add_argument(
        "--no-ir", action="store_true",
        help="use the reference AST interpreter instead of the lowered "
             "taint IR (slower; cached results never mix evaluators)",
    )
    scan.add_argument(
        "--show-incidents", action="store_true",
        help="print the typed robustness incidents recorded per file",
    )
    scan.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for batch scans (default: 1, serial)",
    )
    scan.add_argument(
        "--cache-dir", help="persistent parse-cache directory (batch mode)"
    )
    scan.add_argument(
        "--timeout", type=float,
        help="per-plugin deadline in seconds (batch mode)",
    )
    scan.add_argument(
        "--telemetry", help="write the batch telemetry JSON report here"
    )
    scan.add_argument(
        "--stream", metavar="SINK",
        help="memory-bounded streaming scan: load plugins lazily, cap "
             "the artifact cache by bytes, and write findings to this "
             "JSONL sink instead of accumulating reports",
    )
    scan.add_argument(
        "--max-cache-bytes", type=int, default=64 * 1024 * 1024,
        help="streaming mode's in-memory artifact-cache byte cap "
             "(default: 64 MiB)",
    )
    scan.add_argument(
        "--profile", choices=("wordpress", "drupal", "joomla", "generic"),
        help="analyzer knowledge-base profile (overrides --generic)",
    )
    scan.add_argument(
        "--rule-pack", action="append", default=[], metavar="PACK",
        help="rule pack to load on top of the profile: a builtin pack "
             "name (see 'phpsafe rules list') or a path to a .json/.toml "
             "pack file (repeatable)",
    )
    scan.add_argument(
        "--cprofile", type=int, nargs="?", const=25, default=0, metavar="N",
        help="profile the scan with cProfile and print the top N entries "
             "by cumulative time (default N: 25)",
    )
    scan.add_argument(
        "--baseline", metavar="SARIF",
        help="prior SARIF log to classify findings against "
             "(new / unchanged / absent)",
    )
    scan.add_argument(
        "--fail-on", choices=("any", "new"), default="any",
        help="exit non-zero on any finding (default) or only on findings "
             "not in the --baseline log",
    )
    scan.set_defaults(func=cmd_scan)

    compare = sub.add_parser("compare", help="run all three tools on a target")
    compare.add_argument("path")
    compare.add_argument("-v", "--verbose", action="store_true")
    compare.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per tool (default: 1, serial)",
    )
    compare.add_argument(
        "--cache-dir", help="persistent parse-cache directory shared by the runs"
    )
    compare.add_argument(
        "--json", action="store_true",
        help="emit machine-readable per-tool results instead of the table",
    )
    compare.set_defaults(func=cmd_compare)

    corpus = sub.add_parser("corpus", help="generate the synthetic corpora to disk")
    corpus.add_argument("outdir")
    corpus.add_argument(
        "--versions", nargs="+", choices=("2012", "2014"), default=["2012", "2014"]
    )
    corpus.add_argument("--scale", type=float, default=0.25)
    corpus.set_defaults(func=cmd_corpus)

    evaluate = sub.add_parser("evaluate", help="reproduce the paper's evaluation")
    evaluate.add_argument("--scale", type=float, default=0.1)
    evaluate.add_argument("--repetitions", type=int, default=1)
    evaluate.add_argument("--convention", choices=("paper", "exact"), default="paper")
    evaluate.add_argument(
        "--jobs", type=int, default=1,
        help="parallel batch analysis (1 = paper-faithful serial)",
    )
    evaluate.add_argument(
        "--cache-dir", help="persistent parse-cache directory"
    )
    evaluate.set_defaults(func=cmd_evaluate)

    difftest = sub.add_parser(
        "difftest",
        help="differential correctness harness: config-matrix oracle + slice catalog",
    )
    difftest.add_argument("--scale", type=float, default=0.1)
    difftest.add_argument(
        "--versions", nargs="+", choices=("2012", "2014"), default=["2012", "2014"]
    )
    difftest.add_argument(
        "--jobs", type=int, default=2,
        help="worker count of the parallel side of the jobs axis",
    )
    difftest.add_argument(
        "--skip-slices", action="store_true",
        help="run only the config-matrix oracle, not the slice catalog",
    )
    difftest.add_argument(
        "--verbose", action="store_true",
        help="list every divergence even when an axis summary suffices",
    )
    difftest.set_defaults(func=cmd_difftest)

    report = sub.add_parser("report", help="export a review report")
    report.add_argument("path")
    report.add_argument(
        "--format", choices=("html", "json", "text", "sarif"), default="text",
        help="output format; 'sarif' emits a SARIF 2.1.0 interchange document",
    )
    report.add_argument("--out", help="write to a file instead of stdout")
    report.add_argument(
        "--baseline", metavar="SARIF",
        help="prior SARIF log: mark each result's baselineState "
             "(new / unchanged / absent); requires --format sarif",
    )
    report.set_defaults(func=cmd_report)

    serve = sub.add_parser(
        "serve", help="run the analysis-as-a-service HTTP daemon"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787)
    serve.add_argument(
        "--data-dir", default="phpsafe-service",
        help="daemon state directory: job spool, result store, parse cache",
    )
    serve.add_argument(
        "--jobs", type=int, default=2, help="concurrent analysis workers"
    )
    serve.add_argument(
        "--timeout", type=float, help="per-job deadline in seconds"
    )
    serve.add_argument(
        "--cache-dir",
        help="parse/summary cache directory (default: DATA_DIR/cache)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=64,
        help="queued-job bound; submissions beyond it get HTTP 429",
    )
    serve.add_argument(
        "--isolation", choices=("process", "thread"), default="process",
        help="worker isolation: 'process' survives crashing jobs (default)",
    )
    serve.add_argument("--tool", choices=("phpsafe", "rips", "pixy"),
                       default="phpsafe")
    serve.add_argument("--no-oop", action="store_true",
                       help="disable OOP resolution")
    serve.add_argument("--generic", action="store_true",
                       help="generic PHP profile (no WordPress)")
    serve.add_argument("--strict", action="store_true",
                       help="disable error recovery")
    serve.add_argument("--no-ir", action="store_true",
                       help="use the reference AST interpreter instead of "
                            "the lowered taint IR")
    serve.add_argument(
        "--profile", choices=("wordpress", "drupal", "joomla", "generic"),
        help="analyzer knowledge-base profile (overrides --generic)",
    )
    serve.add_argument(
        "--rule-pack", action="append", default=[], metavar="PACK",
        help="rule pack to load on top of the profile (builtin name or "
             "path, repeatable)",
    )
    serve.add_argument(
        "--store-dir",
        help="result store directory (default DATA_DIR/store); point every"
             " fleet node and the coordinator at the same one",
    )
    serve.add_argument(
        "--node", help="fleet identity of this node (shown in /healthz)"
    )
    serve.add_argument(
        "--retry-after", type=float, default=1.0,
        help="Retry-After hint (seconds) on 429/503 answers",
    )
    serve.add_argument(
        "--coordinator", action="store_true",
        help="run as a fleet coordinator instead of an analysis node",
    )
    serve.add_argument(
        "--nodes", action="append", default=[], metavar="NAME=HOST:PORT",
        help="coordinator only: one fleet node (repeatable)",
    )
    serve.add_argument(
        "--min-live", type=int, default=1,
        help="coordinator only: below this many live nodes, shed new load"
             " with 503 (cached results still served)",
    )
    serve.set_defaults(func=cmd_serve)

    bench = sub.add_parser(
        "bench", help="performance / robustness harnesses"
    )
    bench_sub = bench.add_subparsers(dest="action", required=True)
    fleet = bench_sub.add_parser(
        "fleet",
        help="fault-injection load harness: N-node fleet under chaos",
    )
    from .service.chaos import build_arg_parser as _chaos_args

    _chaos_args(fleet)
    fleet.set_defaults(func=cmd_bench)

    scale = bench_sub.add_parser(
        "scale",
        help="stress-tier memory/throughput bench: peak RSS and LOC/s "
             "per tier, streaming vs accumulating, into BENCH_scale.json",
    )
    from .corpus.stress import TIERS as _stress_tiers

    scale.add_argument(
        "--tiers", nargs="+", choices=sorted(_stress_tiers),
        default=sorted(_stress_tiers),
        help="stress tiers to bench (default: all)",
    )
    scale.add_argument(
        "--output", default="BENCH_scale.json",
        help="bench file to merge results into (default: BENCH_scale.json)",
    )
    scale.add_argument(
        "--record-baseline", action="store_true",
        help="overwrite the stored baseline section with this run",
    )
    scale.add_argument(
        "--quick", action="store_true",
        help="mark the run quick and shrink the parity corpus scale",
    )
    scale.add_argument(
        "--seed", type=int, default=0,
        help="stress-corpus noise seed (seeded flows are seed-invariant)",
    )
    scale.add_argument(
        "--no-parity", action="store_true",
        help="skip the streaming-vs-accumulating parity witness",
    )
    scale.set_defaults(func=cmd_bench)

    confirm = sub.add_parser("confirm", help="dynamically confirm findings")
    confirm.add_argument("path")
    confirm.set_defaults(func=cmd_confirm)

    fix = sub.add_parser("fix", help="propose and verify auto-remediations")
    fix.add_argument("path")
    fix.add_argument("--out", help="directory to write the patched plugin to")
    fix.set_defaults(func=cmd_fix)

    approve = sub.add_parser("approve", help="gate a plugin for integration")
    approve.add_argument("path")
    approve.add_argument("--max-xss", type=int, default=0)
    approve.add_argument("--max-sqli", type=int, default=0)
    approve.add_argument("--date", default="1970-01-01",
                         help="scan date recorded in the decision")
    approve.add_argument(
        "--history",
        help="scan archive (phpsafe history) supplying the previous scan "
             "for the regression check",
    )
    approve.set_defaults(func=cmd_approve)

    history = sub.add_parser(
        "history", help="maintain the historic scan archive"
    )
    history_sub = history.add_subparsers(dest="action", required=True)
    record = history_sub.add_parser(
        "record", help="scan a plugin version into the archive"
    )
    record.add_argument("path")
    record.add_argument("--store", required=True, help="archive JSON file")
    record.add_argument(
        "--version", help="version label (default: the plugin's own)"
    )
    record.add_argument("--date", default="1970-01-01",
                        help="ISO scan date used for chronological ordering")
    record.set_defaults(func=cmd_history)
    hdiff = history_sub.add_parser(
        "diff", help="classify the change between the two most recent scans"
    )
    hdiff.add_argument("plugin")
    hdiff.add_argument("--store", required=True, help="archive JSON file")
    hdiff.add_argument("-v", "--verbose", action="store_true",
                       help="also list persistent findings")
    hdiff.set_defaults(func=cmd_history)
    evolution = history_sub.add_parser(
        "evolution", help="per-version finding-count series"
    )
    evolution.add_argument("plugin")
    evolution.add_argument("--store", required=True, help="archive JSON file")
    evolution.set_defaults(func=cmd_history)

    rules = sub.add_parser(
        "rules", help="inspect and validate declarative rule packs"
    )
    rules_sub = rules.add_subparsers(dest="action", required=True)
    rules_list = rules_sub.add_parser(
        "list", help="one line per pack: name, version, content hash"
    )
    rules_list.add_argument(
        "packs", nargs="*", metavar="PACK",
        help="builtin pack names or pack file paths (default: all builtin)",
    )
    rules_list.set_defaults(func=cmd_rules)
    rules_validate = rules_sub.add_parser(
        "validate",
        help="validate packs; exit non-zero when any pack is invalid",
    )
    rules_validate.add_argument(
        "packs", nargs="*", metavar="PACK",
        help="builtin pack names or pack file paths (default: all builtin)",
    )
    rules_validate.set_defaults(func=cmd_rules)
    rules_show = rules_sub.add_parser(
        "show", help="print one pack's full rule inventory"
    )
    rules_show.add_argument("pack", metavar="PACK")
    rules_show.set_defaults(func=cmd_rules)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

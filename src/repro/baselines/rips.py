"""RIPS-like baseline analyzer.

Behavioural envelope of RIPS as the paper characterizes it (Sections II,
IV and V):

- performs intra- and inter-procedural taint analysis over the PHP AST,
  simulating built-in functions — our shared :class:`TaintEngine` with
  the generic-PHP knowledge base;
- "does not parse PHP objects, consequently it misses encapsulated
  vulnerabilities": method calls are opaque (``$wpdb->get_results`` is
  not a source, ``$wpdb->query`` not a sink, ``$wpdb->prepare`` not a
  filter), though it still scans method *bodies* procedurally;
- knows nothing about the WordPress API, so flows protected only by
  WordPress sanitizers (``esc_html`` ...) are reported anyway — the
  false-positive population the paper measures for RIPS;
- analyzes functions not called from the plugin code (Section V.A notes
  RIPS shares this plugin-oriented feature with phpSAFE);
- robust: "RIPS succeeded in completing the analysis of all files".
"""

from __future__ import annotations

from typing import Optional

from ..config.profiles import AnalyzerProfile, generic_php
from ..core.engine import EngineOptions, TaintEngine
from ..core.model import PluginModel
from ..core.results import FileFailure, ToolReport
from ..core.tool import AnalyzerTool
from ..plugin import Plugin


class RipsLike(AnalyzerTool):
    """Procedural inter-procedural taint analyzer, OOP-blind."""

    name = "RIPS"

    def __init__(self, profile: Optional[AnalyzerProfile] = None) -> None:
        self.profile = profile or generic_php("rips")

    def analyze(self, plugin: Plugin) -> ToolReport:
        report = ToolReport(tool=self.name, plugin=plugin.slug)
        # RIPS tolerates memory-heavy include chains phpSAFE chokes on:
        # no include budget is applied.
        model = PluginModel.build(plugin, include_budget=2**63)
        for path, error in sorted(model.parse_failures.items()):
            report.failures.append(FileFailure(file=path, reason=str(error)))
        options = EngineOptions(
            oop=False,
            analyze_uncalled=True,
            analyze_methods_standalone=True,
            unknown_call_policy="propagate",
        )
        engine = TaintEngine(model, self.profile, options)
        for finding in engine.run():
            report.add_finding(finding)
        report.files_analyzed = len(model.files)
        report.loc_analyzed = model.total_loc
        return report

"""Pixy-like baseline analyzer.

Behavioural envelope of Pixy per the paper: a 2007-era Java tool with
"flow-sensitive, inter-procedural and context-sensitive data flow
analysis" for XSS/SQLi that "does not parse Object Oriented constructs"
and has not been updated since 2007.  Concretely:

- generic PHP-4-era knowledge base (:func:`pixy_2007`): no ``mysqli``,
  no ``filter_var``, no WordPress entries;
- the ``register_globals = 1`` source model: an uninitialized global
  read is attacker-controllable — "half of the vulnerabilities it found
  were due to this directive" and most of its false alarms too;
- OOP-blind *and* fragile: files using PHP-5-only constructs it cannot
  parse (exceptions, closures, namespaces, traits, late static binding,
  interfaces/abstract classes) fail with an error (Section V.E: Pixy
  "failed to complete the analysis on 32 files" and raised dozens of
  error messages "probably because it is an old tool and does not
  recognize OOP code");
- class bodies are skipped entirely, and functions never called from
  the plugin are *not* analyzed ("Pixy is unable to do so",
  Section V.A).
"""

from __future__ import annotations

from typing import List, Optional

from ..config.profiles import AnalyzerProfile, pixy_2007
from ..config.vulnerability import PAPER_KINDS
from ..core.engine import EngineOptions, TaintEngine
from ..core.model import PluginModel
from ..core.results import FileFailure, ToolReport
from ..core.tool import AnalyzerTool
from ..php.lexer import tokenize_significant
from ..php.tokens import Token, TokenType
from ..plugin import Plugin

#: PHP-5-only constructs whose presence makes the Pixy-like parser fail.
_FATAL_TOKENS = {
    TokenType.TRY: "try/catch exception handling",
    TokenType.CATCH: "try/catch exception handling",
    TokenType.THROW: "throw statement",
    TokenType.NAMESPACE: "namespaces",
    TokenType.TRAIT: "traits",
    TokenType.INTERFACE: "interface declaration",
    TokenType.ABSTRACT: "abstract class",
}

#: Constructs Pixy survives but complains about (error message, no skip).
_WARNING_TOKENS = {
    TokenType.FINAL: "final modifier",
    TokenType.INSTANCEOF: "instanceof operator",
}


def _scan_php5_constructs(tokens: List[Token]) -> tuple:
    """Return ``(fatal reason or None, warning reason or None)``."""
    fatal = None
    warning = None
    for index, token in enumerate(tokens):
        if token.type in _FATAL_TOKENS and fatal is None:
            fatal = _FATAL_TOKENS[token.type]
        elif token.type in _WARNING_TOKENS and warning is None:
            warning = _WARNING_TOKENS[token.type]
        elif (
            token.type is TokenType.FUNCTION
            and index + 1 < len(tokens)
            and tokens[index + 1].is_char("(")
            and fatal is None
        ):
            fatal = "anonymous function (closure)"
    return fatal, warning


class PixyLike(AnalyzerTool):
    """2007-era taint analyzer: OOP-blind, fragile, register_globals."""

    name = "Pixy"

    def __init__(self, profile: Optional[AnalyzerProfile] = None) -> None:
        self.profile = profile or pixy_2007()

    def analyze(self, plugin: Plugin) -> ToolReport:
        report = ToolReport(tool=self.name, plugin=plugin.slug)
        survivors = Plugin(name=plugin.name, version=plugin.version)
        for path, source in plugin.iter_files():
            try:
                tokens = tokenize_significant(source, path)
            except Exception as error:  # lexing failure: file skipped
                report.failures.append(
                    FileFailure(file=path, reason=str(error), is_error=True)
                )
                continue
            fatal, warning = _scan_php5_constructs(tokens)
            if fatal is not None:
                report.failures.append(
                    FileFailure(
                        file=path,
                        reason=f"unsupported PHP 5 construct: {fatal}",
                        is_error=True,
                    )
                )
                continue
            if warning is not None:
                report.failures.append(
                    FileFailure(
                        file=path,
                        reason=f"parser warning: {warning}",
                        is_error=True,
                        completed=True,
                    )
                )
            survivors.add_file(path, source)

        model = PluginModel.build(survivors, include_budget=2**63)
        for path, error in sorted(model.parse_failures.items()):
            report.failures.append(FileFailure(file=path, reason=str(error), is_error=True))
        options = EngineOptions(
            oop=False,
            analyze_uncalled=False,
            analyze_methods_standalone=False,
            unknown_call_policy="propagate",
            construct_kinds=PAPER_KINDS,  # Pixy: XSS and SQLi only
        )
        engine = TaintEngine(model, self.profile, options)
        for finding in engine.run():
            report.add_finding(finding)
        report.files_analyzed = len(model.files)
        report.loc_analyzed = model.total_loc
        return report

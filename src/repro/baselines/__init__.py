"""Baseline analyzers the paper compares phpSAFE against.

Behavioural reimplementations of the two free tools used in the
evaluation (Section IV.B step 3): RIPS (OOP-blind but robust and
inter-procedural) and Pixy (2007-era, OOP-fragile, register_globals).
"""

from .pixy import PixyLike
from .rips import RipsLike

__all__ = ["PixyLike", "RipsLike"]

"""Structured robustness-incident taxonomy (paper Section V.E).

The paper's robustness evaluation is a table of *incidents*: files RIPS
skipped, files Pixy crashed on, plugins that exhausted memory.  Our
pipeline originally folded all of those into ad-hoc
:class:`~repro.core.results.FileFailure` strings; this module gives them
a typed shape so a corpus run can report *how degraded* each result is.

An :class:`Incident` records

* which **stage** of the pipeline hit trouble (lexing, parsing, model
  construction, or taint analysis),
* how bad it was (:class:`IncidentSeverity`),
* whether the pipeline **recovered** (kept analyzing with a partial
  view) or had to skip the unit entirely,
* the file, the analysis *unit* (a function key or ``<main>`` walk), and
  the source-line span the incident covers.

Incidents flow from the lexer/parser (``recover=True`` mode), the model
builder, and the per-unit fault boundaries of the engine into
:class:`~repro.core.results.ToolReport.incidents`, and from there into
the batch telemetry JSON and the ``--show-incidents`` CLI surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict


class IncidentStage(str, Enum):
    """Pipeline stage where the incident occurred."""

    LEX = "lex"
    PARSE = "parse"
    MODEL = "model"
    ANALYSIS = "analysis"
    #: differential-testing oracle: two configurations that must agree
    #: produced different finding sets (see :mod:`repro.difftest`)
    DIFF = "diff"
    #: rule-pack loading/validation (see :mod:`repro.rules`): a pack
    #: file that failed schema validation or could not be read
    RULES = "rules"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class IncidentSeverity(str, Enum):
    """How much of the result the incident degraded.

    ``WARNING``: recovered locally, surrounding code fully analyzed.
    ``ERROR``: a whole unit (file or function) was skipped — also the
    severity of a difftest divergence, where one configuration's result
    is wrong but both runs completed.
    ``FATAL``: plugin-wide degradation (global step budget exhausted).
    """

    WARNING = "warning"
    ERROR = "error"
    FATAL = "fatal"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Incident:
    """One typed robustness incident."""

    stage: IncidentStage
    severity: IncidentSeverity
    file: str
    reason: str
    #: True when analysis continued with a partial view (panic-mode
    #: parser resync, per-unit fault boundary); False when the unit was
    #: skipped outright.
    recovered: bool = False
    #: analysis unit: a function key such as ``foo`` / ``Cls::bar``, or
    #: ``<main>`` for a top-level file walk.  Empty for file-level
    #: lex/parse/model incidents.
    unit: str = ""
    #: 1-based source line span the incident covers (0 = unknown).
    line: int = 0
    end_line: int = 0

    def describe(self) -> str:
        where = self.file
        if self.unit:
            where += f" [{self.unit}]"
        if self.line:
            where += f":{self.line}"
            if self.end_line and self.end_line != self.line:
                where += f"-{self.end_line}"
        status = "recovered" if self.recovered else "skipped"
        return f"{self.stage.value}/{self.severity.value} ({status}) {where}: {self.reason}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form for batch telemetry and review exports."""
        return {
            "stage": self.stage.value,
            "severity": self.severity.value,
            "file": self.file,
            "reason": self.reason,
            "recovered": self.recovered,
            "unit": self.unit,
            "line": self.line,
            "end_line": self.end_line,
        }

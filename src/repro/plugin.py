"""Plugin representation shared by analyzers, corpus and evaluation.

A *plugin* is what the paper's tools consume: a named collection of PHP
source files (the 35 WordPress plugins of the study, in 2012 and 2014
versions).  The in-memory form keeps ``{relative path: source}``; helpers
materialize to / load from a directory tree so the CLI can analyze real
plugin checkouts too.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from .php.lexer import count_loc


@dataclass
class Plugin:
    """A PHP plugin: a set of source files plus identifying metadata."""

    name: str
    version: str = ""
    files: Dict[str, str] = field(default_factory=dict)

    @property
    def slug(self) -> str:
        """Stable identifier, e.g. ``mail-subscribe-list@2.1.1``."""
        return f"{self.name}@{self.version}" if self.version else self.name

    @property
    def file_count(self) -> int:
        return len(self.files)

    @property
    def loc(self) -> int:
        """Total effective lines of code (Table III's KLOC basis)."""
        return sum(count_loc(source) for source in self.files.values())

    def add_file(self, path: str, source: str) -> None:
        self.files[path] = source

    def iter_files(self) -> Iterator[Tuple[str, str]]:
        """Yield ``(path, source)`` in deterministic path order."""
        for path in sorted(self.files):
            yield path, self.files[path]

    # -- persistence ------------------------------------------------------

    def write_to(self, root: str) -> str:
        """Materialize the plugin under ``root``; returns its directory."""
        plugin_dir = os.path.join(root, self.slug.replace("@", "-"))
        for path, source in self.files.items():
            full = os.path.join(plugin_dir, path)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as handle:
                handle.write(source)
        return plugin_dir

    @classmethod
    def load_from(cls, directory: str, name: str = "", version: str = "") -> "Plugin":
        """Load every ``.php`` file under ``directory``."""
        plugin = cls(
            name=name or os.path.basename(os.path.normpath(directory)), version=version
        )
        for dirpath, _dirnames, filenames in os.walk(directory):
            for filename in sorted(filenames):
                if not filename.endswith(".php"):
                    continue
                full = os.path.join(dirpath, filename)
                rel = os.path.relpath(full, directory)
                with open(full, "r", encoding="utf-8", errors="replace") as handle:
                    plugin.files[rel] = handle.read()
        return plugin

"""Canonical PHP source emission from the AST.

Used by round-trip tests (``parse(print(parse(src)))`` must be stable)
and by debugging helpers that show the analyzer's view of a file.
The output is valid PHP with normalized spacing; comments are not
preserved (the analyzer drops them during model construction anyway).
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast


def _escape_single(value: str) -> str:
    return value.replace("\\", "\\\\").replace("'", "\\'")


def _escape_double(value: str) -> str:
    out = value.replace("\\", "\\\\").replace('"', '\\"').replace("$", "\\$")
    return out.replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r")


class Printer:
    """Emit normalized PHP source for an AST."""

    def __init__(self, indent: str = "    ") -> None:
        self.indent_unit = indent

    # -- public API --------------------------------------------------------

    def print_file(self, node: ast.PhpFile) -> str:
        lines = ["<?php"]
        for statement in node.statements:
            lines.extend(self._stmt(statement, 0))
        return "\n".join(lines) + "\n"

    def print_statements(self, statements: List[ast.Statement]) -> str:
        lines: List[str] = []
        for statement in statements:
            lines.extend(self._stmt(statement, 0))
        return "\n".join(lines)

    def print_expr(self, expr: Optional[ast.Expr]) -> str:
        return self._expr(expr)

    # -- statements -----------------------------------------------------------

    def _block(self, statements: List[ast.Statement], depth: int) -> List[str]:
        pad = self.indent_unit * depth
        lines = [pad + "{"]
        for statement in statements:
            lines.extend(self._stmt(statement, depth + 1))
        lines.append(pad + "}")
        return lines

    def _stmt(self, node: ast.Statement, depth: int) -> List[str]:  # noqa: C901
        pad = self.indent_unit * depth
        if isinstance(node, ast.ExpressionStatement):
            return [pad + self._expr(node.expr) + ";"]
        if isinstance(node, ast.EchoStatement):
            return [pad + "echo " + ", ".join(self._expr(e) for e in node.exprs) + ";"]
        if isinstance(node, ast.InlineHTML):
            return [pad + "?>" + node.text + "<?php"]
        if isinstance(node, ast.Block):
            return self._block(node.statements, depth)
        if isinstance(node, ast.IfStatement):
            lines = [pad + f"if ({self._expr(node.cond)})"]
            lines.extend(self._block(node.then, depth))
            for clause in node.elseifs:
                lines.append(pad + f"elseif ({self._expr(clause.cond)})")
                lines.extend(self._block(clause.body, depth))
            if node.otherwise is not None:
                lines.append(pad + "else")
                lines.extend(self._block(node.otherwise, depth))
            return lines
        if isinstance(node, ast.WhileStatement):
            return [pad + f"while ({self._expr(node.cond)})"] + self._block(node.body, depth)
        if isinstance(node, ast.DoWhileStatement):
            lines = [pad + "do"]
            lines.extend(self._block(node.body, depth))
            lines[-1] += f" while ({self._expr(node.cond)});"
            return lines
        if isinstance(node, ast.ForStatement):
            head = (
                f"for ({', '.join(self._expr(e) for e in node.init)}; "
                f"{', '.join(self._expr(e) for e in node.cond)}; "
                f"{', '.join(self._expr(e) for e in node.update)})"
            )
            return [pad + head] + self._block(node.body, depth)
        if isinstance(node, ast.ForeachStatement):
            target = self._expr(node.value_var)
            if node.by_ref:
                target = "&" + target
            if node.key_var is not None:
                target = f"{self._expr(node.key_var)} => {target}"
            head = f"foreach ({self._expr(node.subject)} as {target})"
            return [pad + head] + self._block(node.body, depth)
        if isinstance(node, ast.SwitchStatement):
            lines = [pad + f"switch ({self._expr(node.subject)})", pad + "{"]
            for case in node.cases:
                if case.test is None:
                    lines.append(pad + self.indent_unit + "default:")
                else:
                    lines.append(pad + self.indent_unit + f"case {self._expr(case.test)}:")
                for statement in case.body:
                    lines.extend(self._stmt(statement, depth + 2))
            lines.append(pad + "}")
            return lines
        if isinstance(node, ast.BreakStatement):
            suffix = f" {node.level}" if node.level != 1 else ""
            return [pad + f"break{suffix};"]
        if isinstance(node, ast.ContinueStatement):
            suffix = f" {node.level}" if node.level != 1 else ""
            return [pad + f"continue{suffix};"]
        if isinstance(node, ast.ReturnStatement):
            if node.expr is None:
                return [pad + "return;"]
            return [pad + f"return {self._expr(node.expr)};"]
        if isinstance(node, ast.GlobalStatement):
            return [pad + "global " + ", ".join("$" + n for n in node.names) + ";"]
        if isinstance(node, ast.StaticVarStatement):
            parts = []
            for name, default in node.vars:
                part = "$" + name
                if default is not None:
                    part += " = " + self._expr(default)
                parts.append(part)
            return [pad + "static " + ", ".join(parts) + ";"]
        if isinstance(node, ast.UnsetStatement):
            return [pad + "unset(" + ", ".join(self._expr(v) for v in node.vars) + ");"]
        if isinstance(node, ast.ThrowStatement):
            return [pad + f"throw {self._expr(node.expr)};"]
        if isinstance(node, ast.TryStatement):
            lines = [pad + "try"]
            lines.extend(self._block(node.body, depth))
            for catch in node.catches:
                var = f" ${catch.var_name}" if catch.var_name else ""
                lines.append(pad + f"catch ({catch.class_name}{var})")
                lines.extend(self._block(catch.body, depth))
            if node.finally_body is not None:
                lines.append(pad + "finally")
                lines.extend(self._block(node.finally_body, depth))
            return lines
        if isinstance(node, ast.FunctionDecl):
            amp = "&" if node.by_ref else ""
            head = f"function {amp}{node.name}({self._params(node.params)})"
            return [pad + head] + self._block(node.body, depth)
        if isinstance(node, ast.ClassDecl):
            return self._class_decl(node, depth)
        if isinstance(node, ast.NamespaceStatement):
            if node.body is None:
                return [pad + f"namespace {node.name};"]
            return [pad + f"namespace {node.name}"] + self._block(node.body, depth)
        if isinstance(node, ast.UseStatement):
            alias = f" as {node.alias}" if node.alias else ""
            return [pad + f"use {node.name}{alias};"]
        if isinstance(node, ast.ConstStatement):
            parts = [f"{name} = {self._expr(value)}" for name, value in node.consts]
            return [pad + "const " + ", ".join(parts) + ";"]
        if isinstance(node, ast.DeclareStatement):
            directives = ", ".join(f"{n}={self._expr(v)}" for n, v in node.directives)
            head = pad + f"declare({directives})"
            if node.body is None:
                return [head + ";"]
            return [head] + self._block(node.body, depth)
        if isinstance(node, ast.GotoStatement):
            return [pad + f"goto {node.label};"]
        if isinstance(node, ast.LabelStatement):
            return [pad + f"{node.name}:"]
        if isinstance(node, ast.ErrorStmt):
            # panic-mode recovery placeholder: the skipped source is gone,
            # so the best round-trip is a comment documenting the hole
            return [pad + f"/* parse error (recovered): {node.reason} */"]
        raise TypeError(f"cannot print statement {type(node).__name__}")

    def _params(self, params: List[ast.Param]) -> str:
        parts = []
        for param in params:
            part = ""
            if param.type_hint:
                part += param.type_hint + " "
            if param.by_ref:
                part += "&"
            part += "$" + param.name
            if param.default is not None:
                part += " = " + self._expr(param.default)
            parts.append(part)
        return ", ".join(parts)

    def _class_decl(self, node: ast.ClassDecl, depth: int) -> List[str]:
        pad = self.indent_unit * depth
        head = ""
        if node.is_abstract:
            head += "abstract "
        if node.is_final:
            head += "final "
        head += f"{node.kind} {node.name}"
        if node.parent:
            head += f" extends {node.parent}"
        if node.interfaces:
            joiner = " implements " if node.kind == "class" else ", "
            head += joiner + ", ".join(node.interfaces)
        lines = [pad + head, pad + "{"]
        inner = self.indent_unit * (depth + 1)
        for use in node.uses:
            lines.append(inner + f"use {use};")
        for const in node.constants:
            lines.append(inner + f"const {const.name} = {self._expr(const.value)};")
        for prop in node.properties:
            part = prop.visibility
            if prop.static:
                part += " static"
            part += " $" + prop.name
            if prop.default is not None:
                part += " = " + self._expr(prop.default)
            lines.append(inner + part + ";")
        for method in node.methods:
            modifiers = []
            if method.abstract:
                modifiers.append("abstract")
            if method.final:
                modifiers.append("final")
            modifiers.append(method.visibility)
            if method.static:
                modifiers.append("static")
            amp = "&" if method.by_ref else ""
            head = (
                " ".join(modifiers)
                + f" function {amp}{method.name}({self._params(method.params)})"
            )
            if method.body is None:
                lines.append(inner + head + ";")
            else:
                lines.append(inner + head)
                lines.extend(self._block(method.body, depth + 1))
        lines.append(pad + "}")
        return lines

    # -- expressions -------------------------------------------------------------

    def _expr(self, node: Optional[ast.Expr]) -> str:  # noqa: C901
        if node is None:
            return ""
        if isinstance(node, ast.Variable):
            return "$" + node.name
        if isinstance(node, ast.VariableVariable):
            return "${" + self._expr(node.expr) + "}"
        if isinstance(node, ast.Literal):
            return self._literal(node)
        if isinstance(node, ast.InterpolatedString):
            return '"' + self._interp_body(node.parts) + '"'
        if isinstance(node, ast.ShellExec):
            return "`" + self._interp_body(node.parts) + "`"
        if isinstance(node, ast.ArrayLiteral):
            parts = []
            for item in node.items:
                text = self._expr(item.value)
                if item.by_ref:
                    text = "&" + text
                if item.key is not None:
                    text = f"{self._expr(item.key)} => {text}"
                parts.append(text)
            return "array(" + ", ".join(parts) + ")"
        if isinstance(node, ast.ArrayAccess):
            index = self._expr(node.index) if node.index is not None else ""
            return f"{self._expr(node.array)}[{index}]"
        if isinstance(node, ast.PropertyAccess):
            name = node.name if isinstance(node.name, str) else "{" + self._expr(node.name) + "}"
            return f"{self._expr(node.object)}->{name}"
        if isinstance(node, ast.StaticPropertyAccess):
            return f"{node.class_name}::${node.name}"
        if isinstance(node, ast.ClassConstAccess):
            return f"{node.class_name}::{node.name}"
        if isinstance(node, ast.ConstFetch):
            return node.name
        if isinstance(node, ast.FunctionCall):
            name = node.name if isinstance(node.name, str) else self._expr(node.name)
            return f"{name}({self._args(node.args)})"
        if isinstance(node, ast.MethodCall):
            method = (
                node.method
                if isinstance(node.method, str)
                else "{" + self._expr(node.method) + "}"
            )
            return f"{self._expr(node.object)}->{method}({self._args(node.args)})"
        if isinstance(node, ast.StaticCall):
            method = (
                node.method
                if isinstance(node.method, str)
                else self._expr(node.method)
            )
            return f"{node.class_name}::{method}({self._args(node.args)})"
        if isinstance(node, ast.New):
            name = (
                node.class_name
                if isinstance(node.class_name, str)
                else self._expr(node.class_name)
            )
            return f"new {name}({self._args(node.args)})"
        if isinstance(node, ast.Clone):
            return f"clone {self._expr(node.expr)}"
        if isinstance(node, ast.Assignment):
            op = node.op
            if node.by_ref:
                op = "=&"
            return f"{self._expr(node.target)} {op} {self._expr(node.value)}"
        if isinstance(node, ast.Binary):
            return f"({self._expr(node.left)} {node.op} {self._expr(node.right)})"
        if isinstance(node, ast.Unary):
            if node.op == "throw":
                return f"throw {self._expr(node.operand)}"
            return f"{node.op}{self._expr(node.operand)}"
        if isinstance(node, ast.Ternary):
            if node.if_true is None:
                return f"({self._expr(node.cond)} ?: {self._expr(node.if_false)})"
            return (
                f"({self._expr(node.cond)} ? {self._expr(node.if_true)}"
                f" : {self._expr(node.if_false)})"
            )
        if isinstance(node, ast.Cast):
            return f"({node.to}){self._expr(node.operand)}"
        if isinstance(node, ast.IncDec):
            if node.prefix:
                return f"{node.op}{self._expr(node.target)}"
            return f"{self._expr(node.target)}{node.op}"
        if isinstance(node, ast.IssetExpr):
            return "isset(" + ", ".join(self._expr(v) for v in node.vars) + ")"
        if isinstance(node, ast.EmptyExpr):
            return f"empty({self._expr(node.expr)})"
        if isinstance(node, ast.ListExpr):
            return "list(" + ", ".join(
                self._expr(t) if t is not None else "" for t in node.targets
            ) + ")"
        if isinstance(node, ast.Closure):
            head = "static function" if node.static else "function"
            amp = "&" if node.by_ref else ""
            text = f"{head} {amp}({self._params(node.params)})"
            if node.uses:
                uses = ", ".join(("&" if u.by_ref else "") + "$" + u.name for u in node.uses)
                text += f" use ({uses})"
            body = Printer(self.indent_unit)._block(node.body, 0)
            return text + " " + " ".join(line.strip() for line in body)
        if isinstance(node, ast.IncludeExpr):
            return f"{node.kind} {self._expr(node.path)}"
        if isinstance(node, ast.ExitExpr):
            if node.expr is None:
                return "exit"
            return f"exit({self._expr(node.expr)})"
        if isinstance(node, ast.PrintExpr):
            return f"print {self._expr(node.expr)}"
        if isinstance(node, ast.InstanceofExpr):
            name = (
                node.class_name
                if isinstance(node.class_name, str)
                else self._expr(node.class_name)
            )
            return f"({self._expr(node.expr)} instanceof {name})"
        raise TypeError(f"cannot print expression {type(node).__name__}")

    def _args(self, args: List[ast.Expr]) -> str:
        return ", ".join(self._expr(a) for a in args)

    def _literal(self, node: ast.Literal) -> str:
        value = node.value
        if isinstance(value, bool):
            return "true" if value else "false"
        if value is None:
            return "null"
        if isinstance(value, (int, float)):
            return repr(value)
        return "'" + _escape_single(str(value)) + "'"

    def _interp_body(self, parts: List[ast.Expr]) -> str:
        out: List[str] = []
        for part in parts:
            if isinstance(part, ast.Literal):
                out.append(_escape_double(str(part.value)))
            else:
                out.append("{" + self._expr(part) + "}")
        return "".join(out)


def print_file(node: ast.PhpFile) -> str:
    """Render a parsed file back to normalized PHP source."""
    return Printer().print_file(node)


def print_expr(node: Optional[ast.Expr]) -> str:
    """Render a single expression to PHP source."""
    return Printer().print_expr(node)

"""Markup-context analysis for XSS sinks.

Section II notes that RIPS "performs a context-sensitive string
analysis based on the current markup context".  The exploitability and
the correct remediation of an XSS flow depend on *where inside the HTML*
the tainted value lands:

- element text (``<p>HERE</p>``) — escape with ``esc_html``;
- a quoted attribute value (``value="HERE"``) — ``esc_attr``;
- a URL attribute (``href="HERE"``) — ``esc_url``;
- a ``<script>`` block or event handler — ``esc_js``;
- an unquoted attribute — exploitable without any quote break.

:func:`context_at_end` runs a small HTML state machine over the literal
markup emitted *before* the tainted value and reports the context the
injection lands in.  The engine threads this through XSS findings and
the auto-fixer picks the matching sanitizer.
"""

from __future__ import annotations

import enum
import re
from typing import Optional


class MarkupContext(enum.Enum):
    """Where inside the HTML output an injected value lands."""

    HTML_TEXT = "html"  # between tags
    ATTRIBUTE = "attribute"  # inside a quoted attribute value
    ATTRIBUTE_UNQUOTED = "attribute-unquoted"
    URL_ATTRIBUTE = "url"  # href/src/action/formaction value
    SCRIPT = "script"  # inside <script> ... </script>
    STYLE = "style"  # inside <style> ... </style>
    COMMENT = "comment"  # inside <!-- ... -->
    TAG = "tag"  # inside a tag but not in a value

    @property
    def recommended_sanitizer(self) -> str:
        """The WordPress escaping function for this context."""
        return _SANITIZERS[self]


_SANITIZERS = {
    MarkupContext.HTML_TEXT: "esc_html",
    MarkupContext.ATTRIBUTE: "esc_attr",
    MarkupContext.ATTRIBUTE_UNQUOTED: "esc_attr",
    MarkupContext.URL_ATTRIBUTE: "esc_url",
    MarkupContext.SCRIPT: "esc_js",
    MarkupContext.STYLE: "esc_attr",
    MarkupContext.COMMENT: "esc_html",
    MarkupContext.TAG: "esc_attr",
}

_URL_ATTRIBUTES = frozenset({"href", "src", "action", "formaction", "data"})


def context_at_end(markup: str) -> MarkupContext:
    """The markup context immediately after emitting ``markup``.

    A linear scan with the states an HTML tokenizer distinguishes:
    text, tag, attribute name, quoted/unquoted attribute value, raw-text
    elements (script/style) and comments.
    """
    state = MarkupContext.HTML_TEXT
    index = 0
    quote: Optional[str] = None
    current_attr = ""
    raw_element = ""  # "script" or "style" while inside one

    while index < len(markup):
        char = markup[index]

        if state is MarkupContext.COMMENT:
            if markup.startswith("-->", index):
                state = MarkupContext.HTML_TEXT
                index += 3
                continue
            index += 1
            continue

        if state in (MarkupContext.SCRIPT, MarkupContext.STYLE):
            closer = f"</{raw_element}"
            if markup[index:index + len(closer)].lower() == closer:
                state = MarkupContext.TAG
                raw_element = ""
                index += len(closer)
                continue
            index += 1
            continue

        if state is MarkupContext.HTML_TEXT:
            if markup.startswith("<!--", index):
                state = MarkupContext.COMMENT
                index += 4
                continue
            if char == "<":
                state = MarkupContext.TAG
                current_attr = ""
                match = re.match(r"</?\s*([a-zA-Z][a-zA-Z0-9]*)", markup[index:])
                raw_element = match.group(1).lower() if match else ""
                index += 1
                continue
            index += 1
            continue

        if state is MarkupContext.TAG:
            if char == ">":
                if raw_element in ("script", "style") and not markup[
                    :index
                ].rstrip().endswith("/"):
                    state = (
                        MarkupContext.SCRIPT
                        if raw_element == "script"
                        else MarkupContext.STYLE
                    )
                else:
                    state = MarkupContext.HTML_TEXT
                    raw_element = ""
                index += 1
                continue
            if char == "=":
                # capture the attribute name to the left of `=`
                left = re.search(r"([a-zA-Z_:][\w:.-]*)\s*$", markup[:index])
                current_attr = left.group(1).lower() if left else ""
                # find what follows: quote or bare value
                rest = markup[index + 1:]
                stripped = rest.lstrip()
                offset = len(rest) - len(stripped)
                if stripped[:1] in ("'", '"'):
                    quote = stripped[0]
                    state = (
                        MarkupContext.URL_ATTRIBUTE
                        if current_attr in _URL_ATTRIBUTES
                        else MarkupContext.ATTRIBUTE
                    )
                    index += 1 + offset + 1
                    continue
                state = MarkupContext.ATTRIBUTE_UNQUOTED
                index += 1 + offset
                continue
            index += 1
            continue

        if state in (
            MarkupContext.ATTRIBUTE,
            MarkupContext.URL_ATTRIBUTE,
        ):
            if char == quote:
                state = MarkupContext.TAG
                quote = None
                current_attr = ""
            index += 1
            continue

        if state is MarkupContext.ATTRIBUTE_UNQUOTED:
            if char in " \t\n>":
                state = MarkupContext.TAG if char != ">" else MarkupContext.HTML_TEXT
                current_attr = ""
                if char == ">":
                    index += 1
                    continue
            index += 1
            continue

        index += 1  # pragma: no cover - defensive

    # event handlers are script contexts even though they are attributes
    if state in (MarkupContext.ATTRIBUTE, MarkupContext.ATTRIBUTE_UNQUOTED):
        if current_attr.startswith("on"):
            return MarkupContext.SCRIPT
    return state


def sanitizer_for(markup_prefix: str) -> str:
    """Convenience: the recommended sanitizer after ``markup_prefix``."""
    return context_at_end(markup_prefix).recommended_sanitizer

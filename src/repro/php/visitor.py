"""Generic AST visitor and transformer framework.

:func:`~repro.php.ast_nodes.walk` gives flat iteration; this module adds
the structured traversal downstream tools want: ``NodeVisitor`` with
``visit_<NodeType>`` dispatch (like :mod:`ast` in the standard library)
and ``NodeTransformer`` for rewriting — the mechanism behind custom
lint rules, metrics collectors, and source-to-source passes on the PHP
AST.
"""

from __future__ import annotations

from typing import Any, List, Optional

from . import ast_nodes as ast


def iter_child_nodes(node: ast.Node):
    """Yield the direct AST-node children of ``node``."""
    for name in node.__walk_fields__:
        value = getattr(node, name)
        if isinstance(value, ast.Node):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, ast.Node):
                    yield item
                elif isinstance(item, (list, tuple)):
                    for sub in item:
                        if isinstance(sub, ast.Node):
                            yield sub


class NodeVisitor:
    """Dispatch ``visit_<ClassName>`` per node; default recurses.

    Subclass and implement the handlers you care about::

        class EchoCounter(NodeVisitor):
            count = 0
            def visit_EchoStatement(self, node):
                self.count += 1
                self.generic_visit(node)
    """

    def visit(self, node: ast.Node) -> Any:
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: ast.Node) -> None:
        for child in iter_child_nodes(node):
            self.visit(child)


class NodeTransformer(NodeVisitor):
    """Rewriting traversal: handlers return the replacement node.

    Returning the received node keeps it; returning a different node
    substitutes it; returning ``None`` from a statement handler removes
    the statement from its containing list.
    """

    def generic_visit(self, node: ast.Node) -> ast.Node:  # type: ignore[override]
        for name in node.__node_fields__:
            value = getattr(node, name)
            if isinstance(value, ast.Node):
                setattr(node, name, self.visit(value))
            elif isinstance(value, list):
                new_items: List[Any] = []
                for item in value:
                    if isinstance(item, ast.Node):
                        replacement = self.visit(item)
                        if replacement is not None:
                            new_items.append(replacement)
                    else:
                        new_items.append(item)
                setattr(node, name, new_items)
        return node


class FunctionCollector(NodeVisitor):
    """Example visitor: collect function/method names with line numbers."""

    def __init__(self) -> None:
        self.functions: List[tuple] = []
        self._class: Optional[str] = None

    def visit_ClassDecl(self, node: ast.ClassDecl) -> None:
        previous = self._class
        self._class = node.name
        self.generic_visit(node)
        self._class = previous

    def visit_FunctionDecl(self, node: ast.FunctionDecl) -> None:
        self.functions.append((node.name, node.line, None))
        self.generic_visit(node)

    def visit_MethodDecl(self, node: ast.MethodDecl) -> None:
        self.functions.append((node.name, node.line, self._class))
        self.generic_visit(node)


class CallGraphCollector(NodeVisitor):
    """Example visitor: (caller, callee) edges for plain function calls."""

    def __init__(self) -> None:
        self.edges: List[tuple] = []
        self._caller = "<main>"

    def visit_FunctionDecl(self, node: ast.FunctionDecl) -> None:
        previous = self._caller
        self._caller = node.name
        self.generic_visit(node)
        self._caller = previous

    def visit_FunctionCall(self, node: ast.FunctionCall) -> None:
        if isinstance(node.name, str):
            self.edges.append((self._caller, node.name))
        self.generic_visit(node)

"""PHP token taxonomy.

phpSAFE's model-construction stage is built on the output of PHP's
``token_get_all`` function (paper, Section III.B): each token is either a
``(token id, value, line)`` triple or a bare one-character string carrying
code semantics (``;``, ``{``, ``=`` ...).  This module reproduces that
taxonomy in Python: :class:`TokenType` mirrors the ``T_*`` identifiers the
paper names explicitly (``T_VARIABLE``, ``T_GLOBAL``, ``T_RETURN``,
``T_IF``, ``T_OBJECT_OPERATOR``, ``T_DOUBLE_COLON`` ...) and
:class:`Token` is the triple.

Single-character punctuation is represented as a :class:`Token` whose type
is :attr:`TokenType.CHAR` and whose value is the character itself, which
keeps the stream homogeneous while preserving PHP's "bare string" tokens.
"""

from __future__ import annotations

import enum


class TokenType(enum.Enum):
    """Token identifiers mirroring PHP's ``T_*`` constants.

    The subset implemented covers every construct the phpSAFE analysis
    stage dispatches on (paper Section III.C) plus the rest of the PHP 5
    language surface needed to lex real plugin code.

    Members are singletons, so identity hashing is correct — and it
    runs in the C slot instead of ``Enum.__hash__``, which matters for
    the token-type dispatch dicts on the lexer/parser hot path.
    """

    __hash__ = object.__hash__

    # ---- structure ----------------------------------------------------
    INLINE_HTML = "T_INLINE_HTML"
    OPEN_TAG = "T_OPEN_TAG"
    OPEN_TAG_WITH_ECHO = "T_OPEN_TAG_WITH_ECHO"
    CLOSE_TAG = "T_CLOSE_TAG"
    WHITESPACE = "T_WHITESPACE"
    COMMENT = "T_COMMENT"
    DOC_COMMENT = "T_DOC_COMMENT"

    # ---- literals & identifiers ---------------------------------------
    VARIABLE = "T_VARIABLE"
    STRING = "T_STRING"  # identifiers: function/class/const names
    LNUMBER = "T_LNUMBER"
    DNUMBER = "T_DNUMBER"
    CONSTANT_ENCAPSED_STRING = "T_CONSTANT_ENCAPSED_STRING"
    ENCAPSED_AND_WHITESPACE = "T_ENCAPSED_AND_WHITESPACE"
    START_HEREDOC = "T_START_HEREDOC"
    END_HEREDOC = "T_END_HEREDOC"
    CURLY_OPEN = "T_CURLY_OPEN"  # {$  inside double-quoted strings
    DOLLAR_OPEN_CURLY_BRACES = "T_DOLLAR_OPEN_CURLY_BRACES"  # ${ inside strings
    NUM_STRING = "T_NUM_STRING"

    # ---- keywords ------------------------------------------------------
    ABSTRACT = "T_ABSTRACT"
    ARRAY = "T_ARRAY"
    AS = "T_AS"
    BREAK = "T_BREAK"
    CASE = "T_CASE"
    CATCH = "T_CATCH"
    CLASS = "T_CLASS"
    CLONE = "T_CLONE"
    CONST = "T_CONST"
    CONTINUE = "T_CONTINUE"
    DECLARE = "T_DECLARE"
    DEFAULT = "T_DEFAULT"
    DO = "T_DO"
    ECHO = "T_ECHO"
    ELSE = "T_ELSE"
    ELSEIF = "T_ELSEIF"
    EMPTY = "T_EMPTY"
    ENDDECLARE = "T_ENDDECLARE"
    ENDFOR = "T_ENDFOR"
    ENDFOREACH = "T_ENDFOREACH"
    ENDIF = "T_ENDIF"
    ENDSWITCH = "T_ENDSWITCH"
    ENDWHILE = "T_ENDWHILE"
    EXIT = "T_EXIT"
    EXTENDS = "T_EXTENDS"
    FINAL = "T_FINAL"
    FOR = "T_FOR"
    FOREACH = "T_FOREACH"
    FUNCTION = "T_FUNCTION"
    GLOBAL = "T_GLOBAL"
    GOTO = "T_GOTO"
    IF = "T_IF"
    IMPLEMENTS = "T_IMPLEMENTS"
    INCLUDE = "T_INCLUDE"
    INCLUDE_ONCE = "T_INCLUDE_ONCE"
    INSTANCEOF = "T_INSTANCEOF"
    INTERFACE = "T_INTERFACE"
    ISSET = "T_ISSET"
    LIST = "T_LIST"
    LOGICAL_AND = "T_LOGICAL_AND"  # and
    LOGICAL_OR = "T_LOGICAL_OR"  # or
    LOGICAL_XOR = "T_LOGICAL_XOR"  # xor
    NAMESPACE = "T_NAMESPACE"
    NEW = "T_NEW"
    PRINT = "T_PRINT"
    PRIVATE = "T_PRIVATE"
    PROTECTED = "T_PROTECTED"
    PUBLIC = "T_PUBLIC"
    REQUIRE = "T_REQUIRE"
    REQUIRE_ONCE = "T_REQUIRE_ONCE"
    RETURN = "T_RETURN"
    STATIC = "T_STATIC"
    SWITCH = "T_SWITCH"
    THROW = "T_THROW"
    TRAIT = "T_TRAIT"
    TRY = "T_TRY"
    UNSET = "T_UNSET"
    USE = "T_USE"
    VAR = "T_VAR"
    WHILE = "T_WHILE"

    # ---- operators -----------------------------------------------------
    AND_EQUAL = "T_AND_EQUAL"  # &=
    BOOLEAN_AND = "T_BOOLEAN_AND"  # &&
    BOOLEAN_OR = "T_BOOLEAN_OR"  # ||
    COALESCE = "T_COALESCE"  # ??
    COALESCE_EQUAL = "T_COALESCE_EQUAL"  # ??=
    CONCAT_EQUAL = "T_CONCAT_EQUAL"  # .=
    DEC = "T_DEC"  # --
    DIV_EQUAL = "T_DIV_EQUAL"  # /=
    DOUBLE_ARROW = "T_DOUBLE_ARROW"  # =>
    DOUBLE_COLON = "T_DOUBLE_COLON"  # ::
    INC = "T_INC"  # ++
    IS_EQUAL = "T_IS_EQUAL"  # ==
    IS_GREATER_OR_EQUAL = "T_IS_GREATER_OR_EQUAL"  # >=
    IS_IDENTICAL = "T_IS_IDENTICAL"  # ===
    IS_NOT_EQUAL = "T_IS_NOT_EQUAL"  # != or <>
    IS_NOT_IDENTICAL = "T_IS_NOT_IDENTICAL"  # !==
    IS_SMALLER_OR_EQUAL = "T_IS_SMALLER_OR_EQUAL"  # <=
    MINUS_EQUAL = "T_MINUS_EQUAL"  # -=
    MOD_EQUAL = "T_MOD_EQUAL"  # %=
    MUL_EQUAL = "T_MUL_EQUAL"  # *=
    OBJECT_OPERATOR = "T_OBJECT_OPERATOR"  # ->
    OR_EQUAL = "T_OR_EQUAL"  # |=
    PLUS_EQUAL = "T_PLUS_EQUAL"  # +=
    POW = "T_POW"  # **
    SL = "T_SL"  # <<
    SL_EQUAL = "T_SL_EQUAL"  # <<=
    SR = "T_SR"  # >>
    SR_EQUAL = "T_SR_EQUAL"  # >>=
    XOR_EQUAL = "T_XOR_EQUAL"  # ^=

    # ---- casts ----------------------------------------------------------
    ARRAY_CAST = "T_ARRAY_CAST"
    BOOL_CAST = "T_BOOL_CAST"
    DOUBLE_CAST = "T_DOUBLE_CAST"
    INT_CAST = "T_INT_CAST"
    OBJECT_CAST = "T_OBJECT_CAST"
    STRING_CAST = "T_STRING_CAST"
    UNSET_CAST = "T_UNSET_CAST"

    # ---- misc ------------------------------------------------------------
    FILE = "T_FILE"
    LINE = "T_LINE"
    DIR = "T_DIR"
    FUNC_C = "T_FUNC_C"
    CLASS_C = "T_CLASS_C"
    METHOD_C = "T_METHOD_C"
    NS_SEPARATOR = "T_NS_SEPARATOR"  # \
    ELLIPSIS = "T_ELLIPSIS"  # ...
    HALT_COMPILER = "T_HALT_COMPILER"

    # bare one-character token ("code semantics" strings in the paper)
    CHAR = "CHAR"

    # end of stream sentinel (not a PHP token)
    EOF = "EOF"


#: Mapping from PHP keyword spelling (lower-cased) to its token type.
KEYWORDS = {
    "abstract": TokenType.ABSTRACT,
    "and": TokenType.LOGICAL_AND,
    "array": TokenType.ARRAY,
    "as": TokenType.AS,
    "break": TokenType.BREAK,
    "case": TokenType.CASE,
    "catch": TokenType.CATCH,
    "class": TokenType.CLASS,
    "clone": TokenType.CLONE,
    "const": TokenType.CONST,
    "continue": TokenType.CONTINUE,
    "declare": TokenType.DECLARE,
    "default": TokenType.DEFAULT,
    "die": TokenType.EXIT,
    "do": TokenType.DO,
    "echo": TokenType.ECHO,
    "else": TokenType.ELSE,
    "elseif": TokenType.ELSEIF,
    "empty": TokenType.EMPTY,
    "enddeclare": TokenType.ENDDECLARE,
    "endfor": TokenType.ENDFOR,
    "endforeach": TokenType.ENDFOREACH,
    "endif": TokenType.ENDIF,
    "endswitch": TokenType.ENDSWITCH,
    "endwhile": TokenType.ENDWHILE,
    "exit": TokenType.EXIT,
    "extends": TokenType.EXTENDS,
    "final": TokenType.FINAL,
    "for": TokenType.FOR,
    "foreach": TokenType.FOREACH,
    "function": TokenType.FUNCTION,
    "global": TokenType.GLOBAL,
    "goto": TokenType.GOTO,
    "if": TokenType.IF,
    "implements": TokenType.IMPLEMENTS,
    "include": TokenType.INCLUDE,
    "include_once": TokenType.INCLUDE_ONCE,
    "instanceof": TokenType.INSTANCEOF,
    "interface": TokenType.INTERFACE,
    "isset": TokenType.ISSET,
    "list": TokenType.LIST,
    "namespace": TokenType.NAMESPACE,
    "new": TokenType.NEW,
    "or": TokenType.LOGICAL_OR,
    "print": TokenType.PRINT,
    "private": TokenType.PRIVATE,
    "protected": TokenType.PROTECTED,
    "public": TokenType.PUBLIC,
    "require": TokenType.REQUIRE,
    "require_once": TokenType.REQUIRE_ONCE,
    "return": TokenType.RETURN,
    "static": TokenType.STATIC,
    "switch": TokenType.SWITCH,
    "throw": TokenType.THROW,
    "trait": TokenType.TRAIT,
    "try": TokenType.TRY,
    "unset": TokenType.UNSET,
    "use": TokenType.USE,
    "var": TokenType.VAR,
    "while": TokenType.WHILE,
    "xor": TokenType.LOGICAL_XOR,
    "__file__": TokenType.FILE,
    "__line__": TokenType.LINE,
    "__dir__": TokenType.DIR,
    "__function__": TokenType.FUNC_C,
    "__class__": TokenType.CLASS_C,
    "__method__": TokenType.METHOD_C,
    "__halt_compiler": TokenType.HALT_COMPILER,
}

#: Multi-character operators, longest first so the lexer can scan greedily.
OPERATORS = [
    ("<<=", TokenType.SL_EQUAL),
    (">>=", TokenType.SR_EQUAL),
    ("===", TokenType.IS_IDENTICAL),
    ("!==", TokenType.IS_NOT_IDENTICAL),
    ("...", TokenType.ELLIPSIS),
    ("??=", TokenType.COALESCE_EQUAL),
    ("**", TokenType.POW),
    ("??", TokenType.COALESCE),
    ("==", TokenType.IS_EQUAL),
    ("!=", TokenType.IS_NOT_EQUAL),
    ("<>", TokenType.IS_NOT_EQUAL),
    ("<=", TokenType.IS_SMALLER_OR_EQUAL),
    (">=", TokenType.IS_GREATER_OR_EQUAL),
    ("&&", TokenType.BOOLEAN_AND),
    ("||", TokenType.BOOLEAN_OR),
    ("->", TokenType.OBJECT_OPERATOR),
    ("=>", TokenType.DOUBLE_ARROW),
    ("::", TokenType.DOUBLE_COLON),
    ("++", TokenType.INC),
    ("--", TokenType.DEC),
    ("+=", TokenType.PLUS_EQUAL),
    ("-=", TokenType.MINUS_EQUAL),
    ("*=", TokenType.MUL_EQUAL),
    ("/=", TokenType.DIV_EQUAL),
    (".=", TokenType.CONCAT_EQUAL),
    ("%=", TokenType.MOD_EQUAL),
    ("&=", TokenType.AND_EQUAL),
    ("|=", TokenType.OR_EQUAL),
    ("^=", TokenType.XOR_EQUAL),
    ("<<", TokenType.SL),
    (">>", TokenType.SR),
]

#: Cast spellings recognized inside ``( ... )`` — e.g. ``(int)$x``.
CASTS = {
    "int": TokenType.INT_CAST,
    "integer": TokenType.INT_CAST,
    "bool": TokenType.BOOL_CAST,
    "boolean": TokenType.BOOL_CAST,
    "float": TokenType.DOUBLE_CAST,
    "double": TokenType.DOUBLE_CAST,
    "real": TokenType.DOUBLE_CAST,
    "string": TokenType.STRING_CAST,
    "array": TokenType.ARRAY_CAST,
    "object": TokenType.OBJECT_CAST,
    "unset": TokenType.UNSET_CAST,
}


class Token:
    """One lexical token: the paper's ``[id, value, line]`` triple.

    A hand-rolled immutable class rather than a frozen dataclass: token
    streams are the analyzer's highest-volume allocation, so instances
    are slotted, and the hash (tokens key dedup/memo dicts, but most
    tokens are never hashed at all) is computed lazily on first use and
    cached instead of being paid eagerly in ``__init__``.
    """

    __slots__ = ("type", "value", "line", "_hash")

    def __init__(
        self, type: TokenType, value: str, line: int, _set=object.__setattr__
    ) -> None:
        # _set is a default-arg cache of object.__setattr__: this is the
        # hottest constructor in the tool, and the custom __setattr__
        # below forces every slot write through the object protocol
        _set(self, "type", type)
        _set(self, "value", value)
        _set(self, "line", line)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"Token is immutable; cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Token is immutable; cannot delete {name!r}")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Token:
            return NotImplemented
        return (
            self.type is other.type
            and self.value == other.value
            and self.line == other.line
        )

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash((self.type, self.value, self.line))
            object.__setattr__(self, "_hash", value)
            return value

    def __reduce__(self):  # __setattr__ blocks default slot unpickling
        return (Token, (self.type, self.value, self.line))

    def is_char(self, char: str) -> bool:
        """True when this is the bare one-character token ``char``."""
        return self.type is TokenType.CHAR and self.value == char

    @property
    def name(self) -> str:
        """The PHP ``token_name``-style identifier (e.g. ``T_VARIABLE``)."""
        return self.type.value

    def __repr__(self) -> str:  # compact, mirrors the paper's example
        return f"[{self.name}, {self.value!r}, {self.line}]"


#: Token types that carry no program semantics and are dropped when the
#: model-construction stage "cleans the AST by removing comments and extra
#: whitespaces" (paper Section III.B).
TRIVIA = frozenset(
    {
        TokenType.WHITESPACE,
        TokenType.COMMENT,
        TokenType.DOC_COMMENT,
    }
)

"""Recursive-descent parser from PHP tokens to the AST of :mod:`ast_nodes`.

The parser consumes the *significant* token stream (whitespace and
comments already dropped — the paper's model-construction cleaning step)
and produces a :class:`~repro.php.ast_nodes.PhpFile`.

It covers the PHP 5 subset real WordPress plugins are written in:
procedural code, full OOP (classes, interfaces, traits, properties,
methods, static members, inheritance), both brace and alternative
(``if: ... endif;``) statement syntaxes, string interpolation, heredocs,
closures, and ``include``/``require``.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..incidents import Incident, IncidentSeverity, IncidentStage
from . import ast_nodes as ast
from .errors import PhpParseError
from .lexer import tokenize_significant
from .tokens import Token, TokenType

#: statement-starting keywords the panic-mode recovery resynchronizes on
#: (in addition to ``;`` and ``}`` statement boundaries)
_SYNC_TOKENS = frozenset(
    {
        TokenType.IF,
        TokenType.WHILE,
        TokenType.DO,
        TokenType.FOR,
        TokenType.FOREACH,
        TokenType.SWITCH,
        TokenType.RETURN,
        TokenType.GLOBAL,
        TokenType.ECHO,
        TokenType.FUNCTION,
        TokenType.CLASS,
        TokenType.INTERFACE,
        TokenType.TRAIT,
        TokenType.TRY,
        TokenType.THROW,
        TokenType.NAMESPACE,
        TokenType.UNSET,
        TokenType.BREAK,
        TokenType.CONTINUE,
        TokenType.OPEN_TAG,
        TokenType.OPEN_TAG_WITH_ECHO,
        TokenType.CLOSE_TAG,
        TokenType.INLINE_HTML,
    }
)

# Binary operator precedence, PHP manual order (higher binds tighter).
# `??` sits between `||` and the ternary and is right-associative —
# handled in the main binary loop rather than a dedicated ladder level.
_BINARY_PRECEDENCE = {
    "or": 1,
    "xor": 2,
    "and": 3,
    "??": 4,
    "||": 5,
    "&&": 6,
    "|": 7,
    "^": 8,
    "&": 9,
    "==": 10,
    "!=": 10,
    "===": 10,
    "!==": 10,
    "<>": 10,
    "<": 11,
    "<=": 11,
    ">": 11,
    ">=": 11,
    "<<": 12,
    ">>": 12,
    "+": 13,
    "-": 13,
    ".": 13,
    "*": 14,
    "/": 14,
    "%": 14,
    "instanceof": 16,
    "**": 17,
}

_RIGHT_ASSOC = {"**", "??"}

_COMPOUND_ASSIGN = {
    TokenType.PLUS_EQUAL: "+",
    TokenType.MINUS_EQUAL: "-",
    TokenType.MUL_EQUAL: "*",
    TokenType.DIV_EQUAL: "/",
    TokenType.CONCAT_EQUAL: ".",
    TokenType.MOD_EQUAL: "%",
    TokenType.AND_EQUAL: "&",
    TokenType.OR_EQUAL: "|",
    TokenType.XOR_EQUAL: "^",
    TokenType.SL_EQUAL: "<<",
    TokenType.SR_EQUAL: ">>",
    TokenType.COALESCE_EQUAL: "??",
}

_BINARY_TOKEN_SPELLING = {
    TokenType.COALESCE: "??",
    TokenType.BOOLEAN_AND: "&&",
    TokenType.BOOLEAN_OR: "||",
    TokenType.LOGICAL_AND: "and",
    TokenType.LOGICAL_OR: "or",
    TokenType.LOGICAL_XOR: "xor",
    TokenType.IS_EQUAL: "==",
    TokenType.IS_NOT_EQUAL: "!=",
    TokenType.IS_IDENTICAL: "===",
    TokenType.IS_NOT_IDENTICAL: "!==",
    TokenType.IS_SMALLER_OR_EQUAL: "<=",
    TokenType.IS_GREATER_OR_EQUAL: ">=",
    TokenType.SL: "<<",
    TokenType.SR: ">>",
    TokenType.POW: "**",
    TokenType.INSTANCEOF: "instanceof",
}

_CAST_NAMES = {
    TokenType.INT_CAST: "int",
    TokenType.BOOL_CAST: "bool",
    TokenType.DOUBLE_CAST: "float",
    TokenType.STRING_CAST: "string",
    TokenType.ARRAY_CAST: "array",
    TokenType.OBJECT_CAST: "object",
    TokenType.UNSET_CAST: "unset",
}

_INCLUDE_KINDS = {
    TokenType.INCLUDE: "include",
    TokenType.INCLUDE_ONCE: "include_once",
    TokenType.REQUIRE: "require",
    TokenType.REQUIRE_ONCE: "require_once",
}

# Non-CHAR token types that introduce a prefix form in `_parse_unary`.
# Anything else skips straight to the postfix/primary ladder.
_UNARY_PREFIX_TYPES = frozenset(_CAST_NAMES) | frozenset(_INCLUDE_KINDS) | {
    TokenType.INC,
    TokenType.DEC,
    TokenType.PRINT,
    TokenType.THROW,
    TokenType.NEW,
    TokenType.CLONE,
    TokenType.EXIT,
}

_DOUBLE_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "v": "\v",
    "f": "\f",
    "e": "\x1b",
    "\\": "\\",
    "$": "$",
    '"': '"',
    "0": "\0",
}


def unescape_single_quoted(raw: str) -> str:
    """Decode the contents of a single-quoted PHP string literal."""
    body = raw[1:-1]
    out: List[str] = []
    index = 0
    while index < len(body):
        char = body[index]
        if char == "\\" and index + 1 < len(body) and body[index + 1] in ("\\", "'"):
            out.append(body[index + 1])
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def unescape_double_quoted(body: str) -> str:
    """Decode escape sequences of a double-quoted PHP string body."""
    out: List[str] = []
    index = 0
    while index < len(body):
        char = body[index]
        if char == "\\" and index + 1 < len(body):
            nxt = body[index + 1]
            if nxt in _DOUBLE_ESCAPES:
                out.append(_DOUBLE_ESCAPES[nxt])
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


class Parser:
    """One-pass recursive-descent parser with precedence climbing."""

    def __init__(
        self, tokens: List[Token], filename: str = "<string>", recover: bool = False
    ) -> None:
        # an EOF sentinel closes the stream so every ``tokens[pos]``
        # access in the hot path is a plain list index with no bounds
        # check or Token construction
        if not tokens or tokens[-1].type is not TokenType.EOF:
            tokens = list(tokens)
            tokens.append(Token(TokenType.EOF, "", tokens[-1].line if tokens else 0))
        self.tokens = tokens
        self.filename = filename
        self.pos = 0
        #: with ``recover=True``, a :class:`PhpParseError` inside a
        #: statement triggers panic-mode resynchronization instead of
        #: aborting the file: the parser skips to the next statement
        #: boundary, emits an :class:`~repro.php.ast_nodes.ErrorStmt`,
        #: and records the incident here
        self.recover = recover
        self.incidents: List[Incident] = []

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = self.pos + offset
        tokens = self.tokens
        return tokens[index] if index < len(tokens) else tokens[-1]

    def _next(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _at(self, type_: TokenType) -> bool:
        return self.tokens[self.pos].type is type_

    def _at_char(self, char: str) -> bool:
        token = self.tokens[self.pos]
        return token.type is TokenType.CHAR and token.value == char

    def _accept(self, type_: TokenType) -> Optional[Token]:
        token = self.tokens[self.pos]
        if token.type is type_:
            self.pos += 1
            return token
        return None

    def _accept_char(self, char: str) -> Optional[Token]:
        token = self.tokens[self.pos]
        if token.type is TokenType.CHAR and token.value == char:
            self.pos += 1
            return token
        return None

    def _expect(self, type_: TokenType) -> Token:
        token = self.tokens[self.pos]
        if token.type is not type_:
            raise PhpParseError(
                f"expected {type_.value}, found {token.name} {token.value!r}",
                self.filename,
                token.line,
            )
        self.pos += 1
        return token

    def _expect_char(self, char: str) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.CHAR or token.value != char:
            raise PhpParseError(
                f"expected {char!r}, found {token.name} {token.value!r}",
                self.filename,
                token.line,
            )
        self.pos += 1
        return token

    def _error(self, message: str) -> PhpParseError:
        return PhpParseError(message, self.filename, self.tokens[self.pos].line)

    # -- entry point ----------------------------------------------------------

    def parse_file(self) -> ast.PhpFile:
        statements: List[ast.Statement] = []
        while not self._at(TokenType.EOF):
            statement = self._parse_statement_recovering()
            if statement is not None:
                statements.append(statement)
        return ast.PhpFile(line=1, filename=self.filename, statements=statements)

    def _parse_statement_recovering(self) -> Optional[ast.Statement]:
        """Parse one statement; in recover mode, resync on parse errors."""
        if not self.recover:
            return self._parse_statement()
        start = self.pos
        try:
            return self._parse_statement()
        except PhpParseError as error:
            return self._recover_statement(start, error)

    def _recover_statement(self, start: int, error: PhpParseError) -> ast.ErrorStmt:
        """Panic-mode recovery: skip to the next statement boundary.

        Discards tokens from the failed statement until a ``;`` (consumed),
        a ``}`` closing the enclosing block (left for the caller), or the
        next statement-starting keyword, balancing any brackets opened
        along the way.  Emits an :class:`~repro.php.ast_nodes.ErrorStmt`
        covering the skipped span and records a recovered parse incident.
        """
        start_token = self.tokens[start] if start < len(self.tokens) else self._peek()
        if self.pos <= start:
            self.pos = start
            self._next()  # guarantee forward progress on the very first token
        depth = 0
        while not self._at(TokenType.EOF):
            token = self._peek()
            if token.is_char("{") or token.is_char("(") or token.is_char("["):
                depth += 1
            elif token.is_char(")") or token.is_char("]"):
                if depth > 0:
                    depth -= 1
            elif token.is_char("}"):
                if depth == 0:
                    break  # the enclosing block's closer: leave it
                depth -= 1
            elif depth == 0:
                if token.is_char(";"):
                    self._next()  # the boundary belongs to the bad statement
                    break
                if token.type in _SYNC_TOKENS:
                    break
            self._next()
        end_line = (
            self.tokens[self.pos - 1].line
            if 0 < self.pos <= len(self.tokens)
            else start_token.line
        )
        self.incidents.append(
            Incident(
                stage=IncidentStage.PARSE,
                severity=IncidentSeverity.WARNING,
                file=self.filename,
                reason=error.message,
                recovered=True,
                line=start_token.line,
                end_line=end_line,
            )
        )
        return ast.ErrorStmt(
            line=start_token.line,
            reason=error.message,
            end_line=end_line,
            tokens_skipped=self.pos - start,
        )

    # -- statements -------------------------------------------------------------

    def _parse_statement(self) -> Optional[ast.Statement]:  # noqa: C901
        token = self._peek()
        type_ = token.type

        if type_ in (TokenType.OPEN_TAG,):
            self._next()
            return None
        if type_ is TokenType.OPEN_TAG_WITH_ECHO:
            self._next()
            return self._parse_echo_tail(token.line)
        if type_ is TokenType.CLOSE_TAG:
            self._next()
            return None
        if type_ is TokenType.INLINE_HTML:
            self._next()
            return ast.InlineHTML(line=token.line, text=token.value)
        if token.is_char(";"):
            self._next()
            return None
        if token.is_char("{"):
            self._next()
            body = self._parse_statement_list_until("}")
            self._expect_char("}")
            return ast.Block(line=token.line, statements=body)

        if type_ is TokenType.ECHO:
            self._next()
            return self._parse_echo_tail(token.line)
        if type_ is TokenType.IF:
            return self._parse_if()
        if type_ is TokenType.WHILE:
            return self._parse_while()
        if type_ is TokenType.DO:
            return self._parse_do_while()
        if type_ is TokenType.FOR:
            return self._parse_for()
        if type_ is TokenType.FOREACH:
            return self._parse_foreach()
        if type_ is TokenType.SWITCH:
            return self._parse_switch()
        if type_ is TokenType.BREAK:
            return self._parse_break_continue(ast.BreakStatement)
        if type_ is TokenType.CONTINUE:
            return self._parse_break_continue(ast.ContinueStatement)
        if type_ is TokenType.RETURN:
            self._next()
            expr = None
            if not self._at_char(";") and not self._at(TokenType.CLOSE_TAG):
                expr = self._parse_expression()
            self._end_statement()
            return ast.ReturnStatement(line=token.line, expr=expr)
        if type_ is TokenType.GLOBAL:
            return self._parse_global()
        if type_ is TokenType.STATIC and self._peek(1).type is TokenType.VARIABLE:
            return self._parse_static_vars()
        if type_ is TokenType.UNSET:
            return self._parse_unset()
        if type_ is TokenType.THROW:
            self._next()
            expr = self._parse_expression()
            self._end_statement()
            return ast.ThrowStatement(line=token.line, expr=expr)
        if type_ is TokenType.TRY:
            return self._parse_try()
        if type_ is TokenType.FUNCTION and self._is_function_declaration():
            return self._parse_function_declaration()
        if type_ in (TokenType.ABSTRACT, TokenType.FINAL):
            return self._parse_class_declaration()
        if type_ in (TokenType.CLASS, TokenType.INTERFACE, TokenType.TRAIT):
            return self._parse_class_declaration()
        if type_ is TokenType.NAMESPACE:
            return self._parse_namespace()
        if type_ is TokenType.USE:
            return self._parse_use()
        if type_ is TokenType.CONST:
            return self._parse_const()
        if type_ is TokenType.DECLARE:
            return self._parse_declare()
        if type_ is TokenType.GOTO:
            self._next()
            label = self._expect(TokenType.STRING).value
            self._end_statement()
            return ast.GotoStatement(line=token.line, label=label)
        if (
            type_ is TokenType.STRING
            and self._peek(1).is_char(":")
            and not self._peek(2).is_char(":")
        ):
            self._next()
            self._next()
            return ast.LabelStatement(line=token.line, name=token.value)

        expr = self._parse_expression()
        self._end_statement()
        return ast.ExpressionStatement(line=token.line, expr=expr)

    def _end_statement(self) -> None:
        """Consume the terminating ``;`` (a ``?>`` also terminates)."""
        if self._accept_char(";"):
            return
        if self._at(TokenType.CLOSE_TAG) or self._at(TokenType.EOF):
            return
        raise self._error(
            f"expected ';', found {self._peek().name} {self._peek().value!r}"
        )

    def _parse_statement_list_until(self, *closers: str) -> List[ast.Statement]:
        """Parse statements until a closing char token or closing keyword."""
        closer_types = {
            TokenType.ENDIF,
            TokenType.ENDWHILE,
            TokenType.ENDFOR,
            TokenType.ENDFOREACH,
            TokenType.ENDSWITCH,
            TokenType.ENDDECLARE,
            TokenType.ELSE,
            TokenType.ELSEIF,
            TokenType.CASE,
            TokenType.DEFAULT,
        }
        statements: List[ast.Statement] = []
        while True:
            token = self.tokens[self.pos]
            type_ = token.type
            if type_ is TokenType.EOF:
                break
            if type_ is TokenType.CHAR and token.value in closers:
                break
            if closers and not closers[0] == "}" and type_ in closer_types:
                break
            if closers == ("}",) and type_ in (
                TokenType.CASE,
                TokenType.DEFAULT,
                TokenType.ENDSWITCH,
            ):
                break
            statement = self._parse_statement_recovering()
            if statement is not None:
                statements.append(statement)
        return statements

    def _parse_body(self, *end_keywords: TokenType) -> List[ast.Statement]:
        """Parse a statement body: ``{...}``, ``: ... endX;`` or single stmt."""
        if self._at_char("{"):
            self._next()
            body = self._parse_statement_list_until("}")
            self._expect_char("}")
            return body
        if self._at_char(":"):
            self._next()
            body: List[ast.Statement] = []
            stop = set(end_keywords) | {TokenType.ELSE, TokenType.ELSEIF}
            while not self._at(TokenType.EOF) and self._peek().type not in stop:
                statement = self._parse_statement_recovering()
                if statement is not None:
                    body.append(statement)
            return body
        statement = self._parse_statement()
        return [statement] if statement is not None else []

    # -- control flow --------------------------------------------------------

    def _parse_echo_tail(self, line: int) -> ast.EchoStatement:
        exprs = [self._parse_expression()]
        while self._accept_char(","):
            exprs.append(self._parse_expression())
        self._end_statement()
        return ast.EchoStatement(line=line, exprs=exprs)

    def _parse_paren_expression(self) -> ast.Expr:
        self._expect_char("(")
        expr = self._parse_expression()
        self._expect_char(")")
        return expr

    def _parse_if(self) -> ast.IfStatement:
        line = self._expect(TokenType.IF).line
        cond = self._parse_paren_expression()
        alternative = self._at_char(":")
        then = self._parse_body(TokenType.ENDIF)
        elseifs: List[ast.ElseIfClause] = []
        otherwise: Optional[List[ast.Statement]] = None
        while True:
            if self._at(TokenType.ELSEIF):
                clause_line = self._next().line
                clause_cond = self._parse_paren_expression()
                clause_body = self._parse_body(TokenType.ENDIF)
                elseifs.append(
                    ast.ElseIfClause(line=clause_line, cond=clause_cond, body=clause_body)
                )
                continue
            if self._at(TokenType.ELSE) and self._peek(1).type is TokenType.IF:
                # `else if` treated as elseif with a nested parse
                clause_line = self._next().line
                self._next()
                clause_cond = self._parse_paren_expression()
                clause_body = self._parse_body(TokenType.ENDIF)
                elseifs.append(
                    ast.ElseIfClause(line=clause_line, cond=clause_cond, body=clause_body)
                )
                continue
            if self._at(TokenType.ELSE):
                self._next()
                otherwise = self._parse_body(TokenType.ENDIF)
            break
        if alternative:
            self._expect(TokenType.ENDIF)
            self._end_statement()
        return ast.IfStatement(
            line=line, cond=cond, then=then, elseifs=elseifs, otherwise=otherwise
        )

    def _parse_while(self) -> ast.WhileStatement:
        line = self._expect(TokenType.WHILE).line
        cond = self._parse_paren_expression()
        alternative = self._at_char(":")
        body = self._parse_body(TokenType.ENDWHILE)
        if alternative:
            self._expect(TokenType.ENDWHILE)
            self._end_statement()
        return ast.WhileStatement(line=line, cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhileStatement:
        line = self._expect(TokenType.DO).line
        body = self._parse_body()
        self._expect(TokenType.WHILE)
        cond = self._parse_paren_expression()
        self._end_statement()
        return ast.DoWhileStatement(line=line, body=body, cond=cond)

    def _parse_expr_list_until(self, *closers: str) -> List[ast.Expr]:
        exprs: List[ast.Expr] = []
        if any(self._at_char(closer) for closer in closers):
            return exprs
        exprs.append(self._parse_expression())
        while self._accept_char(","):
            exprs.append(self._parse_expression())
        return exprs

    def _parse_for(self) -> ast.ForStatement:
        line = self._expect(TokenType.FOR).line
        self._expect_char("(")
        init = self._parse_expr_list_until(";")
        self._expect_char(";")
        cond = self._parse_expr_list_until(";")
        self._expect_char(";")
        update = self._parse_expr_list_until(")")
        self._expect_char(")")
        alternative = self._at_char(":")
        body = self._parse_body(TokenType.ENDFOR)
        if alternative:
            self._expect(TokenType.ENDFOR)
            self._end_statement()
        return ast.ForStatement(line=line, init=init, cond=cond, update=update, body=body)

    def _parse_foreach(self) -> ast.ForeachStatement:
        line = self._expect(TokenType.FOREACH).line
        self._expect_char("(")
        subject = self._parse_expression()
        self._expect(TokenType.AS)
        by_ref = self._accept_char("&") is not None
        first = self._parse_expression()
        key_var: Optional[ast.Expr] = None
        value_var = first
        if self._accept(TokenType.DOUBLE_ARROW):
            key_var = first
            by_ref = self._accept_char("&") is not None
            value_var = self._parse_expression()
        self._expect_char(")")
        alternative = self._at_char(":")
        body = self._parse_body(TokenType.ENDFOREACH)
        if alternative:
            self._expect(TokenType.ENDFOREACH)
            self._end_statement()
        return ast.ForeachStatement(
            line=line,
            subject=subject,
            key_var=key_var,
            value_var=value_var,
            by_ref=by_ref,
            body=body,
        )

    def _parse_switch(self) -> ast.SwitchStatement:
        line = self._expect(TokenType.SWITCH).line
        subject = self._parse_paren_expression()
        alternative = False
        if self._accept_char("{"):
            pass
        elif self._accept_char(":"):
            alternative = True
        else:
            raise self._error("expected '{' or ':' after switch (...)")
        cases: List[ast.SwitchCase] = []
        while not self._at(TokenType.EOF):
            if self._at_char("}") or self._at(TokenType.ENDSWITCH):
                break
            if self._accept_char(";"):
                continue
            token = self._peek()
            if token.type is TokenType.CASE:
                self._next()
                test: Optional[ast.Expr] = self._parse_expression()
            elif token.type is TokenType.DEFAULT:
                self._next()
                test = None
            else:
                raise self._error(f"expected case/default, found {token.name}")
            if not self._accept_char(":"):
                self._accept_char(";")
            body = self._parse_statement_list_until("}")
            cases.append(ast.SwitchCase(line=token.line, test=test, body=body))
        if alternative:
            self._expect(TokenType.ENDSWITCH)
            self._end_statement()
        else:
            self._expect_char("}")
        return ast.SwitchStatement(line=line, subject=subject, cases=cases)

    def _parse_break_continue(self, cls) -> ast.Statement:
        token = self._next()
        level = 1
        if self._at(TokenType.LNUMBER):
            level = int(self._next().value, 0)
        self._end_statement()
        return cls(line=token.line, level=level)

    def _parse_global(self) -> ast.GlobalStatement:
        line = self._expect(TokenType.GLOBAL).line
        names = [self._expect(TokenType.VARIABLE).value[1:]]
        while self._accept_char(","):
            names.append(self._expect(TokenType.VARIABLE).value[1:])
        self._end_statement()
        return ast.GlobalStatement(line=line, names=names)

    def _parse_static_vars(self) -> ast.StaticVarStatement:
        line = self._expect(TokenType.STATIC).line
        vars_: List = []
        while True:
            name = self._expect(TokenType.VARIABLE).value[1:]
            default = None
            if self._accept_char("="):
                default = self._parse_expression()
            vars_.append((name, default))
            if not self._accept_char(","):
                break
        self._end_statement()
        return ast.StaticVarStatement(line=line, vars=vars_)

    def _parse_unset(self) -> ast.UnsetStatement:
        line = self._expect(TokenType.UNSET).line
        self._expect_char("(")
        vars_ = self._parse_expr_list_until(")")
        self._expect_char(")")
        self._end_statement()
        return ast.UnsetStatement(line=line, vars=vars_)

    def _parse_try(self) -> ast.TryStatement:
        line = self._expect(TokenType.TRY).line
        self._expect_char("{")
        body = self._parse_statement_list_until("}")
        self._expect_char("}")
        catches: List[ast.CatchClause] = []
        finally_body: Optional[List[ast.Statement]] = None
        while self._at(TokenType.CATCH):
            catch_line = self._next().line
            self._expect_char("(")
            class_name = self._parse_qualified_name()
            var_token = self._accept(TokenType.VARIABLE)
            var_name = var_token.value[1:] if var_token else ""
            self._expect_char(")")
            self._expect_char("{")
            catch_body = self._parse_statement_list_until("}")
            self._expect_char("}")
            catches.append(
                ast.CatchClause(
                    line=catch_line, class_name=class_name, var_name=var_name, body=catch_body
                )
            )
        if self._at(TokenType.STRING) and self._peek().value.lower() == "finally":
            self._next()
            self._expect_char("{")
            finally_body = self._parse_statement_list_until("}")
            self._expect_char("}")
        return ast.TryStatement(
            line=line, body=body, catches=catches, finally_body=finally_body
        )

    # -- declarations -----------------------------------------------------------

    def _is_function_declaration(self) -> bool:
        """Distinguish ``function name(...)`` from a closure expression."""
        offset = 1
        if self._peek(offset).is_char("&"):
            offset += 1
        return self._peek(offset).type is TokenType.STRING

    def _parse_qualified_name(self) -> str:
        """Parse a possibly namespace-qualified name into one string."""
        parts: List[str] = []
        if self._accept(TokenType.NS_SEPARATOR):
            pass
        while True:
            token = self._peek()
            if token.type in (TokenType.STRING, TokenType.ARRAY, TokenType.STATIC):
                parts.append(self._next().value)
            else:
                break
            if not self._accept(TokenType.NS_SEPARATOR):
                break
        if not parts:
            raise self._error(f"expected name, found {self._peek().name}")
        return "\\".join(parts)

    def _parse_params(self) -> List[ast.Param]:
        self._expect_char("(")
        params: List[ast.Param] = []
        while not self._at_char(")") and not self._at(TokenType.EOF):
            line = self._peek().line
            type_hint: Optional[str] = None
            if self._at(TokenType.STRING) or self._at(TokenType.NS_SEPARATOR):
                type_hint = self._parse_qualified_name()
            elif self._at(TokenType.ARRAY):
                type_hint = self._next().value
            by_ref = self._accept_char("&") is not None
            self._accept(TokenType.ELLIPSIS)
            name = self._expect(TokenType.VARIABLE).value[1:]
            default = None
            if self._accept_char("="):
                default = self._parse_expression()
            params.append(
                ast.Param(
                    line=line, name=name, default=default, by_ref=by_ref, type_hint=type_hint
                )
            )
            if not self._accept_char(","):
                break
        self._expect_char(")")
        return params

    def _parse_function_declaration(self) -> ast.FunctionDecl:
        line = self._expect(TokenType.FUNCTION).line
        by_ref = self._accept_char("&") is not None
        name = self._expect(TokenType.STRING).value
        params = self._parse_params()
        self._expect_char("{")
        body = self._parse_statement_list_until("}")
        self._expect_char("}")
        return ast.FunctionDecl(line=line, name=name, params=params, body=body, by_ref=by_ref)

    def _parse_class_declaration(self) -> ast.ClassDecl:
        is_abstract = False
        is_final = False
        while True:
            if self._accept(TokenType.ABSTRACT):
                is_abstract = True
            elif self._accept(TokenType.FINAL):
                is_final = True
            else:
                break
        token = self._peek()
        if token.type is TokenType.CLASS:
            kind = "class"
        elif token.type is TokenType.INTERFACE:
            kind = "interface"
        elif token.type is TokenType.TRAIT:
            kind = "trait"
        else:
            raise self._error(f"expected class/interface/trait, found {token.name}")
        line = self._next().line
        name = self._expect(TokenType.STRING).value
        parent: Optional[str] = None
        interfaces: List[str] = []
        if self._accept(TokenType.EXTENDS):
            parent = self._parse_qualified_name()
            # interfaces may extend several parents; keep the first, record rest
            while self._accept_char(","):
                interfaces.append(self._parse_qualified_name())
        if self._accept(TokenType.IMPLEMENTS):
            interfaces.append(self._parse_qualified_name())
            while self._accept_char(","):
                interfaces.append(self._parse_qualified_name())
        self._expect_char("{")
        decl = ast.ClassDecl(
            line=line,
            name=name,
            parent=parent,
            interfaces=interfaces,
            kind=kind,
            is_abstract=is_abstract,
            is_final=is_final,
        )
        while not self._at_char("}") and not self._at(TokenType.EOF):
            self._parse_class_member(decl)
        self._expect_char("}")
        return decl

    def _parse_class_member(self, decl: ast.ClassDecl) -> None:  # noqa: C901
        if self._accept_char(";"):
            return
        if self._at(TokenType.USE):
            self._next()
            decl.uses.append(self._parse_qualified_name())
            while self._accept_char(","):
                decl.uses.append(self._parse_qualified_name())
            if self._accept_char("{"):
                while not self._accept_char("}") and not self._at(TokenType.EOF):
                    self._next()
            else:
                self._end_statement()
            return
        if self._at(TokenType.CONST):
            self._next()
            while True:
                const_line = self._peek().line
                const_name = self._expect(TokenType.STRING).value
                self._expect_char("=")
                value = self._parse_expression()
                decl.constants.append(
                    ast.ClassConstDecl(line=const_line, name=const_name, value=value)
                )
                if not self._accept_char(","):
                    break
            self._end_statement()
            return

        visibility = "public"
        static = False
        abstract = False
        final = False
        while True:
            token = self._peek()
            if token.type in (TokenType.PUBLIC, TokenType.VAR):
                visibility = "public"
                self._next()
            elif token.type is TokenType.PROTECTED:
                visibility = "protected"
                self._next()
            elif token.type is TokenType.PRIVATE:
                visibility = "private"
                self._next()
            elif token.type is TokenType.STATIC:
                static = True
                self._next()
            elif token.type is TokenType.ABSTRACT:
                abstract = True
                self._next()
            elif token.type is TokenType.FINAL:
                final = True
                self._next()
            else:
                break

        if self._at(TokenType.FUNCTION):
            line = self._next().line
            by_ref = self._accept_char("&") is not None
            name_token = self._peek()
            if name_token.type is TokenType.STRING or name_token.type.value.startswith("T_"):
                name = self._next().value
            else:
                raise self._error("expected method name")
            params = self._parse_params()
            body: Optional[List[ast.Statement]] = None
            if self._accept_char("{"):
                body = self._parse_statement_list_until("}")
                self._expect_char("}")
            else:
                self._end_statement()
            decl.methods.append(
                ast.MethodDecl(
                    line=line,
                    name=name,
                    params=params,
                    body=body,
                    visibility=visibility,
                    static=static,
                    abstract=abstract,
                    final=final,
                    by_ref=by_ref,
                )
            )
            return

        if self._at(TokenType.VARIABLE):
            while True:
                line = self._peek().line
                name = self._expect(TokenType.VARIABLE).value[1:]
                default = None
                if self._accept_char("="):
                    default = self._parse_expression()
                decl.properties.append(
                    ast.PropertyDecl(
                        line=line,
                        name=name,
                        default=default,
                        visibility=visibility,
                        static=static,
                    )
                )
                if not self._accept_char(","):
                    break
            self._end_statement()
            return

        raise self._error(f"unexpected token in class body: {self._peek().name}")

    def _parse_namespace(self) -> ast.NamespaceStatement:
        line = self._expect(TokenType.NAMESPACE).line
        name = ""
        if self._at(TokenType.STRING):
            name = self._parse_qualified_name()
        if self._accept_char("{"):
            body = self._parse_statement_list_until("}")
            self._expect_char("}")
            return ast.NamespaceStatement(line=line, name=name, body=body)
        self._end_statement()
        return ast.NamespaceStatement(line=line, name=name, body=None)

    def _parse_use(self) -> ast.UseStatement:
        line = self._expect(TokenType.USE).line
        name = self._parse_qualified_name()
        alias = None
        if self._accept(TokenType.AS):
            alias = self._expect(TokenType.STRING).value
        while self._accept_char(","):
            self._parse_qualified_name()
            if self._accept(TokenType.AS):
                self._expect(TokenType.STRING)
        self._end_statement()
        return ast.UseStatement(line=line, name=name, alias=alias)

    def _parse_const(self) -> ast.ConstStatement:
        line = self._expect(TokenType.CONST).line
        consts: List = []
        while True:
            name = self._expect(TokenType.STRING).value
            self._expect_char("=")
            value = self._parse_expression()
            consts.append((name, value))
            if not self._accept_char(","):
                break
        self._end_statement()
        return ast.ConstStatement(line=line, consts=consts)

    def _parse_declare(self) -> ast.DeclareStatement:
        line = self._expect(TokenType.DECLARE).line
        self._expect_char("(")
        directives: List = []
        while not self._at_char(")"):
            name = self._expect(TokenType.STRING).value
            self._expect_char("=")
            value = self._parse_expression()
            directives.append((name, value))
            if not self._accept_char(","):
                break
        self._expect_char(")")
        body: Optional[List[ast.Statement]] = None
        if self._accept_char("{"):
            body = self._parse_statement_list_until("}")
            self._expect_char("}")
        else:
            self._accept_char(";")
        return ast.DeclareStatement(line=line, directives=directives, body=body)

    # -- expressions ---------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        # `and`/`or`/`xor` bind looser than `=` in PHP, so they sit
        # above the assignment level.
        left = self._parse_assignment()
        while True:
            token = self.tokens[self.pos]
            type_ = token.type
            if type_ is TokenType.LOGICAL_AND:
                op = "and"
            elif type_ is TokenType.LOGICAL_OR:
                op = "or"
            elif type_ is TokenType.LOGICAL_XOR:
                op = "xor"
            else:
                return left
            self.pos += 1
            right = self._parse_assignment()
            left = ast.Binary(line=token.line, op=op, left=left, right=right)

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        token = self.tokens[self.pos]
        if token.type is TokenType.CHAR:
            if token.value != "=":
                return left
            self.pos += 1
            by_ref = self._accept_char("&") is not None
            value = self._parse_assignment()
            return ast.Assignment(
                line=token.line, target=left, value=value, op="=", by_ref=by_ref
            )
        compound = _COMPOUND_ASSIGN.get(token.type)
        if compound is not None:
            self.pos += 1
            value = self._parse_assignment()
            return ast.Assignment(
                line=token.line,
                target=left,
                value=value,
                op=compound + "=",
            )
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(4)
        token = self.tokens[self.pos]
        if token.type is TokenType.CHAR and token.value == "?":
            line = token.line
            self.pos += 1
            if self._accept_char(":"):
                if_false = self._parse_assignment()
                return ast.Ternary(line=line, cond=cond, if_true=None, if_false=if_false)
            if_true = self._parse_assignment()
            self._expect_char(":")
            if_false = self._parse_assignment()
            return ast.Ternary(line=line, cond=cond, if_true=if_true, if_false=if_false)
        return cond

    def _binary_op_at(self) -> Optional[str]:
        token = self.tokens[self.pos]
        if token.type is TokenType.CHAR and token.value in "+-*/%.&|^<>":
            # exclude chars that terminate expressions
            return token.value
        return _BINARY_TOKEN_SPELLING.get(token.type)

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        tokens = self.tokens
        precedence_get = _BINARY_PRECEDENCE.get
        spelling_get = _BINARY_TOKEN_SPELLING.get
        while True:
            token = tokens[self.pos]
            type_ = token.type
            if type_ is TokenType.CHAR:
                op = token.value
                if op not in "+-*/%.&|^<>":
                    # exclude chars that terminate expressions
                    return left
            else:
                op = spelling_get(type_)
                if op is None:
                    return left
            precedence = precedence_get(op)
            if precedence is None or precedence < min_precedence:
                return left
            self.pos += 1
            if op == "instanceof":
                class_name: Union[str, ast.Expr]
                if self._at(TokenType.STRING) or self._at(TokenType.NS_SEPARATOR):
                    class_name = self._parse_qualified_name()
                else:
                    class_name = self._parse_unary()
                left = ast.InstanceofExpr(line=token.line, expr=left, class_name=class_name)
                continue
            next_min = precedence if op in _RIGHT_ASSOC else precedence + 1
            right = self._parse_binary(next_min)
            left = ast.Binary(line=token.line, op=op, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self.tokens[self.pos]
        type_ = token.type
        if type_ is TokenType.CHAR:
            value = token.value
            if value == "!" or value == "-" or value == "+" or value == "~":
                self.pos += 1
                operand = self._parse_unary()
                return ast.Unary(line=token.line, op=value, operand=operand)
            if value == "@":
                self.pos += 1
                operand = self._parse_unary()
                return ast.Unary(line=token.line, op="@", operand=operand)
            return self._parse_postfix_operators(self._parse_primary())
        if type_ not in _UNARY_PREFIX_TYPES:
            return self._parse_postfix_operators(self._parse_primary())
        if type_ in _CAST_NAMES:
            self.pos += 1
            operand = self._parse_unary()
            return ast.Cast(line=token.line, to=_CAST_NAMES[type_], operand=operand)
        if type_ is TokenType.INC or type_ is TokenType.DEC:
            self.pos += 1
            target = self._parse_unary()
            return ast.IncDec(line=token.line, op=token.value, target=target, prefix=True)
        if type_ in _INCLUDE_KINDS:
            self.pos += 1
            path = self._parse_expression()
            return ast.IncludeExpr(line=token.line, kind=_INCLUDE_KINDS[type_], path=path)
        if type_ is TokenType.PRINT:
            self.pos += 1
            expr = self._parse_expression()
            return ast.PrintExpr(line=token.line, expr=expr)
        if type_ is TokenType.THROW:
            self.pos += 1
            expr = self._parse_expression()
            return ast.Unary(line=token.line, op="throw", operand=expr)
        if type_ is TokenType.NEW:
            return self._parse_new()
        if type_ is TokenType.CLONE:
            self.pos += 1
            expr = self._parse_unary()
            return ast.Clone(line=token.line, expr=expr)
        if type_ is TokenType.EXIT:
            self.pos += 1
            expr = None
            if self._accept_char("("):
                if not self._at_char(")"):
                    expr = self._parse_expression()
                self._expect_char(")")
            return ast.ExitExpr(line=token.line, expr=expr)
        return self._parse_postfix()

    def _parse_new(self) -> ast.Expr:
        line = self._expect(TokenType.NEW).line
        class_name: Union[str, ast.Expr]
        if self._at(TokenType.STRING) or self._at(TokenType.NS_SEPARATOR) or self._at(
            TokenType.STATIC
        ):
            class_name = self._parse_qualified_name()
        elif self._at(TokenType.VARIABLE):
            class_name = self._parse_postfix()
        else:
            raise self._error("expected class name after new")
        args: List[ast.Expr] = []
        if self._at_char("("):
            args = self._parse_call_args()
        node: ast.Expr = ast.New(line=line, class_name=class_name, args=args)
        return self._parse_postfix_operators(node)

    def _parse_call_args(self) -> List[ast.Expr]:
        self._expect_char("(")
        args: List[ast.Expr] = []
        while not self._at_char(")") and not self._at(TokenType.EOF):
            self._accept_char("&")  # call-time pass-by-reference (PHP4 style)
            self._accept(TokenType.ELLIPSIS)
            args.append(self._parse_expression())
            if not self._accept_char(","):
                break
        self._expect_char(")")
        return args

    def _parse_postfix(self) -> ast.Expr:
        node = self._parse_primary()
        return self._parse_postfix_operators(node)

    def _parse_postfix_operators(self, node: ast.Expr) -> ast.Expr:  # noqa: C901
        tokens = self.tokens
        while True:
            token = tokens[self.pos]
            type_ = token.type
            if type_ is TokenType.CHAR:
                value = token.value
                if value == "[":
                    self.pos += 1
                    index: Optional[ast.Expr] = None
                    if not self._at_char("]"):
                        index = self._parse_expression()
                    self._expect_char("]")
                    node = ast.ArrayAccess(line=token.line, array=node, index=index)
                    continue
                if value == "(" and isinstance(
                    node, (ast.Variable, ast.ArrayAccess, ast.PropertyAccess)
                ):
                    args = self._parse_call_args()
                    node = ast.FunctionCall(line=token.line, name=node, args=args)
                    continue
                if value == "{" and isinstance(
                    node, (ast.Variable, ast.ArrayAccess, ast.PropertyAccess)
                ):
                    # string offset access $str{0} (PHP5) — treat as array access
                    self.pos += 1
                    index = self._parse_expression()
                    self._expect_char("}")
                    node = ast.ArrayAccess(line=token.line, array=node, index=index)
                    continue
                return node
            if type_ is TokenType.OBJECT_OPERATOR:
                self.pos += 1
                name = self._parse_member_name()
                if self._at_char("("):
                    args = self._parse_call_args()
                    node = ast.MethodCall(
                        line=token.line, object=node, method=name, args=args
                    )
                else:
                    node = ast.PropertyAccess(line=token.line, object=node, name=name)
                continue
            if type_ is TokenType.DOUBLE_COLON:
                class_name = self._static_class_name(node)
                self._next()
                if self._at(TokenType.VARIABLE):
                    prop = self._next().value[1:]
                    if self._at_char("("):
                        args = self._parse_call_args()
                        node = ast.StaticCall(
                            line=token.line,
                            class_name=class_name,
                            method=ast.Variable(line=token.line, name=prop),
                            args=args,
                        )
                    else:
                        node = ast.StaticPropertyAccess(
                            line=token.line, class_name=class_name, name=prop
                        )
                    continue
                if self._at(TokenType.CLASS):
                    self._next()
                    node = ast.ClassConstAccess(
                        line=token.line, class_name=class_name, name="class"
                    )
                    continue
                member = self._parse_member_name()
                if self._at_char("("):
                    args = self._parse_call_args()
                    node = ast.StaticCall(
                        line=token.line, class_name=class_name, method=member, args=args
                    )
                else:
                    if not isinstance(member, str):
                        raise self._error("dynamic class constant access")
                    node = ast.ClassConstAccess(
                        line=token.line, class_name=class_name, name=member
                    )
                continue
            if type_ is TokenType.INC or type_ is TokenType.DEC:
                self.pos += 1
                node = ast.IncDec(line=token.line, op=token.value, target=node, prefix=False)
                continue
            return node

    def _parse_member_name(self) -> Union[str, ast.Expr]:
        token = self._peek()
        if token.type is TokenType.STRING or (
            token.type.value.startswith("T_") and token.value.isidentifier()
        ):
            self._next()
            return token.value
        if token.type is TokenType.VARIABLE:
            self._next()
            return ast.Variable(line=token.line, name=token.value[1:])
        if token.is_char("{"):
            self._next()
            expr = self._parse_expression()
            self._expect_char("}")
            return expr
        raise self._error(f"expected member name, found {token.name}")

    def _static_class_name(self, node: ast.Expr) -> str:
        if isinstance(node, ast.ConstFetch):
            return node.name
        if isinstance(node, ast.Variable):
            return "$" + node.name
        raise self._error("expected class name before '::'")

    def _parse_primary(self) -> ast.Expr:  # noqa: C901
        token = self.tokens[self.pos]
        type_ = token.type

        if type_ is TokenType.VARIABLE:
            self.pos += 1
            return ast.Variable(line=token.line, name=token.value[1:])
        if type_ is TokenType.CONSTANT_ENCAPSED_STRING:
            self.pos += 1
            raw = token.value
            if raw.startswith("'"):
                value: object = unescape_single_quoted(raw)
            else:
                value = unescape_double_quoted(raw[1:-1])
            return ast.Literal(line=token.line, value=value, raw=raw)
        if type_ is TokenType.CHAR:
            char = token.value
            if char == "(":
                self.pos += 1
                expr = self._parse_expression()
                self._expect_char(")")
                return expr
            if char == "[":
                self.pos += 1
                return self._parse_array_items(token.line, "]")
            if char == '"':
                return self._parse_interpolated('"')
            if char == "$":
                self.pos += 1
                if self._at_char("{"):
                    self.pos += 1
                    expr = self._parse_expression()
                    self._expect_char("}")
                    return ast.VariableVariable(line=token.line, expr=expr)
                inner = self._parse_primary()
                return ast.VariableVariable(line=token.line, expr=inner)
            if char == "`":
                node = self._parse_interpolated("`")
                return ast.ShellExec(line=node.line, parts=node.parts)
            if char == "&":
                # reference in expression position: &$var — transparent for taint
                self.pos += 1
                return self._parse_postfix()
            raise self._error(f"unexpected token {token.name} {token.value!r}")
        if type_ is TokenType.STRING:
            name = self._parse_qualified_name()
            if self._at_char("("):
                args = self._parse_call_args()
                return ast.FunctionCall(line=token.line, name=name, args=args)
            return ast.ConstFetch(line=token.line, name=name)
        if type_ is TokenType.LNUMBER:
            self.pos += 1
            try:
                value = int(token.value, 0)
            except ValueError:
                value = int(token.value)
            return ast.Literal(line=token.line, value=value, raw=token.value)
        if type_ is TokenType.DNUMBER:
            self.pos += 1
            return ast.Literal(line=token.line, value=float(token.value), raw=token.value)
        if type_ is TokenType.START_HEREDOC:
            return self._parse_heredoc()
        if type_ is TokenType.ARRAY and self._peek(1).is_char("("):
            self.pos += 1
            return self._parse_array_literal(token.line, ")")
        if type_ is TokenType.ISSET:
            self._next()
            self._expect_char("(")
            vars_ = self._parse_expr_list_until(")")
            self._expect_char(")")
            return ast.IssetExpr(line=token.line, vars=vars_)
        if token.type is TokenType.EMPTY:
            self._next()
            self._expect_char("(")
            expr = self._parse_expression()
            self._expect_char(")")
            return ast.EmptyExpr(line=token.line, expr=expr)
        if token.type is TokenType.LIST:
            self._next()
            self._expect_char("(")
            targets: List[Optional[ast.Expr]] = []
            while not self._at_char(")"):
                if self._at_char(","):
                    targets.append(None)
                else:
                    targets.append(self._parse_expression())
                if not self._accept_char(","):
                    break
            self._expect_char(")")
            return ast.ListExpr(line=token.line, targets=targets)
        if token.type is TokenType.FUNCTION:
            return self._parse_closure(static=False)
        if token.type is TokenType.STATIC and self._peek(1).type is TokenType.FUNCTION:
            self._next()
            return self._parse_closure(static=True)
        if token.type is TokenType.STATIC and self._peek(1).type is TokenType.DOUBLE_COLON:
            self._next()
            return ast.ConstFetch(line=token.line, name="static")
        if token.type in (
            TokenType.NS_SEPARATOR,
            TokenType.FILE,
            TokenType.LINE,
            TokenType.DIR,
            TokenType.FUNC_C,
            TokenType.CLASS_C,
            TokenType.METHOD_C,
        ):
            name = self._parse_qualified_name() if token.type is (
                TokenType.NS_SEPARATOR
            ) else self._next().value
            if self._at_char("("):
                args = self._parse_call_args()
                return ast.FunctionCall(line=token.line, name=name, args=args)
            return ast.ConstFetch(line=token.line, name=name)

        raise self._error(f"unexpected token {token.name} {token.value!r}")

    def _parse_array_literal(self, line: int, closer: str) -> ast.ArrayLiteral:
        self._expect_char("(")
        return self._parse_array_items(line, closer)

    def _parse_array_items(self, line: int, closer: str) -> ast.ArrayLiteral:
        items: List[ast.ArrayItem] = []
        while not self._at_char(closer) and not self._at(TokenType.EOF):
            item_line = self._peek().line
            by_ref = self._accept_char("&") is not None
            first = self._parse_expression()
            if self._accept(TokenType.DOUBLE_ARROW):
                value_by_ref = self._accept_char("&") is not None
                value = self._parse_expression()
                items.append(
                    ast.ArrayItem(line=item_line, key=first, value=value, by_ref=value_by_ref)
                )
            else:
                items.append(ast.ArrayItem(line=item_line, key=None, value=first, by_ref=by_ref))
            if not self._accept_char(","):
                break
        self._expect_char(closer)
        return ast.ArrayLiteral(line=line, items=items)

    def _parse_closure(self, static: bool) -> ast.Closure:
        line = self._expect(TokenType.FUNCTION).line
        by_ref = self._accept_char("&") is not None
        params = self._parse_params()
        uses: List[ast.ClosureUse] = []
        if self._at(TokenType.USE):
            self._next()
            self._expect_char("(")
            while not self._at_char(")"):
                use_line = self._peek().line
                use_by_ref = self._accept_char("&") is not None
                use_name = self._expect(TokenType.VARIABLE).value[1:]
                uses.append(ast.ClosureUse(line=use_line, name=use_name, by_ref=use_by_ref))
                if not self._accept_char(","):
                    break
            self._expect_char(")")
        self._expect_char("{")
        body = self._parse_statement_list_until("}")
        self._expect_char("}")
        return ast.Closure(
            line=line, params=params, uses=uses, body=body, static=static, by_ref=by_ref
        )

    def _parse_interpolated(self, delimiter: str) -> ast.InterpolatedString:
        line = self._expect_char(delimiter).line
        parts = self._parse_interpolation_parts(lambda: self._at_char(delimiter))
        self._expect_char(delimiter)
        return ast.InterpolatedString(line=line, parts=parts)

    def _parse_heredoc(self) -> ast.InterpolatedString:
        line = self._expect(TokenType.START_HEREDOC).line
        parts = self._parse_interpolation_parts(lambda: self._at(TokenType.END_HEREDOC))
        self._expect(TokenType.END_HEREDOC)
        return ast.InterpolatedString(line=line, parts=parts)

    def _parse_interpolation_parts(self, at_end) -> List[ast.Expr]:
        parts: List[ast.Expr] = []
        while not at_end() and not self._at(TokenType.EOF):
            token = self._peek()
            if token.type is TokenType.ENCAPSED_AND_WHITESPACE:
                self._next()
                parts.append(
                    ast.Literal(
                        line=token.line,
                        value=unescape_double_quoted(token.value),
                        raw=token.value,
                    )
                )
                continue
            if token.type is TokenType.VARIABLE:
                self._next()
                node: ast.Expr = ast.Variable(line=token.line, name=token.value[1:])
                # simple interpolation suffixes: [index] and ->prop
                if self._at_char("["):
                    self._next()
                    index_token = self._next()
                    index: Optional[ast.Expr]
                    if index_token.type is TokenType.VARIABLE:
                        index = ast.Variable(
                            line=index_token.line, name=index_token.value[1:]
                        )
                    elif index_token.type is TokenType.NUM_STRING:
                        index = ast.Literal(
                            line=index_token.line,
                            value=int(index_token.value),
                            raw=index_token.value,
                        )
                    else:
                        index = ast.Literal(
                            line=index_token.line,
                            value=index_token.value,
                            raw=index_token.value,
                        )
                    self._expect_char("]")
                    node = ast.ArrayAccess(line=token.line, array=node, index=index)
                elif self._at(TokenType.OBJECT_OPERATOR):
                    self._next()
                    prop = self._expect(TokenType.STRING).value
                    node = ast.PropertyAccess(line=token.line, object=node, name=prop)
                parts.append(node)
                continue
            if token.type is TokenType.CURLY_OPEN:
                self._next()
                expr = self._parse_expression()
                self._expect_char("}")
                parts.append(expr)
                continue
            if token.type is TokenType.DOLLAR_OPEN_CURLY_BRACES:
                self._next()
                expr = self._parse_expression()
                self._expect_char("}")
                parts.append(ast.VariableVariable(line=token.line, expr=expr))
                continue
            raise self._error(
                f"unexpected token in string interpolation: {token.name}"
            )
        return parts


def parse_source(
    source: str, filename: str = "<string>", recover: bool = False
) -> ast.PhpFile:
    """Lex and parse PHP source into a :class:`PhpFile` AST."""
    tokens = tokenize_significant(source, filename, recover=recover)
    return Parser(tokens, filename, recover=recover).parse_file()

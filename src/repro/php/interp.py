"""A tree-walking interpreter for the PHP subset of this library.

Section II of the paper contrasts static analysis with *dynamic*
analysis, and Section III.E notes the authors confirmed exploitability
"in an experiment".  This module supplies the dynamic half: enough of a
PHP runtime to execute plugin code with attacker-controlled
superglobals and simulated WordPress/database services, capturing the
page output and every SQL/command/include operation — which is what the
exploit-confirmation harness (:mod:`repro.dynamic`) checks payloads
against.

It is an *analysis instrument*, not a general PHP implementation: the
supported subset matches what the corpus and examples exercise
(procedural code, OOP with properties/methods/inheritance, strings and
arrays, the common builtins).  Unsupported constructs raise
:class:`PhpRuntimeError` so callers can treat a run as inconclusive
rather than wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from . import ast_nodes as ast
from .parser import parse_source


class PhpRuntimeError(Exception):
    """Execution failed (unsupported construct, bad state, budget)."""


class _Signal(Exception):
    """Non-error control transfer."""


class BreakSignal(_Signal):
    def __init__(self, level: int = 1) -> None:
        self.level = level


class ContinueSignal(_Signal):
    def __init__(self, level: int = 1) -> None:
        self.level = level


class ReturnSignal(_Signal):
    def __init__(self, value: object = None) -> None:
        self.value = value


class ExitSignal(_Signal):
    """``exit``/``die`` — stops the whole script."""


class PhpArray:
    """PHP's ordered hash: integer and string keys, insertion order."""

    def __init__(self, items: Optional[Dict[object, object]] = None) -> None:
        self.items: Dict[object, object] = dict(items or {})
        self._next_index = 0
        for key in self.items:
            if isinstance(key, int) and key >= self._next_index:
                self._next_index = key + 1

    def get(self, key: object) -> object:
        return self.items.get(_array_key(key))

    def set(self, key: object, value: object) -> None:
        key = _array_key(key)
        self.items[key] = value
        if isinstance(key, int) and key >= self._next_index:
            self._next_index = key + 1

    def append(self, value: object) -> None:
        self.items[self._next_index] = value
        self._next_index += 1

    def has(self, key: object) -> bool:
        return _array_key(key) in self.items

    def values(self) -> List[object]:
        return list(self.items.values())

    def keys(self) -> List[object]:
        return list(self.items.keys())

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"PhpArray({self.items!r})"


def _array_key(key: object) -> object:
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, float):
        return int(key)
    if isinstance(key, str) and key.lstrip("-").isdigit():
        return int(key)
    return key


class PhpObject:
    """An object instance: class name + property map."""

    def __init__(self, class_name: str) -> None:
        self.class_name = class_name
        self.properties: Dict[str, object] = {}

    def __repr__(self) -> str:
        return f"<{self.class_name} object>"


class MagicTaintArray(PhpArray):
    """A superglobal that answers *every* key with a payload.

    The exploit harness does not know which request parameter a plugin
    reads, so ``$_GET['anything']`` simply returns the attack payload —
    the dynamic analogue of "the attacker controls all inputs".
    """

    def __init__(self, payload: str) -> None:
        super().__init__()
        self.payload = payload

    def get(self, key: object) -> object:
        if _array_key(key) in self.items:
            return super().get(key)
        return self.payload

    def has(self, key: object) -> bool:  # isset($_GET[...]) is true
        return True


@dataclass
class SideEffects:
    """Everything observable a run produced.

    The parallel ``*_sites`` lists carry the ``(file, line)`` of the
    operation that produced each entry, so the exploit confirmer can
    attribute evidence to a specific static finding instead of to the
    whole page/run.
    """

    output: List[str] = field(default_factory=list)
    output_sites: List[tuple] = field(default_factory=list)
    queries: List[str] = field(default_factory=list)
    query_sites: List[tuple] = field(default_factory=list)
    commands: List[str] = field(default_factory=list)
    command_sites: List[tuple] = field(default_factory=list)
    includes: List[str] = field(default_factory=list)
    include_sites: List[tuple] = field(default_factory=list)
    headers: List[str] = field(default_factory=list)

    @property
    def page(self) -> str:
        return "".join(self.output)


def to_php_string(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "1" if value else ""
    if isinstance(value, float):
        text = repr(value)
        return text[:-2] if text.endswith(".0") else text
    if isinstance(value, PhpArray):
        return "Array"
    if isinstance(value, PhpObject):
        return f"Object({value.class_name})"
    return str(value)


def truthy(value: object) -> bool:
    if isinstance(value, PhpArray):
        return len(value) > 0
    if isinstance(value, str):
        return value not in ("", "0")
    return bool(value)


def to_number(value: object) -> Union[int, float]:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        digits = ""
        for char in value.strip():
            if (
                char.isdigit()
                or (char in "+-" and not digits)
                or (char == "." and "." not in digits)
            ):
                digits += char
            else:
                break
        try:
            return float(digits) if "." in digits else int(digits or "0")
        except ValueError:
            return 0
    return 0


class Scope:
    """One variable scope."""

    def __init__(self) -> None:
        self.vars: Dict[str, object] = {}


class Interpreter:
    """Execute a parsed PHP program with pluggable services."""

    def __init__(
        self,
        step_budget: int = 500_000,
        superglobals: Optional[Dict[str, PhpArray]] = None,
    ) -> None:
        self.step_budget = step_budget
        self._steps = 0
        self.effects = SideEffects()
        self.globals = Scope()
        self.functions: Dict[str, ast.FunctionDecl] = {}
        self.classes: Dict[str, ast.ClassDecl] = {}
        self.constants: Dict[str, object] = {"PHP_EOL": "\n", "true": True}
        self.files: Dict[str, ast.PhpFile] = {}
        self._include_stack: List[str] = []
        #: name -> python callable(args) for builtins and service hooks
        self.builtins: Dict[str, Callable[[List[object]], object]] = {}
        #: (class, method) -> callable(obj, args) for service objects
        self.native_methods: Dict[str, Callable[[PhpObject, List[object]], object]] = {}
        self.current_file = "input.php"
        self.current_line = 0
        self._install_builtins()
        self.superglobal_names = set()
        for name, value in (superglobals or {}).items():
            self.globals.vars[name] = value
            self.superglobal_names.add(name)

    # ------------------------------------------------------------------
    # Program loading / entry points
    # ------------------------------------------------------------------

    def load_source(self, source: str, filename: str = "input.php") -> ast.PhpFile:
        tree = parse_source(source, filename)
        self.files[filename] = tree
        self._collect(tree)
        return tree

    def _collect(self, tree: ast.PhpFile) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDecl):
                self.functions.setdefault(node.name.lower(), node)
            elif isinstance(node, ast.ClassDecl) and node.kind == "class":
                self.classes.setdefault(node.name.lower(), node)

    # -- side-effect recording (with site attribution) -----------------

    def record_output(self, text: str) -> None:
        self.effects.output.append(text)
        self.effects.output_sites.append((self.current_file, self.current_line))

    def record_query(self, text: str) -> None:
        self.effects.queries.append(text)
        self.effects.query_sites.append((self.current_file, self.current_line))

    def record_command(self, text: str) -> None:
        self.effects.commands.append(text)
        self.effects.command_sites.append((self.current_file, self.current_line))

    def record_include(self, text: str) -> None:
        self.effects.includes.append(text)
        self.effects.include_sites.append((self.current_file, self.current_line))

    def run_file(self, filename: str) -> SideEffects:
        tree = self.files.get(filename)
        if tree is None:
            raise PhpRuntimeError(f"file not loaded: {filename}")
        self.current_file = filename
        try:
            self._exec_block(tree.statements, self.globals)
        except ExitSignal:
            pass
        return self.effects

    def call_function(self, name: str, args: Optional[List[object]] = None) -> object:
        """Invoke a user function directly (entry-point simulation)."""
        decl = self.functions.get(name.lower())
        if decl is None:
            raise PhpRuntimeError(f"undefined function {name}()")
        try:
            return self._invoke(decl.params, decl.body, list(args or []), this=None)
        except ExitSignal:
            return None

    def call_method(
        self, obj: PhpObject, method: str, args: Optional[List[object]] = None
    ) -> object:
        decl = self._resolve_method(obj.class_name, method)
        if decl is None:
            raise PhpRuntimeError(f"undefined method {obj.class_name}::{method}()")
        try:
            return self._invoke(decl.params, decl.body or [], list(args or []), this=obj)
        except ExitSignal:
            return None

    def instantiate(self, class_name: str, args: Optional[List[object]] = None) -> PhpObject:
        obj = PhpObject(self._canonical_class(class_name))
        self._init_properties(obj)
        constructor = self._resolve_method(obj.class_name, "__construct") or (
            self._resolve_method(obj.class_name, obj.class_name)
        )
        if constructor is not None and constructor.body is not None:
            self._invoke(constructor.params, constructor.body, list(args or []), this=obj)
        return obj

    # ------------------------------------------------------------------
    # Class plumbing
    # ------------------------------------------------------------------

    def _canonical_class(self, name: str) -> str:
        decl = self.classes.get(name.lower())
        return decl.name if decl is not None else name

    def _resolve_method(self, class_name: str, method: str):
        seen = set()
        current: Optional[str] = class_name
        while current and current.lower() not in seen:
            seen.add(current.lower())
            decl = self.classes.get(current.lower())
            if decl is None:
                return None
            for candidate in decl.methods:
                if candidate.name.lower() == method.lower():
                    return candidate
            current = decl.parent
        return None

    def _init_properties(self, obj: PhpObject) -> None:
        chain: List[ast.ClassDecl] = []
        current: Optional[str] = obj.class_name
        seen = set()
        while current and current.lower() not in seen:
            seen.add(current.lower())
            decl = self.classes.get(current.lower())
            if decl is None:
                break
            chain.append(decl)
            current = decl.parent
        for decl in reversed(chain):
            for prop in decl.properties:
                value = (
                    self._eval(prop.default, self.globals)
                    if prop.default is not None
                    else None
                )
                obj.properties[prop.name] = value

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.step_budget:
            raise PhpRuntimeError("step budget exhausted (possible infinite loop)")

    def _invoke(
        self,
        params: List[ast.Param],
        body: List[ast.Statement],
        args: List[object],
        this: Optional[PhpObject],
    ) -> object:
        scope = Scope()
        for index, param in enumerate(params):
            if index < len(args):
                scope.vars[param.name] = args[index]
            elif param.default is not None:
                scope.vars[param.name] = self._eval(param.default, self.globals)
            else:
                scope.vars[param.name] = None
        if this is not None:
            scope.vars["this"] = this
        try:
            self._exec_block(body, scope)
        except ReturnSignal as signal:
            return signal.value
        return None

    def _exec_block(self, statements: List[ast.Statement], scope: Scope) -> None:
        for statement in statements:
            self._exec(statement, scope)

    def _exec(self, node: ast.Statement, scope: Scope) -> None:  # noqa: C901
        self._tick()
        if node.line:
            self.current_line = node.line
        if isinstance(node, (ast.FunctionDecl, ast.ClassDecl)):
            return
        if isinstance(node, ast.ExpressionStatement):
            self._eval(node.expr, scope)
            return
        if isinstance(node, ast.EchoStatement):
            for expr in node.exprs:
                value = to_php_string(self._eval(expr, scope))
                self.current_line = expr.line or self.current_line
                self.record_output(value)
            return
        if isinstance(node, ast.InlineHTML):
            self.record_output(node.text)
            return
        if isinstance(node, ast.Block):
            self._exec_block(node.statements, scope)
            return
        if isinstance(node, ast.IfStatement):
            if truthy(self._eval(node.cond, scope)):
                self._exec_block(node.then, scope)
                return
            for clause in node.elseifs:
                if truthy(self._eval(clause.cond, scope)):
                    self._exec_block(clause.body, scope)
                    return
            if node.otherwise is not None:
                self._exec_block(node.otherwise, scope)
            return
        if isinstance(node, ast.WhileStatement):
            while truthy(self._eval(node.cond, scope)):
                self._tick()
                try:
                    self._exec_block(node.body, scope)
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue
            return
        if isinstance(node, ast.DoWhileStatement):
            while True:
                self._tick()
                try:
                    self._exec_block(node.body, scope)
                except BreakSignal:
                    break
                except ContinueSignal:
                    pass
                if not truthy(self._eval(node.cond, scope)):
                    break
            return
        if isinstance(node, ast.ForStatement):
            for expr in node.init:
                self._eval(expr, scope)
            while all(truthy(self._eval(cond, scope)) for cond in node.cond):
                self._tick()
                try:
                    self._exec_block(node.body, scope)
                except BreakSignal:
                    break
                except ContinueSignal:
                    pass
                for expr in node.update:
                    self._eval(expr, scope)
            return
        if isinstance(node, ast.ForeachStatement):
            subject = self._eval(node.subject, scope)
            entries: List = []
            if isinstance(subject, PhpArray):
                entries = list(subject.items.items())
            elif isinstance(subject, PhpObject):
                entries = list(subject.properties.items())
            for key, value in entries:
                self._tick()
                if isinstance(node.key_var, ast.Variable):
                    scope.vars[node.key_var.name] = key
                if isinstance(node.value_var, ast.Variable):
                    scope.vars[node.value_var.name] = value
                elif node.value_var is not None:
                    self._assign(node.value_var, value, scope)
                try:
                    self._exec_block(node.body, scope)
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue
            return
        if isinstance(node, ast.SwitchStatement):
            subject = self._eval(node.subject, scope)
            matched = False
            try:
                for case in node.cases:
                    if not matched:
                        if case.test is None:
                            matched = True
                        else:
                            test = self._eval(case.test, scope)
                            matched = to_php_string(test) == to_php_string(subject)
                    if matched:
                        self._exec_block(case.body, scope)
            except BreakSignal:
                pass
            return
        if isinstance(node, ast.BreakStatement):
            raise BreakSignal(node.level)
        if isinstance(node, ast.ContinueStatement):
            raise ContinueSignal(node.level)
        if isinstance(node, ast.ReturnStatement):
            value = self._eval(node.expr, scope) if node.expr is not None else None
            raise ReturnSignal(value)
        if isinstance(node, ast.GlobalStatement):
            for name in node.names:
                if name not in self.globals.vars:
                    self.globals.vars[name] = None
                scope.vars[name] = self.globals.vars[name]
                # writes must reach the global scope: remember the alias
                scope.vars.setdefault("__globals__", set()).add(name)  # type: ignore[union-attr]
            return
        if isinstance(node, ast.StaticVarStatement):
            for name, default in node.vars:
                if name not in scope.vars:
                    scope.vars[name] = (
                        self._eval(default, scope) if default is not None else None
                    )
            return
        if isinstance(node, ast.UnsetStatement):
            for var in node.vars:
                if isinstance(var, ast.Variable):
                    scope.vars.pop(var.name, None)
                elif isinstance(var, ast.ArrayAccess) and isinstance(
                    var.array, ast.Variable
                ):
                    container = scope.vars.get(var.array.name)
                    if isinstance(container, PhpArray) and var.index is not None:
                        container.items.pop(
                            _array_key(self._eval(var.index, scope)), None
                        )
            return
        if isinstance(node, ast.ThrowStatement):
            raise PhpRuntimeError(
                f"uncaught exception at line {node.line}"
            )
        if isinstance(node, ast.TryStatement):
            try:
                self._exec_block(node.body, scope)
            except PhpRuntimeError:
                if node.catches:
                    catch = node.catches[0]
                    if catch.var_name:
                        scope.vars[catch.var_name] = PhpObject(catch.class_name)
                    self._exec_block(catch.body, scope)
                else:
                    raise
            finally:
                if node.finally_body is not None:
                    self._exec_block(node.finally_body, scope)
            return
        if isinstance(node, (ast.UseStatement, ast.NamespaceStatement,
                             ast.ConstStatement, ast.DeclareStatement,
                             ast.GotoStatement, ast.LabelStatement)):
            if isinstance(node, ast.ConstStatement):
                for name, expr in node.consts:
                    self.constants[name] = self._eval(expr, scope)
            if isinstance(node, ast.NamespaceStatement) and node.body:
                self._exec_block(node.body, scope)
            return
        raise PhpRuntimeError(f"unsupported statement {type(node).__name__}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, node: Optional[ast.Expr], scope: Scope) -> object:  # noqa: C901
        self._tick()
        if node is None:
            return None
        if node.line:
            self.current_line = node.line
        if isinstance(node, ast.Literal):
            return node.value
        if isinstance(node, ast.Variable):
            if node.name in scope.vars:
                return scope.vars[node.name]
            if node.name in self.superglobal_names:
                return self.globals.vars.get(node.name)
            if scope is self.globals:
                return self.globals.vars.get(node.name)
            return None
        if isinstance(node, ast.InterpolatedString):
            return "".join(to_php_string(self._eval(part, scope)) for part in node.parts)
        if isinstance(node, ast.ShellExec):
            command = "".join(
                to_php_string(self._eval(part, scope)) for part in node.parts
            )
            self.current_line = node.line or self.current_line
            self.record_command(command)
            return ""
        if isinstance(node, ast.ArrayLiteral):
            array = PhpArray()
            for item in node.items:
                value = self._eval(item.value, scope)
                if item.key is None:
                    array.append(value)
                else:
                    array.set(self._eval(item.key, scope), value)
            return array
        if isinstance(node, ast.ArrayAccess):
            container = self._eval(node.array, scope)
            if node.index is None:
                return None
            index = self._eval(node.index, scope)
            if isinstance(container, PhpArray):
                return container.get(index)
            if isinstance(container, str):
                position = int(to_number(index))
                return container[position] if 0 <= position < len(container) else ""
            return None
        if isinstance(node, ast.PropertyAccess):
            obj = self._eval(node.object, scope)
            name = node.name if isinstance(node.name, str) else to_php_string(
                self._eval(node.name, scope)  # type: ignore[arg-type]
            )
            if isinstance(obj, PhpObject):
                return obj.properties.get(name)
            return None
        if isinstance(node, ast.StaticPropertyAccess):
            return self.globals.vars.get(f"{node.class_name}::${node.name}")
        if isinstance(node, ast.ClassConstAccess):
            decl = self.classes.get(node.class_name.lower())
            if decl is not None:
                for const in decl.constants:
                    if const.name == node.name:
                        return self._eval(const.value, self.globals)
            return node.name
        if isinstance(node, ast.ConstFetch):
            lowered = node.name.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
            if lowered == "null":
                return None
            return self.constants.get(node.name, node.name)
        if isinstance(node, ast.Assignment):
            return self._eval_assignment(node, scope)
        if isinstance(node, ast.Binary):
            return self._eval_binary(node, scope)
        if isinstance(node, ast.Unary):
            value = self._eval(node.operand, scope)
            if node.op == "!":
                return not truthy(value)
            if node.op == "-":
                return -to_number(value)
            if node.op == "+":
                return to_number(value)
            if node.op == "~":
                return ~int(to_number(value))
            return value  # @ suppression
        if isinstance(node, ast.Ternary):
            cond = self._eval(node.cond, scope)
            if truthy(cond):
                return cond if node.if_true is None else self._eval(node.if_true, scope)
            return self._eval(node.if_false, scope)
        if isinstance(node, ast.Cast):
            value = self._eval(node.operand, scope)
            if node.to == "int":
                return int(to_number(value))
            if node.to == "float":
                return float(to_number(value))
            if node.to == "bool":
                return truthy(value)
            if node.to == "string":
                return to_php_string(value)
            if node.to == "array":
                return value if isinstance(value, PhpArray) else PhpArray({0: value})
            return value
        if isinstance(node, ast.IncDec):
            current = to_number(self._eval(node.target, scope))
            updated = current + 1 if node.op == "++" else current - 1
            self._assign(node.target, updated, scope)
            return updated if node.prefix else current
        if isinstance(node, ast.IssetExpr):
            return all(self._isset(var, scope) for var in node.vars)
        if isinstance(node, ast.EmptyExpr):
            return not truthy(self._eval(node.expr, scope))
        if isinstance(node, ast.FunctionCall):
            return self._eval_call(node, scope)
        if isinstance(node, ast.MethodCall):
            return self._eval_method_call(node, scope)
        if isinstance(node, ast.StaticCall):
            return self._eval_static_call(node, scope)
        if isinstance(node, ast.New):
            class_name = (
                node.class_name
                if isinstance(node.class_name, str)
                else to_php_string(self._eval(node.class_name, scope))  # type: ignore[arg-type]
            )
            args = [self._eval(arg, scope) for arg in node.args]
            return self.instantiate(class_name, args)
        if isinstance(node, ast.Clone):
            value = self._eval(node.expr, scope)
            if isinstance(value, PhpObject):
                clone = PhpObject(value.class_name)
                clone.properties = dict(value.properties)
                return clone
            return value
        if isinstance(node, ast.IncludeExpr):
            return self._eval_include(node, scope)
        if isinstance(node, ast.ExitExpr):
            if node.expr is not None:
                self.record_output(to_php_string(self._eval(node.expr, scope)))
            raise ExitSignal()
        if isinstance(node, ast.PrintExpr):
            self.record_output(to_php_string(self._eval(node.expr, scope)))
            return 1
        if isinstance(node, ast.InstanceofExpr):
            value = self._eval(node.expr, scope)
            name = (
                node.class_name
                if isinstance(node.class_name, str)
                else to_php_string(self._eval(node.class_name, scope))  # type: ignore[arg-type]
            )
            return isinstance(value, PhpObject) and value.class_name.lower() == name.lower()
        if isinstance(node, ast.ListExpr):
            return None
        if isinstance(node, ast.Closure):
            raise PhpRuntimeError("closures are not supported by the interpreter")
        if isinstance(node, ast.VariableVariable):
            name = to_php_string(self._eval(node.expr, scope))
            return scope.vars.get(name)
        raise PhpRuntimeError(f"unsupported expression {type(node).__name__}")

    def _isset(self, var: ast.Expr, scope: Scope) -> bool:
        if isinstance(var, ast.Variable):
            value = scope.vars.get(var.name)
            if value is None and scope is self.globals:
                value = self.globals.vars.get(var.name)
            return value is not None
        if isinstance(var, ast.ArrayAccess):
            container = self._eval(var.array, scope)
            if isinstance(container, PhpArray) and var.index is not None:
                return container.has(self._eval(var.index, scope))
            return False
        return self._eval(var, scope) is not None

    def _eval_assignment(self, node: ast.Assignment, scope: Scope) -> object:
        value = self._eval(node.value, scope)
        if node.op != "=":
            current = self._eval(node.target, scope)
            operator = node.op[:-1]
            if operator == "??":
                value = current if current is not None else value
            elif operator == ".":
                value = to_php_string(current) + to_php_string(value)
            else:
                value = self._arith(operator, current, value)
        self._assign(node.target, value, scope)
        return value

    def _assign(self, target: Optional[ast.Expr], value: object, scope: Scope) -> None:
        if isinstance(target, ast.Variable):
            scope.vars[target.name] = value
            aliases = scope.vars.get("__globals__")
            if isinstance(aliases, set) and target.name in aliases:
                self.globals.vars[target.name] = value
            return
        if isinstance(target, ast.ArrayAccess):
            container = self._eval(target.array, scope)
            if not isinstance(container, PhpArray):
                container = PhpArray()
                self._assign(target.array, container, scope)
            if target.index is None:
                container.append(value)
            else:
                container.set(self._eval(target.index, scope), value)
            return
        if isinstance(target, ast.PropertyAccess):
            obj = self._eval(target.object, scope)
            name = target.name if isinstance(target.name, str) else to_php_string(
                self._eval(target.name, scope)  # type: ignore[arg-type]
            )
            if isinstance(obj, PhpObject):
                obj.properties[name] = value
            return
        if isinstance(target, ast.StaticPropertyAccess):
            self.globals.vars[f"{target.class_name}::${target.name}"] = value
            return
        if isinstance(target, ast.ListExpr):
            if isinstance(value, PhpArray):
                values = value.values()
                for index, sub_target in enumerate(target.targets):
                    if sub_target is not None and index < len(values):
                        self._assign(sub_target, values[index], scope)
            return
        raise PhpRuntimeError(
            f"unsupported assignment target {type(target).__name__}"
        )

    def _arith(self, operator: str, left: object, right: object) -> object:
        a, b = to_number(left), to_number(right)
        if operator == "+":
            return a + b
        if operator == "-":
            return a - b
        if operator == "*":
            return a * b
        if operator == "/":
            return a / b if b else 0
        if operator == "%":
            return int(a) % int(b) if int(b) else 0
        if operator == "**":
            return a ** b
        if operator == "&":
            return int(a) & int(b)
        if operator == "|":
            return int(a) | int(b)
        if operator == "^":
            return int(a) ^ int(b)
        if operator == "<<":
            return int(a) << int(b)
        if operator == ">>":
            return int(a) >> int(b)
        raise PhpRuntimeError(f"unsupported operator {operator}")

    def _eval_binary(self, node: ast.Binary, scope: Scope) -> object:
        operator = node.op
        if operator in ("&&", "and"):
            return truthy(self._eval(node.left, scope)) and truthy(
                self._eval(node.right, scope)
            )
        if operator in ("||", "or"):
            return truthy(self._eval(node.left, scope)) or truthy(
                self._eval(node.right, scope)
            )
        if operator == "xor":
            return truthy(self._eval(node.left, scope)) != truthy(
                self._eval(node.right, scope)
            )
        if operator == "??":
            left = self._eval(node.left, scope)
            return left if left is not None else self._eval(node.right, scope)
        left = self._eval(node.left, scope)
        right = self._eval(node.right, scope)
        if operator == ".":
            return to_php_string(left) + to_php_string(right)
        if operator in ("==", "!="):
            equal = to_php_string(left) == to_php_string(right)
            return equal if operator == "==" else not equal
        if operator in ("===", "!=="):
            identical = type(left) is type(right) and left == right
            return identical if operator == "===" else not identical
        if operator in ("<", "<=", ">", ">="):
            a, b = to_number(left), to_number(right)
            return {"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b}[operator]
        return self._arith(operator, left, right)

    # -- calls --------------------------------------------------------------

    def _eval_call(self, node: ast.FunctionCall, scope: Scope) -> object:
        if not isinstance(node.name, str):
            raise PhpRuntimeError("dynamic function calls are not supported")
        name = node.name.lower()
        args = [self._eval(arg, scope) for arg in node.args]
        if name in self.builtins:
            return self.builtins[name](args)
        decl = self.functions.get(name)
        if decl is not None:
            return self._invoke(decl.params, decl.body, args, this=None)
        # unknown function: benign no-op returning null (WP stubs etc.)
        return None

    def _eval_method_call(self, node: ast.MethodCall, scope: Scope) -> object:
        obj = self._eval(node.object, scope)
        if not isinstance(node.method, str):
            raise PhpRuntimeError("dynamic method names are not supported")
        args = [self._eval(arg, scope) for arg in node.args]
        if isinstance(obj, PhpObject):
            native = self.native_methods.get(
                f"{obj.class_name.lower()}::{node.method.lower()}"
            )
            if native is not None:
                return native(obj, args)
            decl = self._resolve_method(obj.class_name, node.method)
            if decl is not None and decl.body is not None:
                return self._invoke(decl.params, decl.body, args, this=obj)
        return None

    def _eval_static_call(self, node: ast.StaticCall, scope: Scope) -> object:
        if not isinstance(node.method, str):
            raise PhpRuntimeError("dynamic method names are not supported")
        args = [self._eval(arg, scope) for arg in node.args]
        class_name = node.class_name
        this = scope.vars.get("this")
        if class_name.lower() in ("self", "static", "parent") and isinstance(
            this, PhpObject
        ):
            if class_name.lower() == "parent":
                decl = self.classes.get(this.class_name.lower())
                class_name = decl.parent if decl and decl.parent else this.class_name
            else:
                class_name = this.class_name
        decl = self._resolve_method(class_name, node.method)
        if decl is not None and decl.body is not None:
            bound = this if isinstance(this, PhpObject) else None
            return self._invoke(decl.params, decl.body, args, this=bound)
        return None

    def _eval_include(self, node: ast.IncludeExpr, scope: Scope) -> object:
        path = to_php_string(self._eval(node.path, scope))
        self.current_line = node.line or self.current_line
        self.record_include(path)
        for filename, tree in self.files.items():
            if filename == path or filename.endswith("/" + path.lstrip("./")):
                if filename in self._include_stack:
                    return True
                self._include_stack.append(filename)
                previous_file = self.current_file
                self.current_file = filename
                try:
                    self._exec_block(tree.statements, scope)
                finally:
                    self._include_stack.pop()
                    self.current_file = previous_file
                return True
        return False

    # ------------------------------------------------------------------
    # Builtins
    # ------------------------------------------------------------------

    def _install_builtins(self) -> None:  # noqa: C901
        def string_arg(args: List[object], index: int = 0) -> str:
            return to_php_string(args[index]) if len(args) > index else ""

        def register(name: str, fn: Callable[[List[object]], object]) -> None:
            self.builtins[name] = fn

        import html as _html
        import urllib.parse as _url

        register("htmlentities", lambda a: _html.escape(string_arg(a), quote=True))
        register("htmlspecialchars", lambda a: _html.escape(string_arg(a), quote=True))
        register("esc_html", lambda a: _html.escape(string_arg(a), quote=True))
        register("esc_attr", lambda a: _html.escape(string_arg(a), quote=True))
        register("sanitize_text_field", lambda a: _html.escape(string_arg(a).strip()))
        register("sanitize_key", lambda a: "".join(
            c for c in string_arg(a).lower() if c.isalnum() or c in "-_"
        ))
        register("strip_tags", lambda a: _strip_tags(string_arg(a)))
        register("html_entity_decode", lambda a: _html.unescape(string_arg(a)))
        register("htmlspecialchars_decode", lambda a: _html.unescape(string_arg(a)))
        register("stripslashes", lambda a: string_arg(a).replace("\\", ""))
        register("addslashes", lambda a: string_arg(a)
                 .replace("\\", "\\\\").replace("'", "\\'").replace('"', '\\"'))
        register("mysql_real_escape_string", self.builtins["addslashes"])
        register("mysql_escape_string", self.builtins["addslashes"])
        register("esc_sql", self.builtins["addslashes"])
        register("urlencode", lambda a: _url.quote_plus(string_arg(a)))
        register("urldecode", lambda a: _url.unquote_plus(string_arg(a)))
        register("rawurlencode", lambda a: _url.quote(string_arg(a)))
        register("rawurldecode", lambda a: _url.unquote(string_arg(a)))
        register("escapeshellarg", lambda a: "'" + string_arg(a).replace("'", "'\\''") + "'")
        register("escapeshellcmd", lambda a: "".join(
            "\\" + c if c in "&#;`|*?~<>^()[]{}$\\\n\x0a\xff\"'" else c
            for c in string_arg(a)
        ))
        register("basename", lambda a: string_arg(a).replace("\\", "/").rsplit("/", 1)[-1])
        register("intval", lambda a: int(to_number(args_or_zero(a))))
        register("absint", lambda a: abs(int(to_number(args_or_zero(a)))))
        register("floatval", lambda a: float(to_number(args_or_zero(a))))
        register("strtolower", lambda a: string_arg(a).lower())
        register("strtoupper", lambda a: string_arg(a).upper())
        register("ucfirst", lambda a: string_arg(a)[:1].upper() + string_arg(a)[1:])
        register("trim", lambda a: string_arg(a).strip(
            string_arg(a, 1) if len(a) > 1 else None))
        register("ltrim", lambda a: string_arg(a).lstrip())
        register("rtrim", lambda a: string_arg(a).rstrip())
        register("strlen", lambda a: len(string_arg(a)))
        register("strrev", lambda a: string_arg(a)[::-1])
        register("strpos", lambda a: (
            string_arg(a).find(string_arg(a, 1))
            if string_arg(a).find(string_arg(a, 1)) >= 0 else False
        ))
        register("str_replace", lambda a: string_arg(a, 2).replace(
            string_arg(a), string_arg(a, 1)))
        register("substr", lambda a: _substr(a))
        register("sprintf", lambda a: _sprintf(a))
        register("number_format", lambda a: f"{to_number(args_or_zero(a)):,.0f}")
        register("implode", lambda a: _implode(a))
        register("join", lambda a: _implode(a))
        register("explode", lambda a: PhpArray(
            dict(enumerate(string_arg(a, 1).split(string_arg(a) or " ")))
        ))
        register("count", lambda a: len(a[0]) if a and isinstance(a[0], PhpArray) else (
            0 if not a or a[0] is None else 1))
        register("sizeof", self.builtins["count"])
        register("in_array", lambda a: (
            isinstance(a[1], PhpArray)
            and any(to_php_string(v) == to_php_string(a[0]) for v in a[1].values())
            if len(a) > 1 else False
        ))
        register("array_keys", lambda a: PhpArray(
            dict(enumerate(a[0].keys())) if a and isinstance(a[0], PhpArray) else {}))
        register("array_values", lambda a: PhpArray(
            dict(enumerate(a[0].values())) if a and isinstance(a[0], PhpArray) else {}))
        register("array_merge", lambda a: _array_merge(a))
        register("is_array", lambda a: isinstance(a[0], PhpArray) if a else False)
        register("is_string", lambda a: isinstance(a[0], str) if a else False)
        register("is_numeric", lambda a: bool(a) and (
            isinstance(a[0], (int, float))
            or (isinstance(a[0], str) and a[0].strip().lstrip("+-")
                .replace(".", "", 1).isdigit())
        ))
        register("function_exists", lambda a: string_arg(a).lower() in self.functions
                 or string_arg(a).lower() in self.builtins)
        register("defined", lambda a: string_arg(a) in self.constants)
        register("define", lambda a: self.constants.__setitem__(
            string_arg(a), a[1] if len(a) > 1 else None))
        register("dirname", lambda a: string_arg(a).rsplit("/", 1)[0]
                 if "/" in string_arg(a) else ".")
        register("print_r", lambda a: self.record_output(
            to_php_string(a[0] if a else "")) or True)
        register("var_dump", self.builtins["print_r"])
        register("printf", lambda a: self.record_output(_sprintf(a)) or 1)
        register("date", lambda a: "2015-06-22")  # deterministic runtime
        register("time", lambda a: 1434931200)
        register("rand", lambda a: 4)
        register("mt_rand", lambda a: 4)
        register("header", lambda a: self.effects.headers.append(string_arg(a)))

        # command execution: recorded, not executed
        def run_command(args: List[object]) -> str:
            self.record_command(string_arg(args))
            return ""

        for name in ("system", "exec", "passthru", "shell_exec", "popen"):
            register(name, run_command)

        def args_or_zero(args: List[object]) -> object:
            return args[0] if args else 0


def _strip_tags(text: str) -> str:
    out: List[str] = []
    in_tag = False
    for char in text:
        if char == "<":
            in_tag = True
        elif char == ">":
            in_tag = False
        elif not in_tag:
            out.append(char)
    return "".join(out)


def _substr(args: List[object]) -> str:
    text = to_php_string(args[0]) if args else ""
    start = int(to_number(args[1])) if len(args) > 1 else 0
    if start < 0:
        start = max(0, len(text) + start)
    if len(args) > 2:
        length = int(to_number(args[2]))
        return text[start:start + length] if length >= 0 else text[start:length]
    return text[start:]


def _sprintf(args: List[object]) -> str:
    if not args:
        return ""
    template = to_php_string(args[0])
    values = [
        to_php_string(arg) if not isinstance(arg, (int, float)) else arg
        for arg in args[1:]
    ]
    try:
        return template % tuple(values)
    except (TypeError, ValueError):
        result = template
        for value in values:
            for spec in ("%s", "%d", "%f"):
                if spec in result:
                    result = result.replace(spec, to_php_string(value), 1)
                    break
        return result


def _implode(args: List[object]) -> str:
    if len(args) == 1 and isinstance(args[0], PhpArray):
        glue, array = "", args[0]
    elif len(args) >= 2 and isinstance(args[1], PhpArray):
        glue, array = to_php_string(args[0]), args[1]
    else:
        return ""
    return glue.join(to_php_string(value) for value in array.values())


def _array_merge(args: List[object]) -> PhpArray:
    merged = PhpArray()
    for arg in args:
        if isinstance(arg, PhpArray):
            for key, value in arg.items.items():
                if isinstance(key, int):
                    merged.append(value)
                else:
                    merged.set(key, value)
    return merged

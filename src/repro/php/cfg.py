"""Control Flow Graph construction over the PHP AST.

Section II of the paper describes the technique family phpSAFE and RIPS
build on: "performing static analysis requires building and analyzing a
Control Flow Graph (CFG) of the execution of the program", with RIPS's
CFG consisting "of linked basic blocks and branches according to
conditional program flow analysis".

The taint engine itself works by structural AST interpretation (which
implements the same path-join semantics), but the explicit CFG is part
of the substrate a downstream user expects from a static-analysis
library: it powers the reachability/coverage queries in
:mod:`repro.core.review`, dead-code detection, and the path-count
statistics in the review reports.

Nodes are *basic blocks* of straight-line statements; edges carry an
optional label (``true``/``false``/``case``/``loop``/``back``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from . import ast_nodes as ast


@dataclass
class BasicBlock:
    """A maximal straight-line statement sequence."""

    block_id: int
    statements: List[ast.Statement] = field(default_factory=list)
    label: str = ""

    @property
    def first_line(self) -> int:
        return self.statements[0].line if self.statements else 0

    @property
    def last_line(self) -> int:
        return self.statements[-1].line if self.statements else 0

    def __repr__(self) -> str:
        return f"<block {self.block_id} {self.label or ''} n={len(self.statements)}>"


@dataclass(frozen=True)
class Edge:
    """A directed control-flow edge with an optional condition label."""

    source: int
    target: int
    label: str = ""


class ControlFlowGraph:
    """CFG of one function body (or a file's top level)."""

    def __init__(self, name: str = "<main>") -> None:
        self.name = name
        self.blocks: Dict[int, BasicBlock] = {}
        self.edges: List[Edge] = []
        self._successors: Dict[int, List[Edge]] = {}
        self._predecessors: Dict[int, List[Edge]] = {}
        self.entry_id: int = 0
        self.exit_id: int = 0

    # -- construction helpers ------------------------------------------------

    def new_block(self, label: str = "") -> BasicBlock:
        block = BasicBlock(block_id=len(self.blocks), label=label)
        self.blocks[block.block_id] = block
        return block

    def add_edge(self, source: int, target: int, label: str = "") -> None:
        edge = Edge(source=source, target=target, label=label)
        self.edges.append(edge)
        self._successors.setdefault(source, []).append(edge)
        self._predecessors.setdefault(target, []).append(edge)

    # -- queries ----------------------------------------------------------------

    def successors(self, block_id: int) -> List[Edge]:
        return self._successors.get(block_id, [])

    def predecessors(self, block_id: int) -> List[Edge]:
        return self._predecessors.get(block_id, [])

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[self.entry_id]

    @property
    def exit(self) -> BasicBlock:
        return self.blocks[self.exit_id]

    def reachable_blocks(self) -> Set[int]:
        """Blocks reachable from the entry block."""
        seen: Set[int] = set()
        stack = [self.entry_id]
        while stack:
            block_id = stack.pop()
            if block_id in seen:
                continue
            seen.add(block_id)
            stack.extend(edge.target for edge in self.successors(block_id))
        return seen

    def unreachable_blocks(self) -> List[BasicBlock]:
        """Dead code: blocks with statements that entry cannot reach."""
        reachable = self.reachable_blocks()
        return [
            block
            for block_id, block in sorted(self.blocks.items())
            if block_id not in reachable and block.statements
        ]

    def path_count(self, limit: int = 1_000_000) -> int:
        """Number of acyclic entry→exit paths, capped at ``limit``.

        The paper's Section II motivates why "precise static techniques
        are computationally expensive": path counts explode.  Cycles are
        broken by ignoring back edges (label ``back``).
        """
        memo: Dict[int, int] = {}

        def walk(block_id: int, visiting: Tuple[int, ...]) -> int:
            if block_id == self.exit_id:
                return 1
            if block_id in memo:
                return memo[block_id]
            total = 0
            for edge in self.successors(block_id):
                if edge.label == "back" or edge.target in visiting:
                    continue
                total += walk(edge.target, visiting + (block_id,))
                if total >= limit:
                    return limit
            memo[block_id] = total
            return total

        return walk(self.entry_id, ())

    def blocks_in_order(self) -> Iterator[BasicBlock]:
        for block_id in sorted(self.blocks):
            yield self.blocks[block_id]

    def to_dot(self) -> str:
        """Graphviz rendering for debugging/documentation."""
        lines = [f'digraph "{self.name}" {{']
        for block in self.blocks_in_order():
            shape = "ellipse" if block.block_id in (self.entry_id, self.exit_id) else "box"
            title = block.label or f"B{block.block_id}"
            if block.statements:
                title += f"\\nlines {block.first_line}-{block.last_line}"
            lines.append(f'  n{block.block_id} [shape={shape}, label="{title}"];')
        for edge in self.edges:
            label = f' [label="{edge.label}"]' if edge.label else ""
            lines.append(f"  n{edge.source} -> n{edge.target}{label};")
        lines.append("}")
        return "\n".join(lines)


class _Builder:
    """Statement-list → CFG translation with loop/switch context."""

    def __init__(self, name: str) -> None:
        self.cfg = ControlFlowGraph(name)
        entry = self.cfg.new_block("entry")
        self.cfg.entry_id = entry.block_id
        exit_block = self.cfg.new_block("exit")
        self.cfg.exit_id = exit_block.block_id
        self.current: Optional[BasicBlock] = self.cfg.new_block()
        self.cfg.add_edge(entry.block_id, self.current.block_id)
        # (break target, continue target) stack
        self._loop_stack: List[Tuple[int, int]] = []

    # -- plumbing -----------------------------------------------------------

    def _ensure_block(self) -> BasicBlock:
        if self.current is None:
            self.current = self.cfg.new_block("unreachable")
        return self.current

    def _fresh_after(self, *sources: Tuple[int, str]) -> BasicBlock:
        block = self.cfg.new_block()
        for source_id, label in sources:
            self.cfg.add_edge(source_id, block.block_id, label)
        self.current = block
        return block

    def finish(self) -> ControlFlowGraph:
        if self.current is not None:
            self.cfg.add_edge(self.current.block_id, self.cfg.exit_id)
        return self.cfg

    # -- statements -------------------------------------------------------------

    def add_statements(self, statements: Sequence[ast.Statement]) -> None:
        for statement in statements:
            self.add_statement(statement)

    def add_statement(self, statement: ast.Statement) -> None:  # noqa: C901
        if isinstance(statement, ast.Block):
            self.add_statements(statement.statements)
            return
        if isinstance(statement, ast.IfStatement):
            self._add_if(statement)
            return
        if isinstance(statement, (ast.WhileStatement, ast.ForStatement)):
            body = statement.body
            self._add_loop(statement, body, post_test=False)
            return
        if isinstance(statement, ast.DoWhileStatement):
            self._add_loop(statement, statement.body, post_test=True)
            return
        if isinstance(statement, ast.ForeachStatement):
            self._add_loop(statement, statement.body, post_test=False)
            return
        if isinstance(statement, ast.SwitchStatement):
            self._add_switch(statement)
            return
        if isinstance(statement, ast.TryStatement):
            self._add_try(statement)
            return
        if isinstance(statement, ast.ReturnStatement):
            block = self._ensure_block()
            block.statements.append(statement)
            self.cfg.add_edge(block.block_id, self.cfg.exit_id, "return")
            self.current = None
            return
        if isinstance(statement, ast.ThrowStatement):
            block = self._ensure_block()
            block.statements.append(statement)
            self.cfg.add_edge(block.block_id, self.cfg.exit_id, "throw")
            self.current = None
            return
        if isinstance(statement, ast.BreakStatement):
            block = self._ensure_block()
            block.statements.append(statement)
            if self._loop_stack:
                self.cfg.add_edge(block.block_id, self._loop_stack[-1][0], "break")
            else:
                self.cfg.add_edge(block.block_id, self.cfg.exit_id, "break")
            self.current = None
            return
        if isinstance(statement, ast.ContinueStatement):
            block = self._ensure_block()
            block.statements.append(statement)
            if self._loop_stack:
                self.cfg.add_edge(block.block_id, self._loop_stack[-1][1], "continue")
            else:
                self.cfg.add_edge(block.block_id, self.cfg.exit_id, "continue")
            self.current = None
            return
        if isinstance(
            statement,
            (ast.ExpressionStatement,),
        ) and isinstance(statement.expr, ast.ExitExpr):
            block = self._ensure_block()
            block.statements.append(statement)
            self.cfg.add_edge(block.block_id, self.cfg.exit_id, "exit")
            self.current = None
            return
        # straight-line statement (incl. declarations)
        self._ensure_block().statements.append(statement)

    def _add_if(self, statement: ast.IfStatement) -> None:
        cond_block = self._ensure_block()
        cond_block.statements.append(
            ast.ExpressionStatement(line=statement.line, expr=statement.cond)
        )
        branch_sources: List[Tuple[int, str]] = []

        def build_branch(body: Sequence[ast.Statement], label: str) -> None:
            branch = self.cfg.new_block(label)
            self.cfg.add_edge(cond_source_id, branch.block_id, label)
            self.current = branch
            self.add_statements(body)
            if self.current is not None:
                branch_sources.append((self.current.block_id, ""))

        cond_source_id = cond_block.block_id
        build_branch(statement.then, "true")
        previous_cond = cond_source_id
        for clause in statement.elseifs:
            elif_block = self.cfg.new_block("elseif")
            self.cfg.add_edge(previous_cond, elif_block.block_id, "false")
            elif_block.statements.append(
                ast.ExpressionStatement(line=clause.line, expr=clause.cond)
            )
            cond_source_id = elif_block.block_id
            build_branch(clause.body, "true")
            previous_cond = cond_source_id
        if statement.otherwise is not None:
            cond_source_id = previous_cond
            build_branch(statement.otherwise, "false")
        else:
            branch_sources.append((previous_cond, "false"))
        if branch_sources:
            self._fresh_after(*branch_sources)
        else:
            self.current = None

    def _add_loop(
        self,
        statement: ast.Statement,
        body: Sequence[ast.Statement],
        post_test: bool,
    ) -> None:
        header = self.cfg.new_block("loop")
        header.statements.append(statement.__class__(line=statement.line))
        if self.current is not None:
            self.cfg.add_edge(self.current.block_id, header.block_id)
        after = self.cfg.new_block("after-loop")
        self._loop_stack.append((after.block_id, header.block_id))
        body_block = self.cfg.new_block("body")
        self.cfg.add_edge(header.block_id, body_block.block_id, "loop")
        self.current = body_block
        self.add_statements(body)
        if self.current is not None:
            self.cfg.add_edge(self.current.block_id, header.block_id, "back")
        self._loop_stack.pop()
        if not post_test:
            self.cfg.add_edge(header.block_id, after.block_id, "done")
        else:
            # do-while: the loop exits from the back-test, modeled on header
            self.cfg.add_edge(header.block_id, after.block_id, "done")
        self.current = after

    def _add_switch(self, statement: ast.SwitchStatement) -> None:
        subject = self._ensure_block()
        subject.statements.append(
            ast.ExpressionStatement(line=statement.line, expr=statement.subject)
        )
        subject_id = subject.block_id
        after = self.cfg.new_block("after-switch")
        self._loop_stack.append((after.block_id, after.block_id))
        previous_fallthrough: Optional[int] = None
        has_default = False
        for case in statement.cases:
            label = "default" if case.test is None else "case"
            has_default = has_default or case.test is None
            case_block = self.cfg.new_block(label)
            self.cfg.add_edge(subject_id, case_block.block_id, label)
            if previous_fallthrough is not None:
                self.cfg.add_edge(previous_fallthrough, case_block.block_id, "fall")
            self.current = case_block
            self.add_statements(case.body)
            previous_fallthrough = (
                self.current.block_id if self.current is not None else None
            )
        if previous_fallthrough is not None:
            self.cfg.add_edge(previous_fallthrough, after.block_id)
        if not has_default:
            self.cfg.add_edge(subject_id, after.block_id, "no-match")
        self._loop_stack.pop()
        self.current = after

    def _add_try(self, statement: ast.TryStatement) -> None:
        entry = self._ensure_block()
        try_block = self.cfg.new_block("try")
        self.cfg.add_edge(entry.block_id, try_block.block_id)
        self.current = try_block
        self.add_statements(statement.body)
        sources: List[Tuple[int, str]] = []
        if self.current is not None:
            sources.append((self.current.block_id, ""))
        for catch in statement.catches:
            catch_block = self.cfg.new_block(f"catch {catch.class_name}")
            self.cfg.add_edge(try_block.block_id, catch_block.block_id, "throw")
            self.current = catch_block
            self.add_statements(catch.body)
            if self.current is not None:
                sources.append((self.current.block_id, ""))
        if statement.finally_body is not None:
            finally_block = self.cfg.new_block("finally")
            for source_id, label in sources:
                self.cfg.add_edge(source_id, finally_block.block_id, label)
            self.current = finally_block
            self.add_statements(statement.finally_body)
            return
        if sources:
            self._fresh_after(*sources)
        else:
            self.current = None


def build_cfg(statements: Sequence[ast.Statement], name: str = "<main>") -> ControlFlowGraph:
    """Build the CFG of a statement list (function body or file)."""
    builder = _Builder(name)
    builder.add_statements(list(statements))
    return builder.finish()


def build_file_cfgs(tree: ast.PhpFile) -> Dict[str, ControlFlowGraph]:
    """CFGs for a file: ``<main>`` plus one per function/method."""
    graphs: Dict[str, ControlFlowGraph] = {}
    top_level: List[ast.Statement] = []
    for statement in tree.statements:
        if isinstance(statement, ast.FunctionDecl):
            graphs[statement.name] = build_cfg(statement.body, statement.name)
        elif isinstance(statement, ast.ClassDecl):
            for method in statement.methods:
                if method.body is not None:
                    key = f"{statement.name}::{method.name}"
                    graphs[key] = build_cfg(method.body, key)
        else:
            top_level.append(statement)
    graphs["<main>"] = build_cfg(top_level, f"{tree.filename}:<main>")
    return graphs

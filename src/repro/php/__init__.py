"""PHP language substrate: lexer, parser, AST and printer.

This package is the reproduction's stand-in for the PHP interpreter
services phpSAFE relies on (``token_get_all`` / ``token_name``) plus the
AST layer the paper's model-construction stage builds on top of them.
"""

from .errors import (
    AnalysisBudgetExceeded,
    PhpLexError,
    PhpParseError,
    PhpSyntaxError,
    UnsupportedConstructError,
)
from .cfg import ControlFlowGraph, build_cfg, build_file_cfgs
from .interp import Interpreter, PhpArray, PhpObject, PhpRuntimeError
from .lexer import count_loc, tokenize, tokenize_significant
from .parser import parse_source
from .printer import print_expr, print_file
from .tokens import Token, TokenType
from .visitor import NodeTransformer, NodeVisitor

__all__ = [
    "AnalysisBudgetExceeded",
    "PhpLexError",
    "PhpParseError",
    "PhpSyntaxError",
    "UnsupportedConstructError",
    "ControlFlowGraph",
    "Interpreter",
    "PhpArray",
    "PhpObject",
    "PhpRuntimeError",
    "Token",
    "TokenType",
    "NodeTransformer",
    "NodeVisitor",
    "build_cfg",
    "build_file_cfgs",
    "count_loc",
    "parse_source",
    "print_expr",
    "print_file",
    "tokenize",
    "tokenize_significant",
]

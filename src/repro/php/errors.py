"""Errors raised by the PHP substrate.

Both the lexer and the parser raise structured errors carrying the file
name and line number.  The analyzers catch :class:`PhpSyntaxError` (the
common base) to implement the *robustness* behaviour studied in
Section V.E of the paper: a tool that cannot process a file records a
per-file failure instead of aborting the whole run.
"""

from __future__ import annotations


class PhpSyntaxError(Exception):
    """Base class for lexing/parsing failures in PHP source."""

    #: pipeline stage for the incident taxonomy ("lex" or "parse");
    #: lets the model builder classify failures without isinstance
    #: ladders when mapping them to :class:`repro.incidents.Incident`.
    stage = "parse"

    def __init__(self, message: str, filename: str = "<string>", line: int = 0) -> None:
        super().__init__(f"{filename}:{line}: {message}")
        self.message = message
        self.filename = filename
        self.line = line

    def __reduce__(self):
        # default Exception pickling would re-call __init__ with the
        # pre-formatted args, losing filename/line; rebuild from the
        # structured fields so cached failures round-trip through disk
        return (self.__class__, (self.message, self.filename, self.line))


class PhpLexError(PhpSyntaxError):
    """The scanner could not tokenize the source."""

    stage = "lex"


class PhpParseError(PhpSyntaxError):
    """The parser could not build an AST from the token stream."""


class UnsupportedConstructError(PhpParseError):
    """A construct outside the analyzer's language subset was found.

    The Pixy-like baseline raises this on OOP constructs to reproduce the
    robustness failures reported in the paper (Pixy failed 32 files and
    raised 38 error messages because "it is an old tool and does not
    recognize OOP code").
    """


class AnalysisBudgetExceeded(Exception):
    """Analysis of a file exceeded its resource budget.

    Reproduces the paper's observation that phpSAFE "was unable to analyze
    one file in the 2012 version and three files in the 2014 version"
    because those files "had many includes and required a lot of memory".
    """

    def __init__(self, filename: str, budget: int, used: int) -> None:
        super().__init__(
            f"analysis budget exceeded for {filename}: used {used} units of {budget}"
        )
        self.filename = filename
        self.budget = budget
        self.used = used

    def __reduce__(self):
        return (self.__class__, (self.filename, self.budget, self.used))

"""AST node definitions for the PHP subset the analyzers work on.

The phpSAFE analysis stage (paper Section III.C) dispatches on code
constructs: variable uses, assignments, function/method calls, returns,
conditionals and loops, ``unset``, ``global``, includes, echo/print
output, and — for the OOP support of Section III.E — classes, methods,
properties, ``new``, ``->`` and ``::``.  Every one of those constructs is
a distinct node type here.

Nodes are plain mutable dataclasses with a ``line`` attribute (PHP token
line numbers flow through the parser into findings, which is how the
tool reports "the entry point of the vulnerability in the source code").
Every node class is slotted (ASTs are the analyzer's second-highest
allocation volume after tokens), so traversal helpers enumerate fields
via the per-class ``__node_fields__`` tuple instead of ``vars()``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


def _add_slots(cls):
    """Rebuild a dataclass with ``__slots__`` (``slots=True`` needs 3.10).

    Mirrors CPython's own ``dataclasses._add_slots``: copy the class
    namespace, declare the class's *own* fields as slots, drop the field
    defaults (they live in ``__init__`` closures) plus ``__dict__`` /
    ``__weakref__`` descriptors, and re-create the type.
    """
    field_names = tuple(f.name for f in dataclasses.fields(cls))
    inherited = set()
    for base in cls.__mro__[1:]:
        inherited.update(getattr(base, "__slots__", ()))
    namespace = dict(cls.__dict__)
    namespace["__slots__"] = tuple(n for n in field_names if n not in inherited)
    for name in field_names:
        namespace.pop(name, None)
    namespace.pop("__dict__", None)
    namespace.pop("__weakref__", None)
    qualname = getattr(cls, "__qualname__", None)
    rebuilt = type(cls)(cls.__name__, cls.__bases__, namespace)
    if qualname is not None:
        rebuilt.__qualname__ = qualname
    return rebuilt


#: annotations that can never hold (or contain) an AST node; fields so
#: typed are skipped by :func:`walk` and the visitor framework
_SCALAR_ANNOTATIONS = {
    "int", "str", "bool", "float", "object",
    "Optional[str]", "Optional[int]", "List[str]",
}


def node(cls):
    """Class decorator for AST nodes: slotted dataclass + field tables."""
    cls = _add_slots(dataclass(cls))
    all_fields = dataclasses.fields(cls)
    cls.__node_fields__ = tuple(f.name for f in all_fields)
    cls.__walk_fields__ = tuple(
        f.name for f in all_fields if str(f.type) not in _SCALAR_ANNOTATIONS
    )
    return cls


@node
class Node:
    """Base class: every node knows its source line."""

    line: int = 0


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@node
class Expr(Node):
    """Base class for expressions."""


@node
class Variable(Expr):
    """``$name`` — name stored without the ``$``."""

    name: str = ""


@node
class VariableVariable(Expr):
    """``$$expr`` — variable-variable indirection."""

    expr: Optional[Expr] = None


@node
class Literal(Expr):
    """Scalar literal; ``value`` is the decoded Python value."""

    value: object = None
    raw: str = ""


@node
class InterpolatedString(Expr):
    """Double-quoted/heredoc string with embedded expressions.

    ``parts`` interleaves :class:`Literal` (the constant runs) with
    arbitrary expressions.  The paper treats a tainted variable being
    "merged with HTML code" as an XSS-relevant event; interpolation is
    one of the two merge forms (the other is ``.`` concatenation).
    """

    parts: List[Expr] = field(default_factory=list)


@node
class ShellExec(Expr):
    """Backtick operator — ``` `cmd $arg` ```."""

    parts: List[Expr] = field(default_factory=list)


@node
class ArrayItem(Node):
    """One ``key => value`` element of an array literal."""

    key: Optional[Expr] = None
    value: Optional[Expr] = None
    by_ref: bool = False


@node
class ArrayLiteral(Expr):
    """``array(...)`` or ``[...]``."""

    items: List[ArrayItem] = field(default_factory=list)


@node
class ArrayAccess(Expr):
    """``$arr[$index]`` (index may be ``None`` for ``$arr[] = ...``)."""

    array: Optional[Expr] = None
    index: Optional[Expr] = None


@node
class PropertyAccess(Expr):
    """``$obj->prop`` — the T_OBJECT_OPERATOR path of Section III.E."""

    object: Optional[Expr] = None
    name: Union[str, Expr, None] = None


@node
class StaticPropertyAccess(Expr):
    """``ClassName::$prop`` — the T_DOUBLE_COLON path."""

    class_name: str = ""
    name: str = ""


@node
class ClassConstAccess(Expr):
    """``ClassName::CONST``."""

    class_name: str = ""
    name: str = ""


@node
class ConstFetch(Expr):
    """Bare identifier used as a constant (``true``, ``PHP_EOL``, ...)."""

    name: str = ""


@node
class FunctionCall(Expr):
    """``name(args...)``; ``name`` is a string or an expression for
    dynamic calls (``$fn(...)``)."""

    name: Union[str, Expr, None] = None
    args: List[Expr] = field(default_factory=list)


@node
class MethodCall(Expr):
    """``$obj->method(args...)``."""

    object: Optional[Expr] = None
    method: Union[str, Expr, None] = None
    args: List[Expr] = field(default_factory=list)


@node
class StaticCall(Expr):
    """``ClassName::method(args...)`` (also ``parent::``/``self::``)."""

    class_name: str = ""
    method: Union[str, Expr, None] = None
    args: List[Expr] = field(default_factory=list)


@node
class New(Expr):
    """``new ClassName(args...)`` — parsed as a constructor call."""

    class_name: Union[str, Expr, None] = None
    args: List[Expr] = field(default_factory=list)


@node
class Clone(Expr):
    """``clone $obj``."""

    expr: Optional[Expr] = None


@node
class Assignment(Expr):
    """``target op value`` where op is ``=``, ``.=``, ``+=`` ... or ``=&``.

    Compound ops keep the target's previous value in the dependency set
    (``$x .= $y`` leaves ``$x`` depending on both its old value and
    ``$y``), which the engine models by rewriting to ``$x = $x . $y``.
    """

    target: Optional[Expr] = None
    value: Optional[Expr] = None
    op: str = "="
    by_ref: bool = False


@node
class Binary(Expr):
    """Binary operation, including ``.`` concatenation."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@node
class Unary(Expr):
    """Prefix unary operation (``!``, ``-``, ``+``, ``~``, ``@``)."""

    op: str = ""
    operand: Optional[Expr] = None


@node
class Ternary(Expr):
    """``cond ? a : b`` (``a`` may be None for the short form ``?:``)."""

    cond: Optional[Expr] = None
    if_true: Optional[Expr] = None
    if_false: Optional[Expr] = None


@node
class Cast(Expr):
    """``(int)$x`` etc.; ``to`` is the lower-cased target type name."""

    to: str = ""
    operand: Optional[Expr] = None


@node
class IncDec(Expr):
    """``++$x``, ``$x--`` ..."""

    op: str = "++"
    target: Optional[Expr] = None
    prefix: bool = True


@node
class IssetExpr(Expr):
    """``isset($a, $b)``."""

    vars: List[Expr] = field(default_factory=list)


@node
class EmptyExpr(Expr):
    """``empty($x)``."""

    expr: Optional[Expr] = None


@node
class ListExpr(Expr):
    """``list($a, , $b)`` assignment target."""

    targets: List[Optional[Expr]] = field(default_factory=list)


@node
class Param(Node):
    """A function/method parameter."""

    name: str = ""
    default: Optional[Expr] = None
    by_ref: bool = False
    type_hint: Optional[str] = None


@node
class ClosureUse(Node):
    """One entry of a closure ``use (...)`` clause."""

    name: str = ""
    by_ref: bool = False


@node
class Closure(Expr):
    """Anonymous function."""

    params: List[Param] = field(default_factory=list)
    uses: List[ClosureUse] = field(default_factory=list)
    body: List["Statement"] = field(default_factory=list)
    static: bool = False
    by_ref: bool = False


@node
class IncludeExpr(Expr):
    """``include/include_once/require/require_once path-expr``."""

    kind: str = "include"
    path: Optional[Expr] = None


@node
class ExitExpr(Expr):
    """``exit``/``die`` with optional status expression."""

    expr: Optional[Expr] = None


@node
class PrintExpr(Expr):
    """``print expr`` — an expression in PHP, an XSS sink for us."""

    expr: Optional[Expr] = None


@node
class InstanceofExpr(Expr):
    """``$x instanceof ClassName``."""

    expr: Optional[Expr] = None
    class_name: Union[str, Expr, None] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@node
class Statement(Node):
    """Base class for statements."""


@node
class ErrorStmt(Statement):
    """A region the parser skipped during panic-mode recovery.

    When parsing with ``recover=True``, an unparseable statement is
    replaced by this node instead of aborting the file: the parser
    resynchronizes at the next statement boundary and records the span
    it had to skip.  The engine treats it as a no-op; the printer emits
    a comment.  ``reason`` is the original :class:`PhpParseError`
    message, ``line``/``end_line`` the skipped source span, and
    ``tokens_skipped`` the number of tokens discarded.
    """

    reason: str = ""
    end_line: int = 0
    tokens_skipped: int = 0


@node
class ExpressionStatement(Statement):
    """An expression evaluated for its side effects."""

    expr: Optional[Expr] = None


@node
class EchoStatement(Statement):
    """``echo expr, expr;`` and ``<?= expr ?>`` — the canonical XSS sink."""

    exprs: List[Expr] = field(default_factory=list)


@node
class InlineHTML(Statement):
    """Literal HTML outside ``<?php ?>``."""

    text: str = ""


@node
class Block(Statement):
    """``{ ... }``."""

    statements: List[Statement] = field(default_factory=list)


@node
class ElseIfClause(Node):
    cond: Optional[Expr] = None
    body: List[Statement] = field(default_factory=list)


@node
class IfStatement(Statement):
    """``if/elseif/else`` — branches are *joined*, not chosen (the paper's
    context-sensitive analysis considers all conditional paths)."""

    cond: Optional[Expr] = None
    then: List[Statement] = field(default_factory=list)
    elseifs: List[ElseIfClause] = field(default_factory=list)
    otherwise: Optional[List[Statement]] = None


@node
class WhileStatement(Statement):
    cond: Optional[Expr] = None
    body: List[Statement] = field(default_factory=list)


@node
class DoWhileStatement(Statement):
    body: List[Statement] = field(default_factory=list)
    cond: Optional[Expr] = None


@node
class ForStatement(Statement):
    init: List[Expr] = field(default_factory=list)
    cond: List[Expr] = field(default_factory=list)
    update: List[Expr] = field(default_factory=list)
    body: List[Statement] = field(default_factory=list)


@node
class ForeachStatement(Statement):
    """``foreach ($arr as $k => $v)``: $k/$v inherit $arr's taint."""

    subject: Optional[Expr] = None
    key_var: Optional[Expr] = None
    value_var: Optional[Expr] = None
    by_ref: bool = False
    body: List[Statement] = field(default_factory=list)


@node
class SwitchCase(Node):
    """One ``case expr:`` (``test is None`` for ``default:``)."""

    test: Optional[Expr] = None
    body: List[Statement] = field(default_factory=list)


@node
class SwitchStatement(Statement):
    subject: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)


@node
class BreakStatement(Statement):
    level: int = 1


@node
class ContinueStatement(Statement):
    level: int = 1


@node
class ReturnStatement(Statement):
    """``return expr`` — the engine binds a function-named pseudo-variable
    to the returned expression (the paper's T_RETURN handling)."""

    expr: Optional[Expr] = None


@node
class GlobalStatement(Statement):
    """``global $a, $b`` — links locals to the global scope."""

    names: List[str] = field(default_factory=list)


@node
class StaticVarStatement(Statement):
    """``static $x = 0;`` inside a function."""

    vars: List[Tuple[str, Optional[Expr]]] = field(default_factory=list)


@node
class UnsetStatement(Statement):
    """``unset($x)`` — T_UNSET: the variable becomes untainted."""

    vars: List[Expr] = field(default_factory=list)


@node
class ThrowStatement(Statement):
    expr: Optional[Expr] = None


@node
class CatchClause(Node):
    class_name: str = ""
    var_name: str = ""
    body: List[Statement] = field(default_factory=list)


@node
class TryStatement(Statement):
    body: List[Statement] = field(default_factory=list)
    catches: List[CatchClause] = field(default_factory=list)
    finally_body: Optional[List[Statement]] = None


@node
class FunctionDecl(Statement):
    """A user-defined function (paper: parsed once, summarized)."""

    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: List[Statement] = field(default_factory=list)
    by_ref: bool = False
    doc_comment: Optional[str] = None


@node
class PropertyDecl(Node):
    """One declared property of a class."""

    name: str = ""
    default: Optional[Expr] = None
    visibility: str = "public"
    static: bool = False


@node
class ClassConstDecl(Node):
    name: str = ""
    value: Optional[Expr] = None


@node
class MethodDecl(Node):
    """A class method: a function plus OOP modifiers."""

    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Optional[List[Statement]] = None  # None for abstract methods
    visibility: str = "public"
    static: bool = False
    abstract: bool = False
    final: bool = False
    by_ref: bool = False


@node
class ClassDecl(Statement):
    """``class``, ``interface`` or ``trait`` declaration."""

    name: str = ""
    parent: Optional[str] = None
    interfaces: List[str] = field(default_factory=list)
    kind: str = "class"  # class | interface | trait
    is_abstract: bool = False
    is_final: bool = False
    constants: List[ClassConstDecl] = field(default_factory=list)
    properties: List[PropertyDecl] = field(default_factory=list)
    methods: List[MethodDecl] = field(default_factory=list)
    uses: List[str] = field(default_factory=list)  # trait use


@node
class NamespaceStatement(Statement):
    name: str = ""
    body: Optional[List[Statement]] = None


@node
class UseStatement(Statement):
    """Top-level ``use Foo\\Bar as Baz;`` import."""

    name: str = ""
    alias: Optional[str] = None


@node
class DeclareStatement(Statement):
    directives: List[Tuple[str, Expr]] = field(default_factory=list)
    body: Optional[List[Statement]] = None


@node
class GotoStatement(Statement):
    label: str = ""


@node
class LabelStatement(Statement):
    name: str = ""


@node
class ConstStatement(Statement):
    """Top-level ``const NAME = value;``."""

    consts: List[Tuple[str, Expr]] = field(default_factory=list)


@node
class PhpFile(Node):
    """A parsed PHP file: the root of the AST."""

    filename: str = "<string>"
    statements: List[Statement] = field(default_factory=list)


def walk(node: object):
    """Yield ``node`` and every AST node reachable from it, depth-first
    preorder (document order — consumers use first-definition-wins).

    Generic traversal used by the model-construction stage to collect
    user-defined functions, called functions and includes without each
    consumer writing its own recursion.  Children are enumerated through
    the per-class ``__walk_fields__`` table (nodes are slotted, so there
    is no ``vars()``), which also skips statically scalar fields.  The
    traversal is an explicit stack, not recursive generators: ``yield
    from`` chains cost one frame resume per ancestor per node, which
    dominated model construction on large files.
    """
    stack = [node]
    pop = stack.pop
    while stack:
        current = pop()
        if isinstance(current, Node):
            yield current
            children = None
            for name in current.__walk_fields__:
                value = getattr(current, name)
                if isinstance(value, Node) or value.__class__ in (list, tuple):
                    if children is None:
                        children = [value]
                    else:
                        children.append(value)
            if children:
                stack.extend(reversed(children))
        elif isinstance(current, (list, tuple)):
            stack.extend(reversed(current))


class FileIndex:
    """Single-pass index of the nodes the model-construction stage needs.

    One traversal of the tree collects what previously took two generic
    :func:`walk` passes per file (definitions + includes).  The index is
    pickle-safe (it holds references into the same tree it was built
    from) and is stored on the cached ``FileModel``, so cache hits skip
    the traversal entirely.
    """

    __slots__ = (
        "called_names",
        "called_methods",
        "functions",
        "classes",
        "includes",
    )

    def __init__(self) -> None:
        #: lower-cased names of statically-named function calls (``New``
        #: class names included — constructors count as called)
        self.called_names = set()
        #: lower-cased names of statically-named method/static calls
        self.called_methods = set()
        #: every FunctionDecl, document order (first-definition-wins)
        self.functions: List[FunctionDecl] = []
        #: every ClassDecl, document order
        self.classes: List[ClassDecl] = []
        #: every IncludeExpr, document order
        self.includes: List[IncludeExpr] = []


def index_file(tree: "PhpFile") -> FileIndex:
    """Build the :class:`FileIndex` of ``tree`` (one preorder pass)."""
    index = FileIndex()
    called_names = index.called_names
    called_methods = index.called_methods
    stack = [tree]
    pop = stack.pop
    while stack:
        node = pop()
        cls = node.__class__
        if cls is list or cls is tuple:
            stack.extend(reversed(node))
            continue
        fields = getattr(node, "__walk_fields__", None)
        if fields is None:
            continue
        if cls is FunctionCall:
            if type(node.name) is str:
                called_names.add(node.name.lower())
        elif cls is MethodCall:
            if type(node.method) is str:
                called_methods.add(node.method.lower())
        elif cls is StaticCall:
            if type(node.method) is str:
                called_methods.add(node.method.lower())
        elif cls is New:
            if type(node.class_name) is str:
                called_methods.add("__construct")
                called_names.add(node.class_name.lower())
        elif cls is FunctionDecl:
            index.functions.append(node)
        elif cls is ClassDecl:
            index.classes.append(node)
        elif cls is IncludeExpr:
            index.includes.append(node)
        children = None
        for name in fields:
            value = getattr(node, name)
            if isinstance(value, Node) or value.__class__ in (list, tuple):
                if children is None:
                    children = [value]
                else:
                    children.append(value)
        if children:
            stack.extend(reversed(children))
    return index


def iter_bodies(tree: "PhpFile"):
    """Enumerate the executable statement lists of a file in document
    order: the top-level body first, then every function and method body
    (abstract methods have no body; closures are excluded because the
    engine never executes them).

    The order is deterministic for a given tree, which lets per-file
    compilation artifacts (the lowered taint IR) be cached positionally
    and rebound to a freshly parsed or unpickled tree.

    Declarations are located with a dedicated statement-structure
    traversal rather than the generic :func:`walk`: function and class
    declarations are statements, so the traversal never needs to enter
    expression subtrees, which is where most nodes live.  (The one
    exception — a declaration nested inside a closure body — is not
    enumerated here; consumers lower such stray bodies on demand.)
    """
    bodies = [tree.statements]
    _collect_bodies(tree.statements, bodies)
    return bodies


def _collect_bodies(statements, out) -> None:
    """Append nested function/method bodies of ``statements`` to ``out``
    in document order (see :func:`iter_bodies`)."""
    for node in statements:
        cls = node.__class__
        if cls is IfStatement:
            _collect_bodies(node.then, out)
            for clause in node.elseifs:
                _collect_bodies(clause.body, out)
            if node.otherwise:
                _collect_bodies(node.otherwise, out)
        elif (
            cls is WhileStatement
            or cls is DoWhileStatement
            or cls is ForStatement
            or cls is ForeachStatement
        ):
            _collect_bodies(node.body, out)
        elif cls is SwitchStatement:
            for case in node.cases:
                _collect_bodies(case.body, out)
        elif cls is TryStatement:
            _collect_bodies(node.body, out)
            for catch in node.catches:
                _collect_bodies(catch.body, out)
            if node.finally_body:
                _collect_bodies(node.finally_body, out)
        elif cls is Block:
            _collect_bodies(node.statements, out)
        elif cls is FunctionDecl:
            out.append(node.body)
            _collect_bodies(node.body, out)
        elif cls is ClassDecl:
            for method in node.methods:
                if method.body is not None:
                    out.append(method.body)
                    _collect_bodies(method.body, out)
        elif (cls is NamespaceStatement or cls is DeclareStatement) and node.body:
            _collect_bodies(node.body, out)

"""AST node definitions for the PHP subset the analyzers work on.

The phpSAFE analysis stage (paper Section III.C) dispatches on code
constructs: variable uses, assignments, function/method calls, returns,
conditionals and loops, ``unset``, ``global``, includes, echo/print
output, and — for the OOP support of Section III.E — classes, methods,
properties, ``new``, ``->`` and ``::``.  Every one of those constructs is
a distinct node type here.

Nodes are plain mutable dataclasses with a ``line`` attribute (PHP token
line numbers flow through the parser into findings, which is how the
tool reports "the entry point of the vulnerability in the source code").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass
class Node:
    """Base class: every node knows its source line."""

    line: int = 0


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class Variable(Expr):
    """``$name`` — name stored without the ``$``."""

    name: str = ""


@dataclass
class VariableVariable(Expr):
    """``$$expr`` — variable-variable indirection."""

    expr: Optional[Expr] = None


@dataclass
class Literal(Expr):
    """Scalar literal; ``value`` is the decoded Python value."""

    value: object = None
    raw: str = ""


@dataclass
class InterpolatedString(Expr):
    """Double-quoted/heredoc string with embedded expressions.

    ``parts`` interleaves :class:`Literal` (the constant runs) with
    arbitrary expressions.  The paper treats a tainted variable being
    "merged with HTML code" as an XSS-relevant event; interpolation is
    one of the two merge forms (the other is ``.`` concatenation).
    """

    parts: List[Expr] = field(default_factory=list)


@dataclass
class ShellExec(Expr):
    """Backtick operator — ``` `cmd $arg` ```."""

    parts: List[Expr] = field(default_factory=list)


@dataclass
class ArrayItem(Node):
    """One ``key => value`` element of an array literal."""

    key: Optional[Expr] = None
    value: Optional[Expr] = None
    by_ref: bool = False


@dataclass
class ArrayLiteral(Expr):
    """``array(...)`` or ``[...]``."""

    items: List[ArrayItem] = field(default_factory=list)


@dataclass
class ArrayAccess(Expr):
    """``$arr[$index]`` (index may be ``None`` for ``$arr[] = ...``)."""

    array: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class PropertyAccess(Expr):
    """``$obj->prop`` — the T_OBJECT_OPERATOR path of Section III.E."""

    object: Optional[Expr] = None
    name: Union[str, Expr, None] = None


@dataclass
class StaticPropertyAccess(Expr):
    """``ClassName::$prop`` — the T_DOUBLE_COLON path."""

    class_name: str = ""
    name: str = ""


@dataclass
class ClassConstAccess(Expr):
    """``ClassName::CONST``."""

    class_name: str = ""
    name: str = ""


@dataclass
class ConstFetch(Expr):
    """Bare identifier used as a constant (``true``, ``PHP_EOL``, ...)."""

    name: str = ""


@dataclass
class FunctionCall(Expr):
    """``name(args...)``; ``name`` is a string or an expression for
    dynamic calls (``$fn(...)``)."""

    name: Union[str, Expr, None] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class MethodCall(Expr):
    """``$obj->method(args...)``."""

    object: Optional[Expr] = None
    method: Union[str, Expr, None] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class StaticCall(Expr):
    """``ClassName::method(args...)`` (also ``parent::``/``self::``)."""

    class_name: str = ""
    method: Union[str, Expr, None] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class New(Expr):
    """``new ClassName(args...)`` — parsed as a constructor call."""

    class_name: Union[str, Expr, None] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Clone(Expr):
    """``clone $obj``."""

    expr: Optional[Expr] = None


@dataclass
class Assignment(Expr):
    """``target op value`` where op is ``=``, ``.=``, ``+=`` ... or ``=&``.

    Compound ops keep the target's previous value in the dependency set
    (``$x .= $y`` leaves ``$x`` depending on both its old value and
    ``$y``), which the engine models by rewriting to ``$x = $x . $y``.
    """

    target: Optional[Expr] = None
    value: Optional[Expr] = None
    op: str = "="
    by_ref: bool = False


@dataclass
class Binary(Expr):
    """Binary operation, including ``.`` concatenation."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Unary(Expr):
    """Prefix unary operation (``!``, ``-``, ``+``, ``~``, ``@``)."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Ternary(Expr):
    """``cond ? a : b`` (``a`` may be None for the short form ``?:``)."""

    cond: Optional[Expr] = None
    if_true: Optional[Expr] = None
    if_false: Optional[Expr] = None


@dataclass
class Cast(Expr):
    """``(int)$x`` etc.; ``to`` is the lower-cased target type name."""

    to: str = ""
    operand: Optional[Expr] = None


@dataclass
class IncDec(Expr):
    """``++$x``, ``$x--`` ..."""

    op: str = "++"
    target: Optional[Expr] = None
    prefix: bool = True


@dataclass
class IssetExpr(Expr):
    """``isset($a, $b)``."""

    vars: List[Expr] = field(default_factory=list)


@dataclass
class EmptyExpr(Expr):
    """``empty($x)``."""

    expr: Optional[Expr] = None


@dataclass
class ListExpr(Expr):
    """``list($a, , $b)`` assignment target."""

    targets: List[Optional[Expr]] = field(default_factory=list)


@dataclass
class Param(Node):
    """A function/method parameter."""

    name: str = ""
    default: Optional[Expr] = None
    by_ref: bool = False
    type_hint: Optional[str] = None


@dataclass
class ClosureUse(Node):
    """One entry of a closure ``use (...)`` clause."""

    name: str = ""
    by_ref: bool = False


@dataclass
class Closure(Expr):
    """Anonymous function."""

    params: List[Param] = field(default_factory=list)
    uses: List[ClosureUse] = field(default_factory=list)
    body: List["Statement"] = field(default_factory=list)
    static: bool = False
    by_ref: bool = False


@dataclass
class IncludeExpr(Expr):
    """``include/include_once/require/require_once path-expr``."""

    kind: str = "include"
    path: Optional[Expr] = None


@dataclass
class ExitExpr(Expr):
    """``exit``/``die`` with optional status expression."""

    expr: Optional[Expr] = None


@dataclass
class PrintExpr(Expr):
    """``print expr`` — an expression in PHP, an XSS sink for us."""

    expr: Optional[Expr] = None


@dataclass
class InstanceofExpr(Expr):
    """``$x instanceof ClassName``."""

    expr: Optional[Expr] = None
    class_name: Union[str, Expr, None] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Statement(Node):
    """Base class for statements."""


@dataclass
class ErrorStmt(Statement):
    """A region the parser skipped during panic-mode recovery.

    When parsing with ``recover=True``, an unparseable statement is
    replaced by this node instead of aborting the file: the parser
    resynchronizes at the next statement boundary and records the span
    it had to skip.  The engine treats it as a no-op; the printer emits
    a comment.  ``reason`` is the original :class:`PhpParseError`
    message, ``line``/``end_line`` the skipped source span, and
    ``tokens_skipped`` the number of tokens discarded.
    """

    reason: str = ""
    end_line: int = 0
    tokens_skipped: int = 0


@dataclass
class ExpressionStatement(Statement):
    """An expression evaluated for its side effects."""

    expr: Optional[Expr] = None


@dataclass
class EchoStatement(Statement):
    """``echo expr, expr;`` and ``<?= expr ?>`` — the canonical XSS sink."""

    exprs: List[Expr] = field(default_factory=list)


@dataclass
class InlineHTML(Statement):
    """Literal HTML outside ``<?php ?>``."""

    text: str = ""


@dataclass
class Block(Statement):
    """``{ ... }``."""

    statements: List[Statement] = field(default_factory=list)


@dataclass
class ElseIfClause(Node):
    cond: Optional[Expr] = None
    body: List[Statement] = field(default_factory=list)


@dataclass
class IfStatement(Statement):
    """``if/elseif/else`` — branches are *joined*, not chosen (the paper's
    context-sensitive analysis considers all conditional paths)."""

    cond: Optional[Expr] = None
    then: List[Statement] = field(default_factory=list)
    elseifs: List[ElseIfClause] = field(default_factory=list)
    otherwise: Optional[List[Statement]] = None


@dataclass
class WhileStatement(Statement):
    cond: Optional[Expr] = None
    body: List[Statement] = field(default_factory=list)


@dataclass
class DoWhileStatement(Statement):
    body: List[Statement] = field(default_factory=list)
    cond: Optional[Expr] = None


@dataclass
class ForStatement(Statement):
    init: List[Expr] = field(default_factory=list)
    cond: List[Expr] = field(default_factory=list)
    update: List[Expr] = field(default_factory=list)
    body: List[Statement] = field(default_factory=list)


@dataclass
class ForeachStatement(Statement):
    """``foreach ($arr as $k => $v)``: $k/$v inherit $arr's taint."""

    subject: Optional[Expr] = None
    key_var: Optional[Expr] = None
    value_var: Optional[Expr] = None
    by_ref: bool = False
    body: List[Statement] = field(default_factory=list)


@dataclass
class SwitchCase(Node):
    """One ``case expr:`` (``test is None`` for ``default:``)."""

    test: Optional[Expr] = None
    body: List[Statement] = field(default_factory=list)


@dataclass
class SwitchStatement(Statement):
    subject: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class BreakStatement(Statement):
    level: int = 1


@dataclass
class ContinueStatement(Statement):
    level: int = 1


@dataclass
class ReturnStatement(Statement):
    """``return expr`` — the engine binds a function-named pseudo-variable
    to the returned expression (the paper's T_RETURN handling)."""

    expr: Optional[Expr] = None


@dataclass
class GlobalStatement(Statement):
    """``global $a, $b`` — links locals to the global scope."""

    names: List[str] = field(default_factory=list)


@dataclass
class StaticVarStatement(Statement):
    """``static $x = 0;`` inside a function."""

    vars: List[Tuple[str, Optional[Expr]]] = field(default_factory=list)


@dataclass
class UnsetStatement(Statement):
    """``unset($x)`` — T_UNSET: the variable becomes untainted."""

    vars: List[Expr] = field(default_factory=list)


@dataclass
class ThrowStatement(Statement):
    expr: Optional[Expr] = None


@dataclass
class CatchClause(Node):
    class_name: str = ""
    var_name: str = ""
    body: List[Statement] = field(default_factory=list)


@dataclass
class TryStatement(Statement):
    body: List[Statement] = field(default_factory=list)
    catches: List[CatchClause] = field(default_factory=list)
    finally_body: Optional[List[Statement]] = None


@dataclass
class FunctionDecl(Statement):
    """A user-defined function (paper: parsed once, summarized)."""

    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: List[Statement] = field(default_factory=list)
    by_ref: bool = False
    doc_comment: Optional[str] = None


@dataclass
class PropertyDecl(Node):
    """One declared property of a class."""

    name: str = ""
    default: Optional[Expr] = None
    visibility: str = "public"
    static: bool = False


@dataclass
class ClassConstDecl(Node):
    name: str = ""
    value: Optional[Expr] = None


@dataclass
class MethodDecl(Node):
    """A class method: a function plus OOP modifiers."""

    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Optional[List[Statement]] = None  # None for abstract methods
    visibility: str = "public"
    static: bool = False
    abstract: bool = False
    final: bool = False
    by_ref: bool = False


@dataclass
class ClassDecl(Statement):
    """``class``, ``interface`` or ``trait`` declaration."""

    name: str = ""
    parent: Optional[str] = None
    interfaces: List[str] = field(default_factory=list)
    kind: str = "class"  # class | interface | trait
    is_abstract: bool = False
    is_final: bool = False
    constants: List[ClassConstDecl] = field(default_factory=list)
    properties: List[PropertyDecl] = field(default_factory=list)
    methods: List[MethodDecl] = field(default_factory=list)
    uses: List[str] = field(default_factory=list)  # trait use


@dataclass
class NamespaceStatement(Statement):
    name: str = ""
    body: Optional[List[Statement]] = None


@dataclass
class UseStatement(Statement):
    """Top-level ``use Foo\\Bar as Baz;`` import."""

    name: str = ""
    alias: Optional[str] = None


@dataclass
class DeclareStatement(Statement):
    directives: List[Tuple[str, Expr]] = field(default_factory=list)
    body: Optional[List[Statement]] = None


@dataclass
class GotoStatement(Statement):
    label: str = ""


@dataclass
class LabelStatement(Statement):
    name: str = ""


@dataclass
class ConstStatement(Statement):
    """Top-level ``const NAME = value;``."""

    consts: List[Tuple[str, Expr]] = field(default_factory=list)


@dataclass
class PhpFile(Node):
    """A parsed PHP file: the root of the AST."""

    filename: str = "<string>"
    statements: List[Statement] = field(default_factory=list)


def walk(node: object):
    """Yield ``node`` and every AST node reachable from it, depth-first.

    Generic traversal used by the model-construction stage to collect
    user-defined functions, called functions and includes without each
    consumer writing its own recursion.
    """
    if isinstance(node, Node):
        yield node
        for value in vars(node).values():
            yield from _walk_value(value)
    elif isinstance(node, (list, tuple)):
        for item in node:
            yield from _walk_value(item)


def _walk_value(value: object):
    if isinstance(value, Node):
        yield from walk(value)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _walk_value(item)

"""A PHP lexer equivalent to ``token_get_all``.

phpSAFE's model construction (paper Section III.B) starts from the token
stream PHP's ``token_get_all`` produces.  This module reimplements that
scanner in Python: it understands inline HTML versus ``<?php`` regions,
single- and double-quoted strings with ``$var`` / ``{$expr}``
interpolation, heredoc/nowdoc, line and block comments, casts, and the
full PHP 5 operator set.

The scanner is single-pass over the source string: every match is
anchored at ``self.pos`` (``pattern.match(source, pos)`` /
``source.startswith(lit, pos)``) so no intermediate slices are built,
and PHP-mode scanning dispatches through a table keyed on the current
character instead of a conditional ladder.  Identifier and variable
spellings are interned — plugin code repeats the same names thousands
of times, and interning makes the later ``==`` checks in the parser
and engine pointer comparisons.

The public entry points are :func:`tokenize` (returns every token,
including whitespace and comments — mirroring ``token_get_all``) and
:func:`tokenize_significant` (comments and whitespace stripped, which is
what the analyzer consumes after the paper's "clean the AST" step).
"""

from __future__ import annotations

import re
import time
from sys import intern
from typing import Iterator, List, Optional

from ..incidents import Incident, IncidentSeverity, IncidentStage
from ..perf import counters
from .errors import PhpLexError
from .tokens import CASTS, KEYWORDS, OPERATORS, Token, TokenType

_IDENT_START = re.compile(r"[A-Za-z_\x80-\xff]")
_IDENT_FULL = re.compile(r"[A-Za-z_\x80-\xff][A-Za-z0-9_\x80-\xff]*")
_VARIABLE = re.compile(r"\$[A-Za-z_\x80-\xff][A-Za-z0-9_\x80-\xff]*")
_WHITESPACE = re.compile(r"[ \t\r\n]+")
_LINE_COMMENT = re.compile(r"(?:#|//).*?(?=\?>|\n|$)", re.DOTALL)
_HEX = re.compile(r"0[xX][0-9a-fA-F]+")
_BIN = re.compile(r"0[bB][01]+")
_FLOAT = re.compile(r"(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+")
_INT = re.compile(r"\d+")
_CAST = re.compile(r"\(\s*([A-Za-z]+)\s*\)")
_OPEN_TAG = re.compile(r"<\?(php\b|=)?", re.IGNORECASE)
_HEREDOC_START = re.compile(r"<<<[ \t]*(['\"]?)([A-Za-z_][A-Za-z0-9_]*)\1\r?\n")
_INTERP_INDEX = re.compile(r"\$[A-Za-z_][A-Za-z0-9_]*|\d+|[A-Za-z_][A-Za-z0-9_]*")
_INTERP_PROP = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: identifier characters, used to build the dispatch table below
_IDENT_CHARS = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
    + "".join(chr(c) for c in range(0x80, 0x100))
)

#: multi-character operators grouped by first character, longest first
#: (inherits the ordering of :data:`OPERATORS`)
_OPERATORS_BY_FIRST = {}
for _spelling, _type in OPERATORS:
    _OPERATORS_BY_FIRST.setdefault(_spelling[0], []).append((_spelling, _type))
del _spelling, _type

#: spelling -> token type for the master-regex operator branch
_OPERATOR_TYPES = dict(OPERATORS)

#: One alternation that matches the overwhelmingly common PHP-mode
#: tokens in a single C-level regex step: an optional leading
#: whitespace run (group 1 — fused into the token match so a
#: ``ws token`` pair costs one scanner step, not two) followed by
#: variables, identifiers, numbers, single-quoted and constant
#: double-quoted strings, comments, casts, the close tag, multi-char
#: operators and safe single-char tokens.  Constructs that need
#: stateful handling — interpolated/unterminated strings, backtick,
#: ``<`` (heredoc and the ``<``-family operators),
#: ``$``-variable-variables, ``\`` — are deliberately absent so they
#: fall through to the dispatch-table slow path (whitespace directly
#: before such a construct falls through with it, which is why the
#: whitespace dispatch handler still exists).  Alternative order is
#: semantic: comments before the ``/`` operators, numbers before
#: ``.``/``.=``, multi-char operators before single chars, the cast
#: alternative before a bare ``(``, and the close tag before a bare
#: ``?``.
_MASTER = re.compile(
    r"([ \t\r\n]+)?"  # 1: optional whitespace run before the token
    r"(?:(\$[A-Za-z_\x80-\xff][A-Za-z0-9_\x80-\xff]*)"  # 2: variable
    r"|([A-Za-z_\x80-\xff][A-Za-z0-9_\x80-\xff]*)"  # 3: identifier/keyword
    r"|(0[xX][0-9a-fA-F]+|0[bB][01]+)"  # 4: hex/bin integer
    r"|((?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)"  # 5: float
    r"|(\d+)"  # 6: decimal integer
    r"|('(?:[^'\\]|\\[\s\S])*')"  # 7: single-quoted string
    # 8: double-quoted string with no interpolation ($var / ${ / {$)
    r'|("(?:[^"\\${]|\\[\s\S]|\$(?![A-Za-z_\x80-\xff{])|\{(?!\$))*")'
    r"|(/\*[^*]*\*+(?:[^/*][^*]*\*+)*/)"  # 9: block comment
    r"|((?://|\#)(?:[^\n?]|\?(?!>))*)"  # 10: line comment (stops at ?>)
    # 11: cast — the parenthesized spelling is the token value
    r"|\(\s*((?i:int|integer|bool|boolean|float|double|real|string"
    r"|array|object|unset))\s*\)"
    r"|(\?>)"  # 12: close tag
    r"|(>>=|===|!==|\.\.\.|\?\?=|\*\*|\?\?|==|!=|>=|&&|\|\||->|=>|::"
    r"|\+\+|--|\+=|-=|\*=|/=|\.=|%=|&=|\|=|\^=|>>)"  # 13: multi-char operator
    r"|([;,{}()\[\]=+\-*%!&|^~:@>?./]))"  # 14: bare single-char token
)


class Lexer:
    """Streaming PHP scanner over a single source string.

    The scanner is a small state machine: it starts in HTML mode, enters
    PHP mode at ``<?php`` / ``<?=``, and within PHP mode pushes into
    string-interpolation sub-modes for double-quoted strings and heredocs.
    """

    def __init__(
        self,
        source: str,
        filename: str = "<string>",
        recover: bool = False,
        significant: bool = False,
    ) -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.tokens: List[Token] = []
        #: with ``recover=True``, unterminated strings/heredocs are
        #: closed at EOF instead of raising, and each repair is recorded
        #: here as a recovered lex incident (paper Section V.E)
        self.recover = recover
        #: with ``significant=True``, whitespace and comments advance the
        #: scanner without ever constructing their Token objects — the
        #: paper's "clean the AST" step fused into the scan itself
        self.significant = significant
        self.incidents: List[Incident] = []

    def _record_recovery(self, reason: str, line: int) -> None:
        self.incidents.append(
            Incident(
                stage=IncidentStage.LEX,
                severity=IncidentSeverity.WARNING,
                file=self.filename,
                reason=reason,
                recovered=True,
                line=line,
                end_line=self.line,
            )
        )

    # -- helpers ---------------------------------------------------------

    def _emit(self, type_: TokenType, value: str, line: Optional[int] = None) -> None:
        self.tokens.append(Token(type_, value, self.line if line is None else line))

    def _advance(self, text: str) -> None:
        """Consume ``text`` (already known to be at ``self.pos``)."""
        self.pos += len(text)
        self.line += text.count("\n")

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    # -- top level ---------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Scan the whole source and return the token list."""
        start = time.perf_counter()
        source = self.source
        while self.pos < len(source):
            match = _OPEN_TAG.search(source, self.pos)
            if match is None:
                html = source[self.pos :]
                self._emit(TokenType.INLINE_HTML, html)
                self._advance(html)
                break
            if match.start() > self.pos:
                html = source[self.pos : match.start()]
                self._emit(TokenType.INLINE_HTML, html)
                self._advance(html)
            tag = match.group(0)
            if tag.lower() == "<?=":
                self._emit(TokenType.OPEN_TAG_WITH_ECHO, tag)
            else:
                self._emit(TokenType.OPEN_TAG, tag)
            self._advance(tag)
            self._lex_php()
        counters.lex_seconds += time.perf_counter() - start
        counters.tokens_lexed += len(self.tokens)
        return self.tokens

    # -- PHP mode ----------------------------------------------------------

    def _lex_php(self) -> None:
        """Scan PHP code until ``?>`` or end of input.

        The hot path is one C-level :data:`_MASTER` regex match per
        token; only stateful constructs (strings, comments, heredocs,
        casts) fall through to the per-character dispatch table.
        """
        source = self.source
        size = len(source)
        dispatch_get = _DISPATCH.get
        append = self.tokens.append
        significant = self.significant
        keywords_get = KEYWORDS.get
        operator_types = _OPERATOR_TYPES
        token_cls = Token
        string_type = TokenType.STRING
        char_type = TokenType.CHAR
        variable_type = TokenType.VARIABLE
        ws_type = TokenType.WHITESPACE
        # pos/line live in locals across the hot loop; the slow-path
        # handlers read and write the instance attributes, so the loop
        # syncs before and reloads after every fallback call
        pos = self.pos
        line = self.line
        while pos < size:
            # Pattern.scanner (stable CPython API since 2.x) anchors
            # each match at the previous match's end entirely in C, so
            # the loop never re-passes (source, pos) and only calls
            # ``end()`` when the scanner stops at a slow-path construct
            scanner_match = _MASTER.scanner(source, pos).match
            match = None
            while True:
                prev = match
                match = scanner_match()
                if match is None:
                    if prev is not None:
                        pos = prev.end()
                    break
                index = match.lastindex
                ws = match.group(1)
                if ws is not None:
                    if not significant:
                        append(token_cls(ws_type, ws, line))
                    line += ws.count("\n")
                if index == 3:  # identifier / keyword
                    text = match.group(3)
                    type_ = keywords_get(text)
                    if type_ is None:
                        if not text.islower():
                            type_ = keywords_get(text.lower())
                        if type_ is None:
                            type_ = string_type
                    append(token_cls(type_, intern(text), line))
                elif index == 14:  # bare single-char token
                    append(token_cls(char_type, match.group(14), line))
                elif index == 2:  # variable
                    append(token_cls(variable_type, intern(match.group(2)), line))
                elif index == 13:  # multi-char operator
                    text = match.group(13)
                    append(token_cls(operator_types[text], text, line))
                elif index == 7 or index == 8:  # quoted string, no interpolation
                    text = match.group(index)
                    append(token_cls(TokenType.CONSTANT_ENCAPSED_STRING, text, line))
                    line += text.count("\n")
                elif index == 9:  # block comment
                    text = match.group(9)
                    if not significant:
                        type_ = (
                            TokenType.DOC_COMMENT
                            if text.startswith("/**") and len(text) > 4
                            else TokenType.COMMENT
                        )
                        append(token_cls(type_, text, line))
                    line += text.count("\n")
                elif index == 10:  # line comment
                    if not significant:
                        append(token_cls(TokenType.COMMENT, match.group(10), line))
                elif index == 11:  # cast — token value is the full spelling
                    start = match.start() if ws is None else match.end(1)
                    text = source[start : match.end()]
                    append(token_cls(CASTS[match.group(11).lower()], text, line))
                elif index == 12:  # ?> close tag (swallows one trailing newline)
                    pos = match.end()
                    if pos < size and source[pos] == "\n":
                        append(token_cls(TokenType.CLOSE_TAG, "?>\n", line))
                        pos += 1
                        line += 1
                    else:
                        append(token_cls(TokenType.CLOSE_TAG, "?>", line))
                    self.pos = pos
                    self.line = line
                    return
                elif index == 5:  # float
                    append(token_cls(TokenType.DNUMBER, match.group(5), line))
                else:  # 4 or 6: integer
                    append(token_cls(TokenType.LNUMBER, match.group(index), line))
            if pos >= size:
                break
            # the scanner stopped mid-input: a stateful construct (or
            # whitespace directly before one) sits at ``pos``
            self.pos = pos
            self.line = line
            char = source[pos]
            handler = dispatch_get(char)
            if handler is not None:
                handler(self)
            else:
                self._lex_operator_or_char(char)
            pos = self.pos
            line = self.line
        self.pos = pos
        self.line = line

    def _lex_operator_or_char(self, char: str) -> None:
        """Multi-character operator at ``pos``, else a bare CHAR token."""
        group = _OPERATORS_BY_FIRST.get(char)
        if group is not None:
            source, pos = self.source, self.pos
            for spelling, type_ in group:
                if source.startswith(spelling, pos):
                    self._emit(type_, spelling)
                    self.pos = pos + len(spelling)
                    return
        # bare one-character token ("code semantics" per the paper)
        self._emit(TokenType.CHAR, char)
        self.pos += 1

    def _match_operator(self) -> Optional[Token]:
        group = _OPERATORS_BY_FIRST.get(self.source[self.pos])
        if group is not None:
            for spelling, type_ in group:
                if self.source.startswith(spelling, self.pos):
                    self._emit(type_, spelling)
                    self.pos += len(spelling)
                    return self.tokens[-1]
        return None

    # -- dispatch handlers --------------------------------------------------

    def _lex_whitespace(self) -> None:
        match = _WHITESPACE.match(self.source, self.pos)
        assert match is not None
        text = match.group(0)
        if not self.significant:
            self.tokens.append(Token(TokenType.WHITESPACE, text, self.line))
        self.pos = match.end()
        self.line += text.count("\n")

    def _lex_slash(self) -> None:
        source, pos = self.source, self.pos
        if source.startswith("/*", pos):
            self._lex_block_comment()
        elif source.startswith("//", pos):
            self._lex_line_comment()
        else:
            self._lex_operator_or_char("/")

    def _lex_dollar(self) -> None:
        nxt = self._peek(1)
        if nxt and _IDENT_START.match(nxt):
            self._lex_variable()
        else:
            self._lex_operator_or_char("$")

    def _lex_lt(self) -> None:
        if self.source.startswith("<<<", self.pos) and self._lex_heredoc():
            return
        self._lex_operator_or_char("<")

    def _lex_dot(self) -> None:
        if self._peek(1).isdigit():
            self._lex_number()
        else:
            self._lex_operator_or_char(".")

    def _lex_open_paren(self) -> None:
        cast = _CAST.match(self.source, self.pos)
        if cast is not None and cast.group(1).lower() in CASTS:
            self._emit(CASTS[cast.group(1).lower()], cast.group(0))
            self._advance(cast.group(0))
        else:
            self._emit(TokenType.CHAR, "(")
            self.pos += 1

    def _lex_backslash(self) -> None:
        self._emit(TokenType.NS_SEPARATOR, "\\")
        self.pos += 1

    # -- comments -----------------------------------------------------------

    def _lex_block_comment(self) -> None:
        end = self.source.find("*/", self.pos + 2)
        if end == -1:
            text = self.source[self.pos :]
        else:
            text = self.source[self.pos : end + 2]
        if not self.significant:
            type_ = (
                TokenType.DOC_COMMENT
                if text.startswith("/**") and len(text) > 4
                else TokenType.COMMENT
            )
            self.tokens.append(Token(type_, text, self.line))
        self.pos += len(text)
        self.line += text.count("\n")

    def _lex_line_comment(self) -> None:
        # a line comment ends at newline or at ?> (which stays in the stream)
        match = _LINE_COMMENT.match(self.source, self.pos)
        assert match is not None
        text = match.group(0)
        # note: ".*?" is greedy-enough here because comments cannot span lines
        newline_index = text.find("\n")
        if newline_index != -1:  # pragma: no cover - regex stops at newline
            text = text[:newline_index]
        if not self.significant:
            self.tokens.append(Token(TokenType.COMMENT, text, self.line))
        self.pos += len(text)

    # -- simple tokens ------------------------------------------------------

    def _lex_variable(self) -> None:
        match = _VARIABLE.match(self.source, self.pos)
        assert match is not None
        text = intern(match.group(0))
        self.tokens.append(Token(TokenType.VARIABLE, text, self.line))
        self.pos = match.end()

    def _lex_number(self) -> None:
        source, pos = self.source, self.pos
        for pattern, type_ in (
            (_HEX, TokenType.LNUMBER),
            (_BIN, TokenType.LNUMBER),
            (_FLOAT, TokenType.DNUMBER),
            (_INT, TokenType.LNUMBER),
        ):
            match = pattern.match(source, pos)
            if match is not None:
                self._emit(type_, match.group(0))
                self.pos = match.end()
                return
        raise PhpLexError(f"cannot scan number at line {self.line}", self.filename, self.line)

    def _lex_identifier(self) -> None:
        match = _IDENT_FULL.match(self.source, self.pos)
        assert match is not None
        word = match.group(0)
        type_ = KEYWORDS.get(word)
        if type_ is None:
            if not word.islower():
                type_ = KEYWORDS.get(word.lower())
            if type_ is None:
                type_ = TokenType.STRING
        self.tokens.append(Token(type_, intern(word), self.line))
        self.pos = match.end()

    # -- strings --------------------------------------------------------------

    def _lex_single_quoted(self) -> None:
        start_line = self.line
        source = self.source
        size = len(source)
        index = self.pos + 1
        terminated = False
        while index < size:
            char = source[index]
            if char == "\\":
                index += 2
                continue
            if char == "'":
                terminated = True
                break
            index += 1
        if not terminated or index >= size:
            if not self.recover:
                raise PhpLexError(
                    "unterminated single-quoted string", self.filename, start_line
                )
            # panic-mode repair: close the string at EOF and keep going
            text = source[self.pos :]
            self._emit(TokenType.CONSTANT_ENCAPSED_STRING, text + "'", start_line)
            self._advance(text)
            self._record_recovery("unterminated single-quoted string", start_line)
            return
        text = source[self.pos : index + 1]
        self._emit(TokenType.CONSTANT_ENCAPSED_STRING, text, start_line)
        self._advance(text)

    def _lex_backtick(self) -> None:
        """Shell-exec strings: lexed like double-quoted with ` delimiters."""
        self._emit(TokenType.CHAR, "`")
        self._advance("`")
        self._lex_interpolated_body(terminator="`")
        if self._peek() == "`":
            self._emit(TokenType.CHAR, "`")
            self._advance("`")

    def _lex_double_quoted(self) -> None:
        """Double-quoted string, constant or interpolated.

        PHP emits a plain ``T_CONSTANT_ENCAPSED_STRING`` when the string
        holds no interpolation; otherwise it emits ``"`` as a bare token
        followed by the encapsed parts.
        """
        start_line = self.line
        body, has_interpolation, terminated = self._scan_dq_body(self.pos + 1)
        if not terminated and not self.recover:
            raise PhpLexError(
                "unterminated double-quoted string", self.filename, start_line
            )
        if not has_interpolation:
            if not terminated:
                # panic-mode repair: close the string at EOF
                text = self.source[self.pos :]
                self._emit(TokenType.CONSTANT_ENCAPSED_STRING, text + '"', start_line)
                self._advance(text)
                self._record_recovery("unterminated double-quoted string", start_line)
                return
            text = self.source[self.pos : self.pos + 1 + len(body) + 1]
            self._emit(TokenType.CONSTANT_ENCAPSED_STRING, text, start_line)
            self._advance(text)
            return
        self._emit(TokenType.CHAR, '"')
        self._advance('"')
        self._lex_interpolated_body(terminator='"')
        if self._peek() != '"':
            if not self.recover:
                raise PhpLexError(
                    "unterminated double-quoted string", self.filename, start_line
                )
            # panic-mode repair: synthesize the closing quote at EOF
            self._emit(TokenType.CHAR, '"')
            self._record_recovery("unterminated double-quoted string", start_line)
            return
        self._emit(TokenType.CHAR, '"')
        self._advance('"')

    def _scan_dq_body(self, start: int) -> tuple:
        """Scan ahead from ``start`` to the closing quote.

        Returns ``(raw body, has_interpolation, terminated)``; an
        unterminated string scans to EOF with ``terminated=False``.
        """
        source = self.source
        size = len(source)
        index = start
        has_interpolation = False
        while index < size:
            char = source[index]
            if char == "\\":
                index += 2
                continue
            if char == '"':
                return source[start:index], has_interpolation, True
            if char == "$" and index + 1 < size:
                nxt = source[index + 1]
                if nxt == "{" or _IDENT_START.match(nxt):
                    has_interpolation = True
            if char == "{" and index + 1 < size and source[index + 1] == "$":
                has_interpolation = True
            index += 1
        return source[start:], has_interpolation, False

    def _lex_interpolated_body(self, terminator: str, heredoc_label: str = "") -> None:
        """Scan the inside of an interpolated string.

        Emits ``T_ENCAPSED_AND_WHITESPACE`` for literal runs and the
        interpolation tokens PHP produces for ``$var``, ``$var[i]``,
        ``$var->prop`` (simple syntax) and ``{$expr}`` / ``${name}``
        (complex syntax).  Stops *before* the terminator.
        """
        source = self.source
        size = len(source)
        literal_start = self.pos
        literal_line = self.line
        end_pattern = _heredoc_end_pattern(heredoc_label) if heredoc_label else None

        def flush() -> None:
            nonlocal literal_start, literal_line
            if self.pos > literal_start:
                text = source[literal_start:self.pos]
                self.tokens.append(
                    Token(TokenType.ENCAPSED_AND_WHITESPACE, text, literal_line)
                )
            literal_start = self.pos
            literal_line = self.line

        while self.pos < size:
            char = source[self.pos]
            if end_pattern is not None:
                if self._at_heredoc_end(end_pattern):
                    flush()
                    return
            elif char == terminator:
                flush()
                return

            if char == "\\" and end_pattern is None:
                self.pos += 2
                continue
            if char == "\n":
                self.pos += 1
                self.line += 1
                continue
            if char == "$":
                nxt = self._peek(1)
                if nxt and _IDENT_START.match(nxt):
                    flush()
                    self._lex_variable()
                    self._lex_simple_interp_suffix()
                    literal_start = self.pos
                    literal_line = self.line
                    continue
                if nxt == "{":
                    flush()
                    self._emit(TokenType.DOLLAR_OPEN_CURLY_BRACES, "${")
                    self._advance("${")
                    self._lex_complex_interp()
                    literal_start = self.pos
                    literal_line = self.line
                    continue
            if char == "{" and self._peek(1) == "$":
                flush()
                self._emit(TokenType.CURLY_OPEN, "{")
                self._advance("{")
                self._lex_complex_interp()
                literal_start = self.pos
                literal_line = self.line
                continue
            self.pos += 1
        flush()

    def _lex_simple_interp_suffix(self) -> None:
        """``$var[index]`` and ``$var->prop`` simple interpolation syntax."""
        if self._peek() == "[":
            self._emit(TokenType.CHAR, "[")
            self._advance("[")
            match = _INTERP_INDEX.match(self.source, self.pos)
            if match is not None:
                text = match.group(0)
                if text.startswith("$"):
                    self._emit(TokenType.VARIABLE, intern(text))
                elif text.isdigit():
                    self._emit(TokenType.NUM_STRING, text)
                else:
                    self._emit(TokenType.STRING, intern(text))
                self._advance(text)
            if self._peek() == "]":
                self._emit(TokenType.CHAR, "]")
                self._advance("]")
        elif self.source.startswith("->", self.pos) and _IDENT_START.match(
            self._peek(2) or ""
        ):
            self._emit(TokenType.OBJECT_OPERATOR, "->")
            self._advance("->")
            match = _INTERP_PROP.match(self.source, self.pos)
            assert match is not None
            self._emit(TokenType.STRING, intern(match.group(0)))
            self._advance(match.group(0))

    def _lex_complex_interp(self) -> None:
        """Lex regular PHP tokens until the matching ``}``."""
        depth = 1
        while self.pos < len(self.source) and depth > 0:
            char = self.source[self.pos]
            if char == "{":
                depth += 1
                self._emit(TokenType.CHAR, "{")
                self._advance("{")
                continue
            if char == "}":
                depth -= 1
                self._emit(TokenType.CHAR, "}")
                self._advance("}")
                continue
            before = self.pos
            self._lex_php_single()
            if self.pos == before:  # safety against infinite loops
                raise PhpLexError(
                    "stuck while lexing string interpolation", self.filename, self.line
                )

    def _lex_php_single(self) -> None:
        """Lex exactly one PHP-mode token (used inside ``{$...}``)."""
        char = self._peek()
        if char in " \t\r\n":
            self._lex_whitespace()
        elif char == "$" and _IDENT_START.match(self._peek(1) or ""):
            self._lex_variable()
        elif char == "'":
            self._lex_single_quoted()
        elif char == '"':
            self._lex_double_quoted()
        elif char.isdigit():
            self._lex_number()
        elif _IDENT_START.match(char):
            self._lex_identifier()
        elif self._match_operator() is not None:
            pass
        else:
            self._emit(TokenType.CHAR, char)
            self._advance(char)

    # -- heredoc ---------------------------------------------------------------

    def _at_heredoc_end(self, pattern: "re.Pattern") -> bool:
        """True when the current line starts the heredoc terminator."""
        if self.pos != 0 and self.source[self.pos - 1] != "\n":
            return False
        return pattern.match(self.source, self.pos) is not None

    def _lex_heredoc(self) -> bool:
        match = _HEREDOC_START.match(self.source, self.pos)
        if match is None:
            return False
        opener = match.group(0)
        quote = match.group(1)
        label = match.group(2)
        start_line = self.line
        self._emit(TokenType.START_HEREDOC, opener.rstrip("\r\n"), start_line)
        self._advance(opener)
        if quote == "'":
            # nowdoc: no interpolation, scan straight to the terminator
            end_pattern = _heredoc_end_pattern(label)
            source = self.source
            size = len(source)
            literal_start = self.pos
            literal_line = self.line
            while self.pos < size and not self._at_heredoc_end(end_pattern):
                if source[self.pos] == "\n":
                    self.line += 1
                self.pos += 1
            if self.pos > literal_start:
                self.tokens.append(
                    Token(
                        TokenType.ENCAPSED_AND_WHITESPACE,
                        source[literal_start:self.pos],
                        literal_line,
                    )
                )
        else:
            self._lex_interpolated_body(terminator="", heredoc_label=label)
        end = re.match(rf"[ \t]*{re.escape(label)}", self.source[self.pos :])
        if end is None:
            if not self.recover:
                raise PhpLexError(
                    f"unterminated heredoc <<<{label}", self.filename, start_line
                )
            # panic-mode repair: close the heredoc at EOF
            self._emit(TokenType.END_HEREDOC, "")
            self._record_recovery(f"unterminated heredoc <<<{label}", start_line)
            return True
        self._emit(TokenType.END_HEREDOC, end.group(0))
        self._advance(end.group(0))
        return True


#: per-label cache of compiled heredoc-terminator patterns
_HEREDOC_END_CACHE = {}


def _heredoc_end_pattern(label: str) -> "re.Pattern":
    pattern = _HEREDOC_END_CACHE.get(label)
    if pattern is None:
        pattern = re.compile(rf"[ \t]*{re.escape(label)}(?![A-Za-z0-9_])")
        if len(_HEREDOC_END_CACHE) < 256:  # bound pathological label churn
            _HEREDOC_END_CACHE[label] = pattern
    return pattern


#: PHP-mode dispatch table: first character -> handler.  Characters not
#: present fall through to operator-or-CHAR handling.
_DISPATCH = {}
for _char in " \t\r\n":
    _DISPATCH[_char] = Lexer._lex_whitespace
for _char in "0123456789":
    _DISPATCH[_char] = Lexer._lex_number
for _char in _IDENT_CHARS:
    _DISPATCH[_char] = Lexer._lex_identifier
_DISPATCH["/"] = Lexer._lex_slash
_DISPATCH["#"] = Lexer._lex_line_comment
_DISPATCH["$"] = Lexer._lex_dollar
_DISPATCH["'"] = Lexer._lex_single_quoted
_DISPATCH['"'] = Lexer._lex_double_quoted
_DISPATCH["`"] = Lexer._lex_backtick
_DISPATCH["<"] = Lexer._lex_lt
_DISPATCH["."] = Lexer._lex_dot
_DISPATCH["("] = Lexer._lex_open_paren
_DISPATCH["\\"] = Lexer._lex_backslash
del _char


def tokenize(
    source: str, filename: str = "<string>", recover: bool = False
) -> List[Token]:
    """Tokenize PHP source, mirroring ``token_get_all`` output."""
    return Lexer(source, filename, recover=recover).tokenize()


def tokenize_significant(
    source: str, filename: str = "<string>", recover: bool = False
) -> List[Token]:
    """Tokenize and drop whitespace/comments (the paper's cleaning step).

    Trivia tokens are never constructed at all: the lexer runs in
    significant mode, where whitespace/comment handlers advance the
    scanner without allocating.
    """
    return Lexer(source, filename, recover=recover, significant=True).tokenize()


def iter_lines_of_code(source: str) -> Iterator[str]:
    """Yield non-blank, non-comment-only physical lines (LOC counting).

    Table III of the paper reports per-KLOC analysis cost; this helper
    provides the LOC measure used by the evaluation harness.
    """
    in_block_comment = False
    for raw_line in source.splitlines():
        line = raw_line.strip()
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if not line:
            continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block_comment = True
            continue
        if line.startswith("//") or line.startswith("#") or line.startswith("*"):
            continue
        yield raw_line

def count_loc(source: str) -> int:
    """Count effective lines of code in ``source``."""
    return sum(1 for _ in iter_lines_of_code(source))

"""A PHP lexer equivalent to ``token_get_all``.

phpSAFE's model construction (paper Section III.B) starts from the token
stream PHP's ``token_get_all`` produces.  This module reimplements that
scanner in Python: it understands inline HTML versus ``<?php`` regions,
single- and double-quoted strings with ``$var`` / ``{$expr}``
interpolation, heredoc/nowdoc, line and block comments, casts, and the
full PHP 5 operator set.

The public entry points are :func:`tokenize` (returns every token,
including whitespace and comments — mirroring ``token_get_all``) and
:func:`tokenize_significant` (comments and whitespace stripped, which is
what the analyzer consumes after the paper's "clean the AST" step).
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional

from ..incidents import Incident, IncidentSeverity, IncidentStage
from .errors import PhpLexError
from .tokens import CASTS, KEYWORDS, OPERATORS, TRIVIA, Token, TokenType

_IDENT_START = re.compile(r"[A-Za-z_\x80-\xff]")
_IDENT = re.compile(r"[A-Za-z0-9_\x80-\xff]*")
_HEX = re.compile(r"0[xX][0-9a-fA-F]+")
_BIN = re.compile(r"0[bB][01]+")
_FLOAT = re.compile(r"(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+")
_INT = re.compile(r"\d+")
_CAST = re.compile(r"\(\s*([A-Za-z]+)\s*\)")
_OPEN_TAG = re.compile(r"<\?(php\b|=)?", re.IGNORECASE)
_HEREDOC_START = re.compile(r"<<<[ \t]*(['\"]?)([A-Za-z_][A-Za-z0-9_]*)\1\r?\n")


class Lexer:
    """Streaming PHP scanner over a single source string.

    The scanner is a small state machine: it starts in HTML mode, enters
    PHP mode at ``<?php`` / ``<?=``, and within PHP mode pushes into
    string-interpolation sub-modes for double-quoted strings and heredocs.
    """

    def __init__(
        self, source: str, filename: str = "<string>", recover: bool = False
    ) -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.tokens: List[Token] = []
        #: with ``recover=True``, unterminated strings/heredocs are
        #: closed at EOF instead of raising, and each repair is recorded
        #: here as a recovered lex incident (paper Section V.E)
        self.recover = recover
        self.incidents: List[Incident] = []

    def _record_recovery(self, reason: str, line: int) -> None:
        self.incidents.append(
            Incident(
                stage=IncidentStage.LEX,
                severity=IncidentSeverity.WARNING,
                file=self.filename,
                reason=reason,
                recovered=True,
                line=line,
                end_line=self.line,
            )
        )

    # -- helpers ---------------------------------------------------------

    def _emit(self, type_: TokenType, value: str, line: Optional[int] = None) -> None:
        self.tokens.append(Token(type_, value, self.line if line is None else line))

    def _advance(self, text: str) -> None:
        """Consume ``text`` (already known to be at ``self.pos``)."""
        self.pos += len(text)
        self.line += text.count("\n")

    def _rest(self) -> str:
        return self.source[self.pos :]

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    # -- top level ---------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Scan the whole source and return the token list."""
        while self.pos < len(self.source):
            match = _OPEN_TAG.search(self.source, self.pos)
            if match is None:
                self._emit(TokenType.INLINE_HTML, self._rest())
                self._advance(self._rest())
                break
            if match.start() > self.pos:
                html = self.source[self.pos : match.start()]
                self._emit(TokenType.INLINE_HTML, html)
                self._advance(html)
            tag = match.group(0)
            if tag.lower() == "<?=":
                self._emit(TokenType.OPEN_TAG_WITH_ECHO, tag)
            else:
                self._emit(TokenType.OPEN_TAG, tag)
            self._advance(tag)
            self._lex_php()
        return self.tokens

    # -- PHP mode ----------------------------------------------------------

    def _lex_php(self) -> None:
        """Scan PHP code until ``?>`` or end of input."""
        while self.pos < len(self.source):
            char = self._peek()

            if self._rest().startswith("?>"):
                end = "?>\n" if self._peek(2) == "\n" else "?>"
                self._emit(TokenType.CLOSE_TAG, end)
                self._advance(end)
                return

            if char in " \t\r\n":
                match = re.match(r"[ \t\r\n]+", self._rest())
                assert match is not None
                self._emit(TokenType.WHITESPACE, match.group(0))
                self._advance(match.group(0))
                continue

            if self._rest().startswith("/*"):
                self._lex_block_comment()
                continue

            if self._rest().startswith("//") or char == "#":
                self._lex_line_comment()
                continue

            if char == "$" and _IDENT_START.match(self._peek(1) or ""):
                self._lex_variable()
                continue

            if char == "'":
                self._lex_single_quoted()
                continue

            if char == '"':
                self._lex_double_quoted()
                continue

            if char == "`":
                self._lex_backtick()
                continue

            if self._rest().startswith("<<<"):
                if self._lex_heredoc():
                    continue

            if char.isdigit() or (char == "." and self._peek(1).isdigit()):
                self._lex_number()
                continue

            if _IDENT_START.match(char):
                self._lex_identifier()
                continue

            if char == "(":
                cast = _CAST.match(self._rest())
                if cast is not None and cast.group(1).lower() in CASTS:
                    self._emit(CASTS[cast.group(1).lower()], cast.group(0))
                    self._advance(cast.group(0))
                    continue

            if char == "\\":
                self._emit(TokenType.NS_SEPARATOR, char)
                self._advance(char)
                continue

            operator = self._match_operator()
            if operator is not None:
                continue

            # bare one-character token ("code semantics" per the paper)
            self._emit(TokenType.CHAR, char)
            self._advance(char)

    def _match_operator(self) -> Optional[Token]:
        rest = self._rest()
        for spelling, type_ in OPERATORS:
            if rest.startswith(spelling):
                self._emit(type_, spelling)
                self._advance(spelling)
                return self.tokens[-1]
        return None

    # -- comments -----------------------------------------------------------

    def _lex_block_comment(self) -> None:
        end = self.source.find("*/", self.pos + 2)
        if end == -1:
            text = self._rest()
        else:
            text = self.source[self.pos : end + 2]
        type_ = (
            TokenType.DOC_COMMENT if text.startswith("/**") and len(text) > 4 else TokenType.COMMENT
        )
        self._emit(type_, text)
        self._advance(text)

    def _lex_line_comment(self) -> None:
        # a line comment ends at newline or at ?> (which stays in the stream)
        match = re.match(r"(?:#|//).*?(?=\?>|\n|$)", self._rest(), re.DOTALL)
        assert match is not None
        text = match.group(0)
        # note: ".*?" is greedy-enough here because comments cannot span lines
        newline_index = text.find("\n")
        if newline_index != -1:  # pragma: no cover - regex stops at newline
            text = text[:newline_index]
        self._emit(TokenType.COMMENT, text)
        self._advance(text)

    # -- simple tokens ------------------------------------------------------

    def _lex_variable(self) -> None:
        match = re.match(r"\$[A-Za-z_\x80-\xff][A-Za-z0-9_\x80-\xff]*", self._rest())
        assert match is not None
        self._emit(TokenType.VARIABLE, match.group(0))
        self._advance(match.group(0))

    def _lex_number(self) -> None:
        rest = self._rest()
        for pattern, type_ in (
            (_HEX, TokenType.LNUMBER),
            (_BIN, TokenType.LNUMBER),
            (_FLOAT, TokenType.DNUMBER),
            (_INT, TokenType.LNUMBER),
        ):
            match = pattern.match(rest)
            if match is not None:
                self._emit(type_, match.group(0))
                self._advance(match.group(0))
                return
        raise PhpLexError(f"cannot scan number at line {self.line}", self.filename, self.line)

    def _lex_identifier(self) -> None:
        start = _IDENT_START.match(self._peek())
        assert start is not None
        match = re.match(r"[A-Za-z_\x80-\xff][A-Za-z0-9_\x80-\xff]*", self._rest())
        assert match is not None
        word = match.group(0)
        type_ = KEYWORDS.get(word.lower(), TokenType.STRING)
        self._emit(type_, word)
        self._advance(word)

    # -- strings --------------------------------------------------------------

    def _lex_single_quoted(self) -> None:
        start_line = self.line
        index = self.pos + 1
        terminated = False
        while index < len(self.source):
            char = self.source[index]
            if char == "\\":
                index += 2
                continue
            if char == "'":
                terminated = True
                break
            index += 1
        if not terminated or index >= len(self.source):
            if not self.recover:
                raise PhpLexError(
                    "unterminated single-quoted string", self.filename, start_line
                )
            # panic-mode repair: close the string at EOF and keep going
            text = self._rest()
            self._emit(TokenType.CONSTANT_ENCAPSED_STRING, text + "'", start_line)
            self._advance(text)
            self._record_recovery("unterminated single-quoted string", start_line)
            return
        text = self.source[self.pos : index + 1]
        self._emit(TokenType.CONSTANT_ENCAPSED_STRING, text, start_line)
        self._advance(text)

    def _lex_backtick(self) -> None:
        """Shell-exec strings: lexed like double-quoted with ` delimiters."""
        self._emit(TokenType.CHAR, "`")
        self._advance("`")
        self._lex_interpolated_body(terminator="`")
        if self._peek() == "`":
            self._emit(TokenType.CHAR, "`")
            self._advance("`")

    def _lex_double_quoted(self) -> None:
        """Double-quoted string, constant or interpolated.

        PHP emits a plain ``T_CONSTANT_ENCAPSED_STRING`` when the string
        holds no interpolation; otherwise it emits ``"`` as a bare token
        followed by the encapsed parts.
        """
        start_line = self.line
        body, has_interpolation, terminated = self._scan_dq_body(self.pos + 1)
        if not terminated and not self.recover:
            raise PhpLexError(
                "unterminated double-quoted string", self.filename, start_line
            )
        if not has_interpolation:
            if not terminated:
                # panic-mode repair: close the string at EOF
                text = self._rest()
                self._emit(TokenType.CONSTANT_ENCAPSED_STRING, text + '"', start_line)
                self._advance(text)
                self._record_recovery("unterminated double-quoted string", start_line)
                return
            text = self.source[self.pos : self.pos + 1 + len(body) + 1]
            self._emit(TokenType.CONSTANT_ENCAPSED_STRING, text, start_line)
            self._advance(text)
            return
        self._emit(TokenType.CHAR, '"')
        self._advance('"')
        self._lex_interpolated_body(terminator='"')
        if self._peek() != '"':
            if not self.recover:
                raise PhpLexError(
                    "unterminated double-quoted string", self.filename, start_line
                )
            # panic-mode repair: synthesize the closing quote at EOF
            self._emit(TokenType.CHAR, '"')
            self._record_recovery("unterminated double-quoted string", start_line)
            return
        self._emit(TokenType.CHAR, '"')
        self._advance('"')

    def _scan_dq_body(self, start: int) -> tuple:
        """Scan ahead from ``start`` to the closing quote.

        Returns ``(raw body, has_interpolation, terminated)``; an
        unterminated string scans to EOF with ``terminated=False``.
        """
        index = start
        has_interpolation = False
        while index < len(self.source):
            char = self.source[index]
            if char == "\\":
                index += 2
                continue
            if char == '"':
                return self.source[start:index], has_interpolation, True
            if char == "$" and index + 1 < len(self.source):
                nxt = self.source[index + 1]
                if _IDENT_START.match(nxt) or nxt == "{":
                    has_interpolation = True
            if char == "{" and index + 1 < len(self.source) and self.source[index + 1] == "$":
                has_interpolation = True
            index += 1
        return self.source[start:], has_interpolation, False

    def _lex_interpolated_body(self, terminator: str, heredoc_label: str = "") -> None:
        """Scan the inside of an interpolated string.

        Emits ``T_ENCAPSED_AND_WHITESPACE`` for literal runs and the
        interpolation tokens PHP produces for ``$var``, ``$var[i]``,
        ``$var->prop`` (simple syntax) and ``{$expr}`` / ``${name}``
        (complex syntax).  Stops *before* the terminator.
        """
        literal_start = self.pos
        literal_line = self.line

        def flush() -> None:
            nonlocal literal_start, literal_line
            if self.pos > literal_start:
                text = self.source[literal_start:self.pos]
                self.tokens.append(
                    Token(TokenType.ENCAPSED_AND_WHITESPACE, text, literal_line)
                )
            literal_start = self.pos
            literal_line = self.line

        while self.pos < len(self.source):
            if heredoc_label:
                if self._at_heredoc_end(heredoc_label):
                    flush()
                    return
            elif self._peek() == terminator:
                flush()
                return

            char = self._peek()
            if char == "\\" and not heredoc_label:
                self.pos += 2
                continue
            if char == "\n":
                self.pos += 1
                self.line += 1
                continue
            if char == "$" and _IDENT_START.match(self._peek(1) or ""):
                flush()
                self._lex_variable()
                self._lex_simple_interp_suffix()
                literal_start = self.pos
                literal_line = self.line
                continue
            if char == "{" and self._peek(1) == "$":
                flush()
                self._emit(TokenType.CURLY_OPEN, "{")
                self._advance("{")
                self._lex_complex_interp()
                literal_start = self.pos
                literal_line = self.line
                continue
            if char == "$" and self._peek(1) == "{":
                flush()
                self._emit(TokenType.DOLLAR_OPEN_CURLY_BRACES, "${")
                self._advance("${")
                self._lex_complex_interp()
                literal_start = self.pos
                literal_line = self.line
                continue
            self.pos += 1
        flush()

    def _lex_simple_interp_suffix(self) -> None:
        """``$var[index]`` and ``$var->prop`` simple interpolation syntax."""
        if self._peek() == "[":
            self._emit(TokenType.CHAR, "[")
            self._advance("[")
            match = re.match(
                r"\$[A-Za-z_][A-Za-z0-9_]*|\d+|[A-Za-z_][A-Za-z0-9_]*", self._rest()
            )
            if match is not None:
                text = match.group(0)
                if text.startswith("$"):
                    self._emit(TokenType.VARIABLE, text)
                elif text.isdigit():
                    self._emit(TokenType.NUM_STRING, text)
                else:
                    self._emit(TokenType.STRING, text)
                self._advance(text)
            if self._peek() == "]":
                self._emit(TokenType.CHAR, "]")
                self._advance("]")
        elif self._rest().startswith("->") and _IDENT_START.match(self._peek(2) or ""):
            self._emit(TokenType.OBJECT_OPERATOR, "->")
            self._advance("->")
            match = re.match(r"[A-Za-z_][A-Za-z0-9_]*", self._rest())
            assert match is not None
            self._emit(TokenType.STRING, match.group(0))
            self._advance(match.group(0))

    def _lex_complex_interp(self) -> None:
        """Lex regular PHP tokens until the matching ``}``."""
        depth = 1
        while self.pos < len(self.source) and depth > 0:
            char = self._peek()
            if char == "{":
                depth += 1
                self._emit(TokenType.CHAR, "{")
                self._advance("{")
                continue
            if char == "}":
                depth -= 1
                self._emit(TokenType.CHAR, "}")
                self._advance("}")
                continue
            before = self.pos
            self._lex_php_single()
            if self.pos == before:  # safety against infinite loops
                raise PhpLexError(
                    "stuck while lexing string interpolation", self.filename, self.line
                )

    def _lex_php_single(self) -> None:
        """Lex exactly one PHP-mode token (used inside ``{$...}``)."""
        char = self._peek()
        if char in " \t\r\n":
            match = re.match(r"[ \t\r\n]+", self._rest())
            assert match is not None
            self._emit(TokenType.WHITESPACE, match.group(0))
            self._advance(match.group(0))
        elif char == "$" and _IDENT_START.match(self._peek(1) or ""):
            self._lex_variable()
        elif char == "'":
            self._lex_single_quoted()
        elif char == '"':
            self._lex_double_quoted()
        elif char.isdigit():
            self._lex_number()
        elif _IDENT_START.match(char):
            self._lex_identifier()
        elif self._match_operator() is not None:
            pass
        else:
            self._emit(TokenType.CHAR, char)
            self._advance(char)

    # -- heredoc ---------------------------------------------------------------

    def _at_heredoc_end(self, label: str) -> bool:
        """True when the current line starts the heredoc terminator."""
        if self.pos != 0 and self.source[self.pos - 1] != "\n":
            return False
        match = re.match(rf"[ \t]*{re.escape(label)}(?![A-Za-z0-9_])", self._rest())
        return match is not None

    def _lex_heredoc(self) -> bool:
        match = _HEREDOC_START.match(self._rest())
        if match is None:
            return False
        opener = match.group(0)
        quote = match.group(1)
        label = match.group(2)
        start_line = self.line
        self._emit(TokenType.START_HEREDOC, opener.rstrip("\r\n"), start_line)
        self._advance(opener)
        if quote == "'":
            # nowdoc: no interpolation, scan straight to the terminator
            literal_start = self.pos
            literal_line = self.line
            while self.pos < len(self.source) and not self._at_heredoc_end(label):
                if self._peek() == "\n":
                    self.line += 1
                self.pos += 1
            if self.pos > literal_start:
                self.tokens.append(
                    Token(
                        TokenType.ENCAPSED_AND_WHITESPACE,
                        self.source[literal_start:self.pos],
                        literal_line,
                    )
                )
        else:
            self._lex_interpolated_body(terminator="", heredoc_label=label)
        end = re.match(rf"[ \t]*{re.escape(label)}", self._rest())
        if end is None:
            if not self.recover:
                raise PhpLexError(
                    f"unterminated heredoc <<<{label}", self.filename, start_line
                )
            # panic-mode repair: close the heredoc at EOF
            self._emit(TokenType.END_HEREDOC, "")
            self._record_recovery(f"unterminated heredoc <<<{label}", start_line)
            return True
        self._emit(TokenType.END_HEREDOC, end.group(0))
        self._advance(end.group(0))
        return True


def tokenize(
    source: str, filename: str = "<string>", recover: bool = False
) -> List[Token]:
    """Tokenize PHP source, mirroring ``token_get_all`` output."""
    return Lexer(source, filename, recover=recover).tokenize()


def tokenize_significant(
    source: str, filename: str = "<string>", recover: bool = False
) -> List[Token]:
    """Tokenize and drop whitespace/comments (the paper's cleaning step)."""
    return [
        token
        for token in tokenize(source, filename, recover=recover)
        if token.type not in TRIVIA
    ]


def iter_lines_of_code(source: str) -> Iterator[str]:
    """Yield non-blank, non-comment-only physical lines (LOC counting).

    Table III of the paper reports per-KLOC analysis cost; this helper
    provides the LOC measure used by the evaluation harness.
    """
    in_block_comment = False
    for raw_line in source.splitlines():
        line = raw_line.strip()
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        if not line:
            continue
        if line.startswith("/*"):
            if "*/" not in line:
                in_block_comment = True
            continue
        if line.startswith("//") or line.startswith("#") or line.startswith("*"):
            continue
        yield raw_line


def count_loc(source: str) -> int:
    """Count effective lines of code in ``source``."""
    return sum(1 for _ in iter_lines_of_code(source))

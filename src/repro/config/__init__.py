"""Knowledge-base package: the paper's configuration stage as data.

Exports the vulnerability taxonomy, the entry dataclasses, and the
profile factories (``wordpress()`` is phpSAFE's default configuration).
"""

from .entries import (
    FilterSpec,
    KnownInstance,
    PropagationSpec,
    RevertSpec,
    SinkSpec,
    SourceSpec,
)
from .profiles import (
    AnalyzerProfile,
    drupal,
    generic_php,
    joomla,
    pixy_2007,
    wordpress,
)
from .vulnerability import ALL_KINDS, TABLE2_ROWS, InputVector, VulnKind

__all__ = [
    "ALL_KINDS",
    "AnalyzerProfile",
    "FilterSpec",
    "InputVector",
    "KnownInstance",
    "PropagationSpec",
    "RevertSpec",
    "SinkSpec",
    "SourceSpec",
    "TABLE2_ROWS",
    "VulnKind",
    "drupal",
    "generic_php",
    "joomla",
    "pixy_2007",
    "wordpress",
]

"""Dataclasses for knowledge-base entries.

phpSAFE's configuration stage (paper Section III.A) loads four groups of
function data: *sources* (potentially malicious inputs), *filters*
(sanitization functions), *reverts* (functions undoing sanitization) and
*sinks* (sensitive output functions).  Entries describe either plain
functions, superglobal variables, or object methods (the OOP extension of
Section III.E — e.g. ``$wpdb->get_results``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from .vulnerability import ALL_KINDS, InputVector, VulnKind


@dataclass(frozen=True)
class SourceSpec:
    """A taint source: data an attacker may control.

    ``name`` is a function name (``file_get_contents``), a superglobal
    (``_GET``, stored without the ``$``), or a method name when
    ``class_name`` is set (``wpdb.get_results``).
    """

    name: str
    vector: InputVector
    kinds: FrozenSet[VulnKind] = ALL_KINDS
    class_name: Optional[str] = None
    is_superglobal: bool = False
    description: str = ""

    @property
    def qualified(self) -> str:
        if self.class_name:
            return f"{self.class_name}::{self.name}"
        return ("$" if self.is_superglobal else "") + self.name


@dataclass(frozen=True)
class FilterSpec:
    """A sanitizer: calling it untaints its argument for ``kinds``.

    ``returns_clean`` models filters whose *return value* is safe
    (``htmlentities($x)``); by-reference cleaning is not used by the
    knowledge base but kept for extensions.
    """

    name: str
    kinds: FrozenSet[VulnKind]
    class_name: Optional[str] = None
    description: str = ""

    @property
    def qualified(self) -> str:
        if self.class_name:
            return f"{self.class_name}::{self.name}"
        return self.name


@dataclass(frozen=True)
class RevertSpec:
    """A function that undoes sanitization (``stripslashes`` & co.).

    Its return value is considered tainted again for ``kinds`` whenever
    the argument ever carried taint, even if filtered meanwhile.
    """

    name: str
    kinds: FrozenSet[VulnKind] = ALL_KINDS
    description: str = ""


@dataclass(frozen=True)
class SinkSpec:
    """A sensitive output: tainted data reaching it is a vulnerability.

    ``kind`` is the vulnerability class this sink manifests (``echo`` is
    an XSS sink, ``mysql_query`` a SQLi sink).  ``tainted_args`` limits
    which argument positions are sensitive (``None`` = all).
    """

    name: str
    kind: VulnKind
    class_name: Optional[str] = None
    tainted_args: Optional[Tuple[int, ...]] = None
    description: str = ""

    @property
    def qualified(self) -> str:
        if self.class_name:
            return f"{self.class_name}::{self.name}"
        return self.name

    def arg_is_sensitive(self, index: int) -> bool:
        return self.tainted_args is None or index in self.tainted_args


@dataclass(frozen=True)
class PropagationSpec:
    """An ``ArgToReturn`` propagator (semgrep taint-mode taxonomy).

    Calling the function returns a value carrying the taint of the
    selected argument positions (``None`` = all), restricted to
    ``kinds``.  This is the declarative, kind-aware form of the
    engine's builtin passthrough list: rule packs use it for helpers
    like ``http_build_query`` that keep attacker data attacker-shaped
    for some kinds but neutralize it for others.
    """

    name: str
    kinds: FrozenSet[VulnKind] = ALL_KINDS
    arg_indices: Optional[Tuple[int, ...]] = None
    class_name: Optional[str] = None
    description: str = ""

    @property
    def qualified(self) -> str:
        if self.class_name:
            return f"{self.class_name}::{self.name}"
        return self.name

    def arg_is_propagated(self, index: int) -> bool:
        return self.arg_indices is None or index in self.arg_indices


@dataclass(frozen=True)
class KnownInstance:
    """A well-known global object instance, e.g. ``$wpdb`` of class
    ``wpdb``.  Lets the analyzer resolve ``$wpdb->get_results`` without
    seeing the instantiation (WordPress creates it in core code the
    plugin never includes)."""

    var_name: str
    class_name: str
    description: str = ""

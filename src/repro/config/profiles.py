"""Analyzer profiles: assembled knowledge bases (paper Section III.A).

A profile is the loaded form of phpSAFE's configuration stage — the
union of sources, filters, reverts and sinks a given tool consults while
analyzing code.  ``wordpress()`` is phpSAFE's out-of-the-box profile;
``generic_php()`` is what a CMS-unaware tool like RIPS effectively uses;
``pixy_2007()`` is the dated subset Pixy ships with.

Profiles are plain data: other CMSs (Drupal, Joomla — the paper's future
work) are supported by building a profile with their API entries, see
``examples/custom_cms_profile.py``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from .entries import FilterSpec, KnownInstance, RevertSpec, SinkSpec, SourceSpec
from .filters import GENERIC_FILTERS, GENERIC_REVERTS
from .sinks import GENERIC_SINKS
from .sources import GENERIC_SOURCES
from .vulnerability import VulnKind
from .wordpress import (
    WORDPRESS_FILTERS,
    WORDPRESS_INSTANCES,
    WORDPRESS_SINKS,
    WORDPRESS_SOURCES,
)


@dataclass
class AnalyzerProfile:
    """An assembled knowledge base consulted during analysis.

    Lookup dictionaries are precomputed at construction: plain functions
    and superglobals by name, methods by ``(class name, method name)``.
    """

    name: str
    sources: Tuple[SourceSpec, ...] = ()
    filters: Tuple[FilterSpec, ...] = ()
    reverts: Tuple[RevertSpec, ...] = ()
    sinks: Tuple[SinkSpec, ...] = ()
    instances: Tuple[KnownInstance, ...] = ()
    #: Pixy-era PHP: uninitialized globals are attacker-settable.
    register_globals: bool = False

    _function_sources: Dict[str, SourceSpec] = field(default_factory=dict, repr=False)
    _superglobal_sources: Dict[str, SourceSpec] = field(default_factory=dict, repr=False)
    _method_sources: Dict[Tuple[str, str], SourceSpec] = field(
        default_factory=dict, repr=False
    )
    _function_filters: Dict[str, FilterSpec] = field(default_factory=dict, repr=False)
    _method_filters: Dict[Tuple[str, str], FilterSpec] = field(
        default_factory=dict, repr=False
    )
    _reverts: Dict[str, RevertSpec] = field(default_factory=dict, repr=False)
    _function_sinks: Dict[str, SinkSpec] = field(default_factory=dict, repr=False)
    _method_sinks: Dict[Tuple[str, str], SinkSpec] = field(default_factory=dict, repr=False)
    _instances: Dict[str, KnownInstance] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for spec in self.sources:
            if spec.class_name:
                self._method_sources[(spec.class_name.lower(), spec.name.lower())] = spec
            elif spec.is_superglobal:
                self._superglobal_sources[spec.name] = spec
            else:
                self._function_sources[spec.name.lower()] = spec
        for spec in self.filters:
            if spec.class_name:
                self._method_filters[(spec.class_name.lower(), spec.name.lower())] = spec
            else:
                self._function_filters[spec.name.lower()] = spec
        for spec in self.reverts:
            self._reverts[spec.name.lower()] = spec
        for spec in self.sinks:
            if spec.class_name:
                self._method_sinks[(spec.class_name.lower(), spec.name.lower())] = spec
            else:
                self._function_sinks[spec.name.lower()] = spec
        for instance in self.instances:
            self._instances[instance.var_name] = instance

    # -- lookups ------------------------------------------------------------

    def superglobal_source(self, name: str) -> Optional[SourceSpec]:
        """Source spec for superglobal ``name`` (without ``$``)."""
        return self._superglobal_sources.get(name)

    def function_source(self, name: str) -> Optional[SourceSpec]:
        return self._function_sources.get(name.lower())

    def method_source(self, class_name: str, method: str) -> Optional[SourceSpec]:
        return self._method_sources.get((class_name.lower(), method.lower()))

    def function_filter(self, name: str) -> Optional[FilterSpec]:
        return self._function_filters.get(name.lower())

    def method_filter(self, class_name: str, method: str) -> Optional[FilterSpec]:
        return self._method_filters.get((class_name.lower(), method.lower()))

    def revert(self, name: str) -> Optional[RevertSpec]:
        return self._reverts.get(name.lower())

    def function_sink(self, name: str) -> Optional[SinkSpec]:
        return self._function_sinks.get(name.lower())

    def method_sink(self, class_name: str, method: str) -> Optional[SinkSpec]:
        return self._method_sinks.get((class_name.lower(), method.lower()))

    def known_instance(self, var_name: str) -> Optional[KnownInstance]:
        return self._instances.get(var_name)

    def fingerprint(self) -> str:
        """Stable digest of the knowledge base's semantics.

        Keys the persistent summary cache: two profiles that would drive
        the engine identically share a fingerprint, and any KB edit —
        adding a sink, changing a filter's kinds — produces a new one.
        Frozensets are sorted before hashing so the digest is stable
        across processes (``PYTHONHASHSEED``).
        """
        parts = [f"register_globals={int(self.register_globals)}"]
        for spec in self.sources:
            parts.append(
                "src|%s|%s|%s|%d"
                % (
                    spec.qualified,
                    spec.vector.value,
                    ",".join(sorted(kind.value for kind in spec.kinds)),
                    spec.is_superglobal,
                )
            )
        for spec in self.filters:
            parts.append(
                "flt|%s|%s"
                % (spec.qualified, ",".join(sorted(kind.value for kind in spec.kinds)))
            )
        for spec in self.reverts:
            parts.append(
                "rev|%s|%s"
                % (spec.name, ",".join(sorted(kind.value for kind in spec.kinds)))
            )
        for spec in self.sinks:
            args = "*" if spec.tainted_args is None else ",".join(
                str(index) for index in spec.tainted_args
            )
            parts.append("snk|%s|%s|%s" % (spec.qualified, spec.kind.value, args))
        for instance in self.instances:
            parts.append("ins|%s|%s" % (instance.var_name, instance.class_name))
        parts.sort()
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()[:16]

    # -- composition ------------------------------------------------------------

    def extended(
        self,
        name: str,
        sources: Iterable[SourceSpec] = (),
        filters: Iterable[FilterSpec] = (),
        reverts: Iterable[RevertSpec] = (),
        sinks: Iterable[SinkSpec] = (),
        instances: Iterable[KnownInstance] = (),
    ) -> "AnalyzerProfile":
        """A new profile with extra entries — how "data for other CMSs can
        be easily added to the configuration" (paper III.A)."""
        return AnalyzerProfile(
            name=name,
            sources=self.sources + tuple(sources),
            filters=self.filters + tuple(filters),
            reverts=self.reverts + tuple(reverts),
            sinks=self.sinks + tuple(sinks),
            instances=self.instances + tuple(instances),
            register_globals=self.register_globals,
        )


def generic_php(name: str = "generic-php") -> AnalyzerProfile:
    """Generic XSS/SQLi knowledge for plain PHP (RIPS-level configuration)."""
    return AnalyzerProfile(
        name=name,
        sources=GENERIC_SOURCES,
        filters=GENERIC_FILTERS,
        reverts=GENERIC_REVERTS,
        sinks=GENERIC_SINKS,
    )


def wordpress() -> AnalyzerProfile:
    """phpSAFE's out-of-the-box profile: generic PHP + WordPress API."""
    return generic_php("wordpress").extended(
        "wordpress",
        sources=WORDPRESS_SOURCES,
        filters=WORDPRESS_FILTERS,
        sinks=WORDPRESS_SINKS,
        instances=WORDPRESS_INSTANCES,
    )


def drupal() -> AnalyzerProfile:
    """Generic PHP + the Drupal module API (paper Section VI)."""
    from .drupal import (
        DRUPAL_FILTERS,
        DRUPAL_INSTANCES,
        DRUPAL_SINKS,
        DRUPAL_SOURCES,
    )

    return generic_php("drupal").extended(
        "drupal",
        sources=DRUPAL_SOURCES,
        filters=DRUPAL_FILTERS,
        sinks=DRUPAL_SINKS,
        instances=DRUPAL_INSTANCES,
    )


def joomla() -> AnalyzerProfile:
    """Generic PHP + the Joomla extension API (paper Section VI)."""
    from .joomla import (
        JOOMLA_FILTERS,
        JOOMLA_INSTANCES,
        JOOMLA_SINKS,
        JOOMLA_SOURCES,
    )

    return generic_php("joomla").extended(
        "joomla",
        sources=JOOMLA_SOURCES,
        filters=JOOMLA_FILTERS,
        sinks=JOOMLA_SINKS,
        instances=JOOMLA_INSTANCES,
    )


def pixy_2007() -> AnalyzerProfile:
    """The dated knowledge base of a tool unmaintained since 2007.

    No mysqli/filter_var era functions, no WordPress entries, and the
    ``register_globals`` source model that produced half of Pixy's
    findings in the paper's study.
    """
    old_filters = tuple(
        spec
        for spec in GENERIC_FILTERS
        if spec.name
        in {
            "intval",
            "floatval",
            "doubleval",
            "htmlentities",
            "htmlspecialchars",
            "strip_tags",
            "mysql_escape_string",
            "mysql_real_escape_string",
            "addslashes",
            "md5",
            "strlen",
            "count",
            "urlencode",
        }
    )
    old_sources = tuple(
        spec
        for spec in GENERIC_SOURCES
        if not spec.name.startswith("mysqli")
        and spec.name not in {"getallheaders", "parse_ini_file", "scandir", "glob"}
    )
    old_sinks = tuple(
        spec
        for spec in GENERIC_SINKS
        if not spec.name.startswith("mysqli")
        and not spec.name.startswith("pg_")
        and spec.kind in (VulnKind.XSS, VulnKind.SQLI)  # Pixy: XSS/SQLi only
    )
    return AnalyzerProfile(
        name="pixy-2007",
        sources=old_sources,
        filters=old_filters,
        reverts=tuple(spec for spec in GENERIC_REVERTS if spec.name == "stripslashes"),
        sinks=old_sinks,
        register_globals=True,
    )

"""Analyzer profiles: assembled knowledge bases (paper Section III.A).

A profile is the loaded form of phpSAFE's configuration stage — the
union of sources, filters, reverts and sinks a given tool consults while
analyzing code.  ``wordpress()`` is phpSAFE's out-of-the-box profile;
``generic_php()`` is what a CMS-unaware tool like RIPS effectively uses;
``pixy_2007()`` is the dated subset Pixy ships with.

Profiles are plain data: other CMSs (Drupal, Joomla — the paper's future
work) are supported by building a profile with their API entries, and
loadable rule packs (:mod:`repro.rules`) compile into the same shape.
A pack's identity (name, version, content hash) is recorded on the
profile and participates in :meth:`AnalyzerProfile.fingerprint`, so
every cache tier keyed on the fingerprint invalidates when pack content
changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from .entries import (
    FilterSpec,
    KnownInstance,
    PropagationSpec,
    RevertSpec,
    SinkSpec,
    SourceSpec,
)
from .filters import GENERIC_FILTERS, GENERIC_REVERTS
from .sinks import GENERIC_SINKS
from .sources import GENERIC_SOURCES
from .vulnerability import ALL_KINDS, VulnKind
from .wordpress import (
    WORDPRESS_FILTERS,
    WORDPRESS_INSTANCES,
    WORDPRESS_SINKS,
    WORDPRESS_SOURCES,
)

#: Pack identity: (pack name, version, content hash).
PackId = Tuple[str, str, str]

_NO_SINKS: Tuple[SinkSpec, ...] = ()


@dataclass
class AnalyzerProfile:
    """An assembled knowledge base consulted during analysis.

    Lookup dictionaries are precomputed at construction: plain functions
    and superglobals by name, methods by ``(class name, method name)``.
    A name may carry *several* sinks of different kinds (rule packs sink
    ``file_get_contents`` for both SSRF and path traversal), so sink
    lookups return tuples.
    """

    name: str
    sources: Tuple[SourceSpec, ...] = ()
    filters: Tuple[FilterSpec, ...] = ()
    reverts: Tuple[RevertSpec, ...] = ()
    sinks: Tuple[SinkSpec, ...] = ()
    propagation: Tuple[PropagationSpec, ...] = ()
    instances: Tuple[KnownInstance, ...] = ()
    #: Pixy-era PHP: uninitialized globals are attacker-settable.
    register_globals: bool = False
    #: Identities of the rule packs compiled into this profile; flows
    #: into :meth:`fingerprint` so pack edits invalidate every cache.
    packs: Tuple[PackId, ...] = ()

    _function_sources: Dict[str, SourceSpec] = field(default_factory=dict, repr=False)
    _superglobal_sources: Dict[str, SourceSpec] = field(default_factory=dict, repr=False)
    _method_sources: Dict[Tuple[str, str], SourceSpec] = field(
        default_factory=dict, repr=False
    )
    _function_filters: Dict[str, FilterSpec] = field(default_factory=dict, repr=False)
    _method_filters: Dict[Tuple[str, str], FilterSpec] = field(
        default_factory=dict, repr=False
    )
    _reverts: Dict[str, RevertSpec] = field(default_factory=dict, repr=False)
    _function_sinks: Dict[str, Tuple[SinkSpec, ...]] = field(
        default_factory=dict, repr=False
    )
    _method_sinks: Dict[Tuple[str, str], Tuple[SinkSpec, ...]] = field(
        default_factory=dict, repr=False
    )
    _function_propagation: Dict[str, PropagationSpec] = field(
        default_factory=dict, repr=False
    )
    _method_propagation: Dict[Tuple[str, str], PropagationSpec] = field(
        default_factory=dict, repr=False
    )
    _instances: Dict[str, KnownInstance] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for spec in self.sources:
            if spec.class_name:
                self._method_sources[(spec.class_name.lower(), spec.name.lower())] = spec
            elif spec.is_superglobal:
                self._superglobal_sources[spec.name] = spec
            else:
                self._function_sources[spec.name.lower()] = spec
        for spec in self.filters:
            if spec.class_name:
                self._method_filters[(spec.class_name.lower(), spec.name.lower())] = spec
            else:
                self._function_filters[spec.name.lower()] = spec
        for spec in self.reverts:
            self._reverts[spec.name.lower()] = spec
        for spec in self.sinks:
            if spec.class_name:
                key = (spec.class_name.lower(), spec.name.lower())
                self._method_sinks[key] = self._method_sinks.get(key, ()) + (spec,)
            else:
                fkey = spec.name.lower()
                self._function_sinks[fkey] = self._function_sinks.get(fkey, ()) + (spec,)
        for spec in self.propagation:
            if spec.class_name:
                self._method_propagation[
                    (spec.class_name.lower(), spec.name.lower())
                ] = spec
            else:
                self._function_propagation[spec.name.lower()] = spec
        for instance in self.instances:
            self._instances[instance.var_name] = instance

    # -- lookups ------------------------------------------------------------

    def superglobal_source(self, name: str) -> Optional[SourceSpec]:
        """Source spec for superglobal ``name`` (without ``$``)."""
        return self._superglobal_sources.get(name)

    def function_source(self, name: str) -> Optional[SourceSpec]:
        return self._function_sources.get(name.lower())

    def method_source(self, class_name: str, method: str) -> Optional[SourceSpec]:
        return self._method_sources.get((class_name.lower(), method.lower()))

    def function_filter(self, name: str) -> Optional[FilterSpec]:
        return self._function_filters.get(name.lower())

    def method_filter(self, class_name: str, method: str) -> Optional[FilterSpec]:
        return self._method_filters.get((class_name.lower(), method.lower()))

    def revert(self, name: str) -> Optional[RevertSpec]:
        return self._reverts.get(name.lower())

    def function_sink(self, name: str) -> Optional[SinkSpec]:
        """First sink registered for ``name`` (legacy single-sink view)."""
        specs = self._function_sinks.get(name.lower())
        return specs[0] if specs else None

    def function_sinks(self, name: str) -> Tuple[SinkSpec, ...]:
        """Every sink registered for ``name`` (possibly several kinds)."""
        return self._function_sinks.get(name.lower(), _NO_SINKS)

    def method_sink(self, class_name: str, method: str) -> Optional[SinkSpec]:
        specs = self._method_sinks.get((class_name.lower(), method.lower()))
        return specs[0] if specs else None

    def method_sinks(self, class_name: str, method: str) -> Tuple[SinkSpec, ...]:
        return self._method_sinks.get((class_name.lower(), method.lower()), _NO_SINKS)

    def function_propagation(self, name: str) -> Optional[PropagationSpec]:
        return self._function_propagation.get(name.lower())

    def method_propagation(
        self, class_name: str, method: str
    ) -> Optional[PropagationSpec]:
        return self._method_propagation.get((class_name.lower(), method.lower()))

    def known_instance(self, var_name: str) -> Optional[KnownInstance]:
        return self._instances.get(var_name)

    def kind_universe(self) -> frozenset:
        """Every kind this profile can reason about: the builtins plus
        any pack-introduced kind mentioned by a spec.

        Returns the ``ALL_KINDS`` object itself when no extra kinds are
        present: ``TaintState.from_label`` has an identity fast path on
        it, and pack-free profiles must keep hitting it.
        """
        kinds = set(ALL_KINDS)
        for src in self.sources:
            kinds.update(src.kinds)
        for flt in self.filters:
            kinds.update(flt.kinds)
        for rev in self.reverts:
            kinds.update(rev.kinds)
        for snk in self.sinks:
            kinds.add(snk.kind)
        for prp in self.propagation:
            kinds.update(prp.kinds)
        if len(kinds) == len(ALL_KINDS):
            return ALL_KINDS
        return frozenset(kinds)

    def sink_kinds(self) -> Tuple[VulnKind, ...]:
        """Kinds that can actually produce findings under this profile
        (a sink exists), in registry order — drives SARIF rule arrays."""
        present = {snk.kind for snk in self.sinks}
        return tuple(kind for kind in VulnKind.registered() if kind in present)

    def fingerprint(self) -> str:
        """Stable digest of the knowledge base's semantics.

        Keys the persistent summary cache: two profiles that would drive
        the engine identically share a fingerprint, and any KB edit —
        adding a sink, changing a filter's kinds, bumping a rule pack —
        produces a new one.  Frozensets are sorted before hashing so the
        digest is stable across processes (``PYTHONHASHSEED``).
        """
        parts = [f"register_globals={int(self.register_globals)}"]
        for spec in self.sources:
            parts.append(
                "src|%s|%s|%s|%d"
                % (
                    spec.qualified,
                    spec.vector.value,
                    ",".join(sorted(kind.value for kind in spec.kinds)),
                    spec.is_superglobal,
                )
            )
        for spec in self.filters:
            parts.append(
                "flt|%s|%s"
                % (spec.qualified, ",".join(sorted(kind.value for kind in spec.kinds)))
            )
        for spec in self.reverts:
            parts.append(
                "rev|%s|%s"
                % (spec.name, ",".join(sorted(kind.value for kind in spec.kinds)))
            )
        for spec in self.sinks:
            args = "*" if spec.tainted_args is None else ",".join(
                str(index) for index in spec.tainted_args
            )
            parts.append("snk|%s|%s|%s" % (spec.qualified, spec.kind.value, args))
        for spec in self.propagation:
            args = "*" if spec.arg_indices is None else ",".join(
                str(index) for index in spec.arg_indices
            )
            parts.append(
                "prp|%s|%s|%s"
                % (
                    spec.qualified,
                    ",".join(sorted(kind.value for kind in spec.kinds)),
                    args,
                )
            )
        for instance in self.instances:
            parts.append("ins|%s|%s" % (instance.var_name, instance.class_name))
        for pack_name, version, content_hash in self.packs:
            parts.append("pak|%s|%s|%s" % (pack_name, version, content_hash))
        parts.sort()
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()[:16]

    # -- composition ------------------------------------------------------------

    def extended(
        self,
        name: str,
        sources: Iterable[SourceSpec] = (),
        filters: Iterable[FilterSpec] = (),
        reverts: Iterable[RevertSpec] = (),
        sinks: Iterable[SinkSpec] = (),
        propagation: Iterable[PropagationSpec] = (),
        instances: Iterable[KnownInstance] = (),
        packs: Iterable[PackId] = (),
    ) -> "AnalyzerProfile":
        """A new profile with extra entries — how "data for other CMSs can
        be easily added to the configuration" (paper III.A)."""
        return AnalyzerProfile(
            name=name,
            sources=self.sources + tuple(sources),
            filters=self.filters + tuple(filters),
            reverts=self.reverts + tuple(reverts),
            sinks=self.sinks + tuple(sinks),
            propagation=self.propagation + tuple(propagation),
            instances=self.instances + tuple(instances),
            register_globals=self.register_globals,
            packs=self.packs + tuple(packs),
        )


def generic_php(name: str = "generic-php") -> AnalyzerProfile:
    """Generic XSS/SQLi knowledge for plain PHP (RIPS-level configuration)."""
    return AnalyzerProfile(
        name=name,
        sources=GENERIC_SOURCES,
        filters=GENERIC_FILTERS,
        reverts=GENERIC_REVERTS,
        sinks=GENERIC_SINKS,
    )


def wordpress() -> AnalyzerProfile:
    """phpSAFE's out-of-the-box profile: generic PHP + WordPress API."""
    return generic_php("wordpress").extended(
        "wordpress",
        sources=WORDPRESS_SOURCES,
        filters=WORDPRESS_FILTERS,
        sinks=WORDPRESS_SINKS,
        instances=WORDPRESS_INSTANCES,
    )


def drupal() -> AnalyzerProfile:
    """Generic PHP + the Drupal module API (paper Section VI)."""
    from .drupal import (
        DRUPAL_FILTERS,
        DRUPAL_INSTANCES,
        DRUPAL_SINKS,
        DRUPAL_SOURCES,
    )

    return generic_php("drupal").extended(
        "drupal",
        sources=DRUPAL_SOURCES,
        filters=DRUPAL_FILTERS,
        sinks=DRUPAL_SINKS,
        instances=DRUPAL_INSTANCES,
    )


def joomla() -> AnalyzerProfile:
    """Generic PHP + the Joomla extension API (paper Section VI)."""
    from .joomla import (
        JOOMLA_FILTERS,
        JOOMLA_INSTANCES,
        JOOMLA_SINKS,
        JOOMLA_SOURCES,
    )

    return generic_php("joomla").extended(
        "joomla",
        sources=JOOMLA_SOURCES,
        filters=JOOMLA_FILTERS,
        sinks=JOOMLA_SINKS,
        instances=JOOMLA_INSTANCES,
    )


def pixy_2007() -> AnalyzerProfile:
    """The dated knowledge base of a tool unmaintained since 2007.

    No mysqli/filter_var era functions, no WordPress entries, and the
    ``register_globals`` source model that produced half of Pixy's
    findings in the paper's study.
    """
    old_filters = tuple(
        spec
        for spec in GENERIC_FILTERS
        if spec.name
        in {
            "intval",
            "floatval",
            "doubleval",
            "htmlentities",
            "htmlspecialchars",
            "strip_tags",
            "mysql_escape_string",
            "mysql_real_escape_string",
            "addslashes",
            "md5",
            "strlen",
            "count",
            "urlencode",
        }
    )
    old_sources = tuple(
        spec
        for spec in GENERIC_SOURCES
        if not spec.name.startswith("mysqli")
        and spec.name not in {"getallheaders", "parse_ini_file", "scandir", "glob"}
    )
    old_sinks = tuple(
        spec
        for spec in GENERIC_SINKS
        if not spec.name.startswith("mysqli")
        and not spec.name.startswith("pg_")
        and spec.kind in (VulnKind.XSS, VulnKind.SQLI)  # Pixy: XSS/SQLi only
    )
    return AnalyzerProfile(
        name="pixy-2007",
        sources=old_sources,
        filters=old_filters,
        reverts=tuple(spec for spec in GENERIC_REVERTS if spec.name == "stripslashes"),
        sinks=old_sinks,
        register_globals=True,
    )

"""Drupal API knowledge (paper Section VI: "analysis of other CMS
applications like Drupal or Joomla").

Covers the Drupal 6/7-era procedural API that third-party modules used:
the ``db_*`` database layer (D6 unparameterized and D7 ``db_query``
with placeholder arrays), the ``check_plain``/``filter_xss`` output
escaping family, and the setting/state storage that other users can
write through the admin UI.
"""

from __future__ import annotations

from typing import Tuple

from .entries import FilterSpec, KnownInstance, SinkSpec, SourceSpec
from .vulnerability import ALL_KINDS, InputVector, VulnKind

_XSS = frozenset({VulnKind.XSS})
_SQLI = frozenset({VulnKind.SQLI})

DRUPAL_SOURCES: Tuple[SourceSpec, ...] = (
    # database reads: node/comment/user content is user-written
    SourceSpec("db_query", InputVector.DB),
    SourceSpec("db_fetch_object", InputVector.DB),
    SourceSpec("db_fetch_array", InputVector.DB),
    SourceSpec("db_result", InputVector.DB),
    SourceSpec("db_select", InputVector.DB),
    # settings/state storage: editable by semi-privileged users
    SourceSpec("variable_get", InputVector.DB),
    SourceSpec("config_get", InputVector.DB),
    # request helpers
    SourceSpec("drupal_get_query_parameters", InputVector.GET),
    SourceSpec("arg", InputVector.GET, description="path component"),
    SourceSpec("request_uri", InputVector.SERVER),
)

DRUPAL_FILTERS: Tuple[FilterSpec, ...] = (
    FilterSpec("check_plain", _XSS),
    FilterSpec("check_markup", _XSS),
    FilterSpec("check_url", _XSS),
    FilterSpec("filter_xss", _XSS),
    FilterSpec("filter_xss_admin", _XSS),
    FilterSpec("drupal_clean_css_identifier", ALL_KINDS),
    FilterSpec("db_escape_string", _SQLI),
    FilterSpec("db_escape_table", _SQLI),
    FilterSpec("db_escape_field", _SQLI),
)

DRUPAL_SINKS: Tuple[SinkSpec, ...] = (
    SinkSpec("db_query", VulnKind.SQLI, tainted_args=(0,)),
    SinkSpec("db_query_range", VulnKind.SQLI, tainted_args=(0,)),
    SinkSpec("drupal_set_message", VulnKind.XSS, tainted_args=(0,)),
    SinkSpec("drupal_set_title", VulnKind.XSS, tainted_args=(0,)),
    SinkSpec("form_set_error", VulnKind.XSS, tainted_args=(1,)),
)

DRUPAL_INSTANCES: Tuple[KnownInstance, ...] = (
    KnownInstance("user", "stdClass", "the global $user account object"),
)

"""WordPress-specific knowledge: the CMS awareness that distinguishes
phpSAFE from the generic tools (paper Sections III.A and III.E).

Covers the ``$wpdb`` database object (its read methods are DB-vector
sources, ``query`` is a SQLi sink, ``prepare`` a SQLi filter), the
``esc_*``/``sanitize_*`` output-escaping API, and WordPress input-ish
helpers.  "All OOP vulnerabilities we found are, indeed, related with
WordPress objects and method calls" — resolving these entries is what
lets phpSAFE find the vulnerabilities RIPS and Pixy miss.
"""

from __future__ import annotations

from typing import Tuple

from .entries import FilterSpec, KnownInstance, SinkSpec, SourceSpec
from .vulnerability import ALL_KINDS, InputVector, VulnKind

_XSS = frozenset({VulnKind.XSS})
_SQLI = frozenset({VulnKind.SQLI})

#: Global object instances WordPress core provides to every plugin.
WORDPRESS_INSTANCES: Tuple[KnownInstance, ...] = (
    KnownInstance("wpdb", "wpdb", "the WordPress database abstraction object"),
    KnownInstance("wp_query", "WP_Query", "the main query object"),
    KnownInstance("post", "WP_Post", "the current post object"),
    KnownInstance("current_user", "WP_User", "the logged-in user"),
)

#: ``$wpdb`` read methods and other WP functions returning external data.
WORDPRESS_SOURCES: Tuple[SourceSpec, ...] = (
    SourceSpec("get_results", InputVector.DB, class_name="wpdb"),
    SourceSpec("get_var", InputVector.DB, class_name="wpdb"),
    SourceSpec("get_row", InputVector.DB, class_name="wpdb"),
    SourceSpec("get_col", InputVector.DB, class_name="wpdb"),
    SourceSpec("query", InputVector.DB, class_name="wpdb"),
    # option/meta storage: any user with some capability can write these
    SourceSpec("get_option", InputVector.DB),
    SourceSpec("get_post_meta", InputVector.DB),
    SourceSpec("get_user_meta", InputVector.DB),
    SourceSpec("get_comment_meta", InputVector.DB),
    SourceSpec("get_term_meta", InputVector.DB),
    SourceSpec("get_query_var", InputVector.GET),
    SourceSpec("get_search_query", InputVector.GET, kinds=_XSS),
    SourceSpec("wp_remote_retrieve_body", InputVector.FILE),
)

#: WordPress escaping / sanitization API.
WORDPRESS_FILTERS: Tuple[FilterSpec, ...] = (
    FilterSpec("esc_html", _XSS),
    FilterSpec("esc_attr", _XSS),
    FilterSpec("esc_js", _XSS),
    FilterSpec("esc_textarea", _XSS),
    FilterSpec("esc_url", _XSS),
    FilterSpec("esc_url_raw", _XSS),
    FilterSpec("tag_escape", _XSS),
    FilterSpec("sanitize_text_field", ALL_KINDS),
    FilterSpec("sanitize_key", ALL_KINDS),
    FilterSpec("sanitize_title", ALL_KINDS),
    FilterSpec("sanitize_file_name", ALL_KINDS),
    FilterSpec("sanitize_email", ALL_KINDS),
    FilterSpec("sanitize_html_class", ALL_KINDS),
    FilterSpec("sanitize_user", ALL_KINDS),
    FilterSpec("absint", ALL_KINDS),
    FilterSpec("wp_kses", _XSS),
    FilterSpec("wp_kses_post", _XSS),
    FilterSpec("wp_kses_data", _XSS),
    FilterSpec("esc_sql", _SQLI),
    FilterSpec("like_escape", _SQLI),
    FilterSpec("prepare", _SQLI, class_name="wpdb",
               description="parameterized query builder"),
    FilterSpec("escape", _SQLI, class_name="wpdb"),
)

#: WordPress output sinks ($wpdb->query for SQLi; template echo helpers).
WORDPRESS_SINKS: Tuple[SinkSpec, ...] = (
    SinkSpec("query", VulnKind.SQLI, class_name="wpdb", tainted_args=(0,)),
    SinkSpec("get_results", VulnKind.SQLI, class_name="wpdb", tainted_args=(0,)),
    SinkSpec("get_var", VulnKind.SQLI, class_name="wpdb", tainted_args=(0,)),
    SinkSpec("get_row", VulnKind.SQLI, class_name="wpdb", tainted_args=(0,)),
    SinkSpec("get_col", VulnKind.SQLI, class_name="wpdb", tainted_args=(0,)),
    SinkSpec("_e", VulnKind.XSS, tainted_args=(0,),
             description="echoes a translated string"),
    SinkSpec("the_content", VulnKind.XSS),
    SinkSpec("comment_text", VulnKind.XSS),
)

"""Generic sensitive output functions (``class-vulnerable_output.php``).

Each entry "is specific to a given vulnerability type" (paper III.A):
``echo`` manifests XSS, ``mysql_query`` manifests SQLi.  ``echo``,
``print`` and ``<?= ?>`` are language constructs handled by dedicated AST
nodes, but they are kept here too so tools that enumerate the knowledge
base (and the documentation generator) see the full sink set.
"""

from __future__ import annotations

from typing import Tuple

from .entries import SinkSpec
from .vulnerability import VulnKind

XSS_SINKS: Tuple[SinkSpec, ...] = (
    SinkSpec("echo", VulnKind.XSS, description="language construct"),
    SinkSpec("print", VulnKind.XSS, description="language construct"),
    SinkSpec("printf", VulnKind.XSS),
    SinkSpec("vprintf", VulnKind.XSS),
    SinkSpec("print_r", VulnKind.XSS, tainted_args=(0,)),
    SinkSpec("var_dump", VulnKind.XSS),
    SinkSpec("exit", VulnKind.XSS, description="die($msg) echoes its argument"),
    SinkSpec("trigger_error", VulnKind.XSS, tainted_args=(0,)),
)

SQLI_SINKS: Tuple[SinkSpec, ...] = (
    SinkSpec("mysql_query", VulnKind.SQLI, tainted_args=(0,)),
    SinkSpec("mysql_db_query", VulnKind.SQLI, tainted_args=(1,)),
    SinkSpec("mysql_unbuffered_query", VulnKind.SQLI, tainted_args=(0,)),
    SinkSpec("mysqli_query", VulnKind.SQLI, tainted_args=(1,)),
    SinkSpec("mysqli_multi_query", VulnKind.SQLI, tainted_args=(1,)),
    SinkSpec("mysqli_real_query", VulnKind.SQLI, tainted_args=(1,)),
    SinkSpec("pg_query", VulnKind.SQLI),
    SinkSpec("pg_send_query", VulnKind.SQLI),
    SinkSpec("sqlite_query", VulnKind.SQLI),
    SinkSpec("sqlite_exec", VulnKind.SQLI),
)

#: OS command execution: extension coverage (VulnKind.CMDI).  The
#: backtick operator is a language construct handled by the engine.
CMDI_SINKS: Tuple[SinkSpec, ...] = (
    SinkSpec("system", VulnKind.CMDI, tainted_args=(0,)),
    SinkSpec("exec", VulnKind.CMDI, tainted_args=(0,)),
    SinkSpec("passthru", VulnKind.CMDI, tainted_args=(0,)),
    SinkSpec("shell_exec", VulnKind.CMDI, tainted_args=(0,)),
    SinkSpec("popen", VulnKind.CMDI, tainted_args=(0,)),
    SinkSpec("proc_open", VulnKind.CMDI, tainted_args=(0,)),
    SinkSpec("pcntl_exec", VulnKind.CMDI, tainted_args=(0,)),
)

#: File inclusion: ``include``/``require`` are language constructs the
#: engine checks directly; these are the function-call forms.
LFI_SINKS: Tuple[SinkSpec, ...] = (
    SinkSpec("virtual", VulnKind.LFI, tainted_args=(0,)),
    SinkSpec("set_include_path", VulnKind.LFI, tainted_args=(0,)),
)

GENERIC_SINKS: Tuple[SinkSpec, ...] = XSS_SINKS + SQLI_SINKS + CMDI_SINKS + LFI_SINKS

"""Generic PHP taint sources (the paper's ``class-vulnerable-input.php``).

Three families, mirroring Section III.A: PHP user-input superglobals,
file-input functions, and database-read functions.  WordPress-specific
sources live in :mod:`repro.config.wordpress`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .entries import SourceSpec
from .vulnerability import InputVector

#: PHP superglobals an attacker controls directly.
SUPERGLOBAL_SOURCES: Tuple[SourceSpec, ...] = (
    SourceSpec("_GET", InputVector.GET, is_superglobal=True,
               description="URL query parameters"),
    SourceSpec("_POST", InputVector.POST, is_superglobal=True,
               description="HTTP request body fields"),
    SourceSpec("_COOKIE", InputVector.COOKIE, is_superglobal=True,
               description="HTTP cookies"),
    SourceSpec("_REQUEST", InputVector.REQUEST, is_superglobal=True,
               description="merged GET/POST/COOKIE"),
    SourceSpec("_SERVER", InputVector.SERVER, is_superglobal=True,
               description="server/request metadata (partially attacker-set)"),
    SourceSpec("_FILES", InputVector.FILES, is_superglobal=True,
               description="uploaded file metadata"),
    SourceSpec("HTTP_RAW_POST_DATA", InputVector.POST, is_superglobal=True,
               description="raw request body (deprecated)"),
)

#: File-reading functions: tier-3 vectors (paper Section V.C type 3).
FILE_SOURCES: Tuple[SourceSpec, ...] = (
    SourceSpec("file_get_contents", InputVector.FILE),
    SourceSpec("file", InputVector.FILE),
    SourceSpec("fgets", InputVector.FILE),
    SourceSpec("fgetss", InputVector.FILE),
    SourceSpec("fread", InputVector.FILE),
    SourceSpec("fgetc", InputVector.FILE),
    SourceSpec("readfile", InputVector.FILE),
    SourceSpec("fscanf", InputVector.FILE),
    SourceSpec("parse_ini_file", InputVector.FILE),
    SourceSpec("glob", InputVector.FILE),
    SourceSpec("scandir", InputVector.FILE),
    SourceSpec("readdir", InputVector.FILE),
)

#: Database-read functions: the dominant tier-2 vector (62% in Table II).
DB_SOURCES: Tuple[SourceSpec, ...] = (
    SourceSpec("mysql_query", InputVector.DB),
    SourceSpec("mysql_fetch_array", InputVector.DB),
    SourceSpec("mysql_fetch_assoc", InputVector.DB),
    SourceSpec("mysql_fetch_row", InputVector.DB),
    SourceSpec("mysql_fetch_object", InputVector.DB),
    SourceSpec("mysql_fetch_field", InputVector.DB),
    SourceSpec("mysql_result", InputVector.DB),
    SourceSpec("mysqli_query", InputVector.DB),
    SourceSpec("mysqli_fetch_array", InputVector.DB),
    SourceSpec("mysqli_fetch_assoc", InputVector.DB),
    SourceSpec("mysqli_fetch_row", InputVector.DB),
    SourceSpec("mysqli_fetch_object", InputVector.DB),
    SourceSpec("pg_fetch_array", InputVector.DB),
    SourceSpec("pg_fetch_assoc", InputVector.DB),
    SourceSpec("pg_fetch_row", InputVector.DB),
    SourceSpec("sqlite_fetch_array", InputVector.DB),
)

#: Other functions whose return may carry attacker data.
MISC_SOURCES: Tuple[SourceSpec, ...] = (
    SourceSpec("getenv", InputVector.SERVER),
    SourceSpec("apache_request_headers", InputVector.SERVER),
    SourceSpec("getallheaders", InputVector.SERVER),
)

GENERIC_SOURCES: Tuple[SourceSpec, ...] = (
    SUPERGLOBAL_SOURCES + FILE_SOURCES + DB_SOURCES + MISC_SOURCES
)


def source_index(specs: Tuple[SourceSpec, ...]) -> Dict[str, SourceSpec]:
    """Index plain-function and superglobal sources by name."""
    return {spec.name: spec for spec in specs if spec.class_name is None}

"""Joomla API knowledge (paper Section VI future work).

Joomla extensions are fully OOP: input arrives through the ``JRequest``
static facade (1.5/2.5 era) or ``JInput``, the database is the
``JDatabase`` object obtained from the factory, and escaping goes
through ``JDatabase::quote``/``escape`` and ``htmlspecialchars``.
The entries below give phpSAFE the same out-of-the-box awareness for
Joomla components that the WordPress profile provides for plugins.
"""

from __future__ import annotations

from typing import Tuple

from .entries import FilterSpec, KnownInstance, SinkSpec, SourceSpec
from .vulnerability import ALL_KINDS, InputVector, VulnKind

_XSS = frozenset({VulnKind.XSS})
_SQLI = frozenset({VulnKind.SQLI})

JOOMLA_SOURCES: Tuple[SourceSpec, ...] = (
    # JRequest static facade: attacker-controlled request data
    SourceSpec("getVar", InputVector.REQUEST, class_name="JRequest"),
    SourceSpec("getString", InputVector.REQUEST, class_name="JRequest"),
    SourceSpec("getWord", InputVector.REQUEST, class_name="JRequest"),
    SourceSpec("getCmd", InputVector.REQUEST, class_name="JRequest"),
    # JInput object (3.x)
    SourceSpec("get", InputVector.REQUEST, class_name="JInput"),
    SourceSpec("getString", InputVector.REQUEST, class_name="JInput"),
    # database reads
    SourceSpec("loadResult", InputVector.DB, class_name="JDatabase"),
    SourceSpec("loadObject", InputVector.DB, class_name="JDatabase"),
    SourceSpec("loadObjectList", InputVector.DB, class_name="JDatabase"),
    SourceSpec("loadAssoc", InputVector.DB, class_name="JDatabase"),
    SourceSpec("loadAssocList", InputVector.DB, class_name="JDatabase"),
    SourceSpec("loadColumn", InputVector.DB, class_name="JDatabase"),
)

JOOMLA_FILTERS: Tuple[FilterSpec, ...] = (
    # JRequest::getInt and friends coerce, neutralizing both classes
    FilterSpec("getInt", ALL_KINDS, class_name="JRequest"),
    FilterSpec("getFloat", ALL_KINDS, class_name="JRequest"),
    FilterSpec("getBool", ALL_KINDS, class_name="JRequest"),
    FilterSpec("getInt", ALL_KINDS, class_name="JInput"),
    FilterSpec("quote", _SQLI, class_name="JDatabase"),
    FilterSpec("escape", _SQLI, class_name="JDatabase"),
    FilterSpec("quoteName", _SQLI, class_name="JDatabase"),
    FilterSpec("clean", _XSS, class_name="JFilterInput"),
)

JOOMLA_SINKS: Tuple[SinkSpec, ...] = (
    SinkSpec("setQuery", VulnKind.SQLI, class_name="JDatabase", tainted_args=(0,)),
    SinkSpec("execute", VulnKind.SQLI, class_name="JDatabase", tainted_args=(0,)),
    SinkSpec("enqueueMessage", VulnKind.XSS, class_name="JApplication",
             tainted_args=(0,)),
)

JOOMLA_INSTANCES: Tuple[KnownInstance, ...] = (
    KnownInstance("db", "JDatabase", "conventional name for the DB object"),
    KnownInstance("database", "JDatabase", "legacy 1.5 global"),
    KnownInstance("app", "JApplication", "the application object"),
    KnownInstance("input", "JInput", "the request input object"),
    KnownInstance("mainframe", "JApplication", "legacy 1.5 global"),
)

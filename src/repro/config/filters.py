"""Generic sanitizers and revert functions (``class-vulnerable-filter.php``).

A *filter* untaints its argument for the vulnerability kinds it protects
against; a *revert* (``stripslashes`` & co.) undoes such protection —
Section III.A of the paper calls these "the functions that revert those
protections, therefore allowing the attack".
"""

from __future__ import annotations

from typing import Tuple

from .entries import FilterSpec, RevertSpec
from .vulnerability import ALL_KINDS, VulnKind

_XSS = frozenset({VulnKind.XSS})
_SQLI = frozenset({VulnKind.SQLI})

#: Casting/numeric coercions neutralize both XSS and SQLi payloads.
NUMERIC_FILTERS: Tuple[FilterSpec, ...] = (
    FilterSpec("intval", ALL_KINDS, description="integer coercion"),
    FilterSpec("floatval", ALL_KINDS),
    FilterSpec("doubleval", ALL_KINDS),
    FilterSpec("boolval", ALL_KINDS),
    FilterSpec("abs", ALL_KINDS),
    FilterSpec("count", ALL_KINDS),
    FilterSpec("sizeof", ALL_KINDS),
    FilterSpec("strlen", ALL_KINDS),
    FilterSpec("md5", ALL_KINDS),
    FilterSpec("sha1", ALL_KINDS),
    FilterSpec("crc32", ALL_KINDS),
    FilterSpec("base64_encode", ALL_KINDS),
    FilterSpec("urlencode", ALL_KINDS),
    FilterSpec("rawurlencode", ALL_KINDS),
    FilterSpec("ctype_digit", ALL_KINDS),
    FilterSpec("ctype_alnum", ALL_KINDS),
)

#: HTML-context encoders: neutralize XSS, not SQLi.
XSS_FILTERS: Tuple[FilterSpec, ...] = (
    FilterSpec("htmlentities", _XSS, description="HTML entity encoding"),
    FilterSpec("htmlspecialchars", _XSS),
    FilterSpec("strip_tags", _XSS),
    FilterSpec("filter_var", _XSS, description="with FILTER_SANITIZE_*"),
    FilterSpec("json_encode", _XSS),
    FilterSpec("nl2br", frozenset()),  # NOT a sanitizer; listed to document it
)

#: SQL escaping: neutralizes SQLi, not XSS (the paper's "blended
#: attacks" observation — stored XSS passes through these untouched).
SQLI_FILTERS: Tuple[FilterSpec, ...] = (
    FilterSpec("mysql_escape_string", _SQLI),
    FilterSpec("mysql_real_escape_string", _SQLI),
    FilterSpec("mysqli_real_escape_string", _SQLI),
    FilterSpec("mysqli_escape_string", _SQLI),
    FilterSpec("addslashes", _SQLI),
    FilterSpec("pg_escape_string", _SQLI),
    FilterSpec("sqlite_escape_string", _SQLI),
)

_CMDI = frozenset({VulnKind.CMDI})
_LFI = frozenset({VulnKind.LFI})

#: Shell-argument escaping: neutralizes command injection only.
CMDI_FILTERS: Tuple[FilterSpec, ...] = (
    FilterSpec("escapeshellarg", _CMDI),
    FilterSpec("escapeshellcmd", _CMDI),
)

#: Path neutralization: ``basename`` strips traversal components.
LFI_FILTERS: Tuple[FilterSpec, ...] = (
    FilterSpec("basename", _LFI),
    FilterSpec("pathinfo", _LFI),
)

GENERIC_FILTERS: Tuple[FilterSpec, ...] = tuple(
    spec
    for spec in NUMERIC_FILTERS + XSS_FILTERS + SQLI_FILTERS + CMDI_FILTERS + LFI_FILTERS
    if spec.kinds
)

#: Functions that revert sanitization.
GENERIC_REVERTS: Tuple[RevertSpec, ...] = (
    RevertSpec("stripslashes", description="removes escaping backslashes"),
    RevertSpec("stripcslashes"),
    RevertSpec("html_entity_decode", frozenset({VulnKind.XSS})),
    RevertSpec("htmlspecialchars_decode", frozenset({VulnKind.XSS})),
    RevertSpec("urldecode"),
    RevertSpec("rawurldecode"),
    RevertSpec("base64_decode"),
)

"""Disk persistence for generated corpora and ground truth.

``phpsafe corpus`` materializes a corpus version to a directory tree;
this module is the reading half: load the plugins and the ground-truth
manifest back, so an evaluation can run against an on-disk corpus (or a
corpus modified by hand for what-if experiments) instead of the
in-memory generator output.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from ..config.vulnerability import InputVector, VulnKind
from ..plugin import Plugin
from .catalog import PLUGINS
from .generator import GeneratedCorpus
from .spec import GroundTruth, GroundTruthEntry, SeededSpec

MANIFEST_NAME = "ground-truth.json"


def save_corpus(corpus: GeneratedCorpus, root: str) -> str:
    """Write every plugin plus the manifest under ``root/<version>``."""
    version_dir = os.path.join(root, corpus.version)
    os.makedirs(version_dir, exist_ok=True)
    for plugin in corpus.plugins:
        plugin.write_to(version_dir)
    manifest = [
        {
            "spec_id": entry.spec.spec_id,
            "kind": entry.spec.kind.value,
            "vector": entry.spec.vector.value,
            "region": entry.spec.region,
            "carried": entry.spec.carried,
            "plugin": entry.plugin,
            "version": entry.version,
            "file": entry.file,
            "line": entry.line,
        }
        for entry in corpus.truth.entries
    ]
    manifest_path = os.path.join(version_dir, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump({"version": corpus.version, "entries": manifest}, handle, indent=1)
    return version_dir


def load_truth(version_dir: str) -> GroundTruth:
    """Load the ground-truth manifest of an on-disk corpus version."""
    manifest_path = os.path.join(version_dir, MANIFEST_NAME)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    truth = GroundTruth(version=raw["version"])
    for item in raw["entries"]:
        spec = SeededSpec(
            spec_id=item["spec_id"],
            kind=VulnKind(item["kind"]),
            vector=InputVector(item["vector"]),
            region=item["region"],
            carried=item["carried"],
        )
        truth.add(
            GroundTruthEntry(
                spec=spec,
                plugin=item["plugin"],
                version=item["version"],
                file=item["file"],
                line=item["line"],
            )
        )
    return truth


def load_corpus(version_dir: str) -> GeneratedCorpus:
    """Load a full corpus version (plugins + manifest) from disk."""
    truth = load_truth(version_dir)
    versions: Dict[str, str] = {
        entry.slug: (
            entry.version_2012 if truth.version == "2012" else entry.version_2014
        )
        for entry in PLUGINS
    }
    plugins: List[Plugin] = []
    for name in sorted(os.listdir(version_dir)):
        full = os.path.join(version_dir, name)
        if not os.path.isdir(full):
            continue
        # directories are written as "<slug>-<version>"
        slug = name
        for known in sorted(versions, key=len, reverse=True):
            if name == f"{known}-{versions[known]}" or name == known:
                slug = known
                break
        plugins.append(Plugin.load_from(full, name=slug, version=versions.get(slug, "")))
    return GeneratedCorpus(version=truth.version, plugins=plugins, truth=truth)

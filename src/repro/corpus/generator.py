"""Deterministic corpus generation.

``build_corpus("2012")`` / ``build_corpus("2014")`` materialize the
catalog's seeding plan into 35 in-memory plugins plus the ground-truth
manifest.  Generation is fully deterministic: no wall clock, no global
RNG — the same version and scale always produce byte-identical plugins,
so measured tool behaviour is reproducible run over run.

``scale`` multiplies only the *noise* volume (benign filler code and
padding files keep their count but shrink), never the seeded flows, so
Table I/II/Fig. 2 counts are scale-invariant while Table III (time per
KLOC) can be exercised at paper-size LOC with ``scale=1.0``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config.vulnerability import InputVector
from ..plugin import Plugin
from . import snippets
from .catalog import (
    FAILED_FILES_2012,
    FAILED_FILES_2014,
    FILE_COUNT,
    LOC_TARGET,
    OOP_VULN_PLUGINS_2012,
    OOP_VULN_PLUGINS_2014,
    PIXY_FAILURES,
    PLUGINS,
    PluginEntry,
    build_specs,
)
from .spec import GroundTruth, GroundTruthEntry, SeededSpec

#: Include-closure budget (bytes) the failed files must exceed; keep in
#: sync with :class:`repro.core.phpsafe.PhpSafeOptions.include_budget`.
PHPSAFE_INCLUDE_BUDGET = 120_000
_BIGLIB_COUNT = 4
_BIGLIB_BYTES = 48_000  # 4 x 48KB = 192KB closure > 120KB budget


class FileBuilder:
    """Accumulates one PHP file and tracks absolute sink lines."""

    def __init__(self, path: str, header: Optional[List[str]] = None) -> None:
        self.path = path
        self.lines: List[str] = ["<?php"]
        if header:
            self.lines.extend(header)

    def add(self, fragment: snippets.Fragment) -> Optional[int]:
        """Append a fragment; return the 1-based line of its sink."""
        sink_line: Optional[int] = None
        if fragment.sink_offset >= 0:
            sink_line = len(self.lines) + fragment.sink_offset + 1
        self.lines.extend(fragment.lines)
        self.lines.append("")
        return sink_line

    @property
    def line_count(self) -> int:
        return len(self.lines)

    def source(self) -> str:
        return "\n".join(self.lines).rstrip() + "\n"


@dataclass
class GeneratedCorpus:
    """One corpus version: plugins plus the expert's answer sheet."""

    version: str
    plugins: List[Plugin]
    truth: GroundTruth
    scale: float = 1.0

    @property
    def total_loc(self) -> int:
        return sum(plugin.loc for plugin in self.plugins)

    @property
    def total_files(self) -> int:
        return sum(plugin.file_count for plugin in self.plugins)

    def plugin(self, slug: str) -> Plugin:
        for plugin in self.plugins:
            if plugin.name == slug:
                return plugin
        raise KeyError(slug)


def _hash_pick(spec_id: str, pool: Tuple[str, ...]) -> str:
    """Deterministic, version-independent plugin choice for a spec."""
    return pool[zlib.crc32(spec_id.encode("ascii")) % len(pool)]


def _noise_text(seed: str, length: int) -> str:
    """Deterministic pseudo-random payload text (letters only)."""
    out = []
    state = zlib.crc32(seed.encode("ascii")) or 1
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    for _ in range(length):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(alphabet[state % 26])
    return "".join(out)


class _PluginBuilder:
    """Accumulates the files of one plugin during generation."""

    def __init__(self, entry: PluginEntry, version: str) -> None:
        self.entry = entry
        self.version = version
        self.files: Dict[str, FileBuilder] = {}
        self.hooks_specs = 0
        self.class_specs = 0

    @property
    def slug(self) -> str:
        return self.entry.slug

    @property
    def wp_version(self) -> str:
        return self.entry.version_2012 if self.version == "2012" else self.entry.version_2014

    def file(self, path: str, header: Optional[List[str]] = None) -> FileBuilder:
        builder = self.files.get(path)
        if builder is None:
            builder = FileBuilder(path, header)
            self.files[path] = builder
        return builder

    def main_file(self) -> FileBuilder:
        path = f"{self.slug}.php"
        if path not in self.files:
            header = [
                "/*",
                f"Plugin Name: {self.slug.replace('-', ' ').title()}",
                f"Version: {self.wp_version}",
                f"Description: Generated corpus plugin ({self.version} snapshot).",
                "*/",
                "",
            ]
            return self.file(path, header)
        return self.files[path]

    def hooks_file(self) -> FileBuilder:
        index = self.hooks_specs // 25 + 1
        self.hooks_specs += 1
        return self.file(f"includes/hooks-{index}.php")

    def class_file(self) -> FileBuilder:
        index = self.class_specs // 15 + 1
        self.class_specs += 1
        return self.file(f"includes/class-modules-{index}.php")

    def options_file(self) -> FileBuilder:
        return self.file("includes/options.php")

    def to_plugin(self) -> Plugin:
        plugin = Plugin(name=self.slug, version=self.wp_version)
        for path in sorted(self.files):
            plugin.add_file(path, self.files[path].source())
        return plugin


def _render_spec(spec: SeededSpec) -> snippets.Fragment:
    """Map a spec to its PHP fragment (region → template)."""
    region = spec.region
    if region in ("a", "d"):
        return snippets.direct_echo_main(spec.spec_id, spec.vector)
    if region == "b":
        if spec.vector is InputVector.FILE:
            return snippets.file_read_echo_uncalled(spec.spec_id)
        return snippets.direct_echo_uncalled(spec.spec_id, spec.vector)
    if region == "e_oop":
        if spec.vector is InputVector.DB:
            return snippets.wpdb_results_echo(spec.spec_id)
        return snippets.property_flow_class(spec.spec_id, spec.vector)
    if region == "e_wp":
        return snippets.wp_option_echo(spec.spec_id)
    if region == "e_sqli":
        return snippets.wpdb_query_sqli(spec.spec_id, spec.vector)
    if region == "f":
        if spec.vector is InputVector.DB:
            return snippets.db_read_echo_uncalled(spec.spec_id)
        return snippets.direct_echo_uncalled(spec.spec_id, spec.vector)
    if region == "g":
        return snippets.register_globals_echo(spec.spec_id)
    if region == "fp_shared":
        return snippets.fp_guarded_echo(spec.spec_id, spec.vector)
    if region == "fp_ps":
        return snippets.fp_wpdb_internal_table(spec.spec_id)
    if region == "fp_rips":
        return snippets.fp_esc_html_echo(spec.spec_id, spec.vector)
    if region == "fp_pixy":
        return snippets.fp_uninitialized_pixy(spec.spec_id)
    if region == "fp_sqli_ps":
        return snippets.fp_sqli_whitelist(spec.spec_id)
    if region == "fp_sqli_rips":
        return snippets.fp_sqli_absint_rips(spec.spec_id)
    raise ValueError(f"no template for region {region!r}")


def _spec_file(
    spec: SeededSpec,
    builders: Dict[str, _PluginBuilder],
    version: str,
    failed_file_of: Dict[str, Tuple[str, str]],
) -> Tuple[_PluginBuilder, FileBuilder]:
    """Decide which plugin and file a spec lands in (deterministic)."""
    all_slugs = tuple(entry.slug for entry in PLUGINS)
    oop_slugs = tuple(entry.slug for entry in PLUGINS if entry.is_oop)
    region = spec.region

    if spec.needs_failed_file:
        slug, path = failed_file_of[spec.spec_id]
        builder = builders[slug]
        return builder, builder.file(path)

    if region in ("e_oop", "e_sqli"):
        pool = OOP_VULN_PLUGINS_2014 if spec.carried else (
            OOP_VULN_PLUGINS_2012 if version == "2012" else OOP_VULN_PLUGINS_2014
        )
        builder = builders[_hash_pick(spec.spec_id, tuple(pool))]
        if region == "e_sqli":
            return builder, builder.main_file()
        return builder, builder.class_file()

    if region in ("fp_ps", "fp_sqli_ps"):
        builder = builders[_hash_pick(spec.spec_id, oop_slugs)]
        return builder, builder.main_file()

    if region in ("b", "fp_shared", "fp_rips", "fp_sqli_rips"):
        builder = builders[_hash_pick(spec.spec_id, all_slugs)]
        return builder, builder.hooks_file()

    if region == "e_wp":
        builder = builders[_hash_pick(spec.spec_id, all_slugs)]
        return builder, builder.options_file()

    # a, g, fp_pixy: plugin main file
    builder = builders[_hash_pick(spec.spec_id, all_slugs)]
    return builder, builder.main_file()


def _assign_failed_files(
    specs: List[SeededSpec], version: str
) -> Dict[str, Tuple[str, str]]:
    """Map every d/f spec to one of the version's phpSAFE-failed files.

    Carried f specs go to the file that exists in both versions (the
    first catalog entry) so inertia matching works; the rest round-robin.
    """
    files = FAILED_FILES_2012 if version == "2012" else FAILED_FILES_2014
    mapping: Dict[str, Tuple[str, str]] = {}
    cursor = 0
    for spec in specs:
        if not spec.needs_failed_file:
            continue
        if spec.carried:
            mapping[spec.spec_id] = files[0]
        else:
            mapping[spec.spec_id] = files[cursor % len(files)]
            cursor += 1
    return mapping


def _emit_failed_file_preamble(
    builders: Dict[str, _PluginBuilder], version: str
) -> None:
    """Create the oversized include closures that defeat phpSAFE.

    Each failed file requires several generated data libraries whose
    cumulative size exceeds the analysis budget (paper: those files "had
    many includes and required a lot of memory").
    """
    files = FAILED_FILES_2012 if version == "2012" else FAILED_FILES_2014
    for slug in {slug for slug, _path in files}:
        builder = builders[slug]
        per_function = 220  # payload characters per library function
        functions_needed = max(1, _BIGLIB_BYTES // (per_function + 60))
        for lib_index in range(1, _BIGLIB_COUNT + 1):
            lib = builder.file(f"lib/biglib-{lib_index}.php")
            for func_index in range(functions_needed):
                payload = _noise_text(
                    f"{slug}-{lib_index}-{func_index}", per_function
                )
                lib.add(
                    snippets.biglib_function(
                        f"{slug.replace('-', '_')}_{lib_index}", func_index, payload
                    )
                )
    for slug, path in files:
        builder = builders[slug]
        file_builder = builder.file(path)
        for lib_index in range(1, _BIGLIB_COUNT + 1):
            file_builder.lines.append(
                f"require_once(dirname(__FILE__) . '/../lib/biglib-{lib_index}.php');"
            )
        file_builder.lines.append("")


def _emit_pixy_robustness_files(
    builders: Dict[str, _PluginBuilder], version: str
) -> None:
    """Plant the PHP-5 constructs that break / warn the Pixy baseline."""
    fatal_count, warning_count = PIXY_FAILURES[version]
    slugs = [entry.slug for entry in PLUGINS]
    for index in range(fatal_count):
        slug = slugs[(index * 7 + 3) % len(slugs)]
        builder = builders[slug]
        compat = builder.file(f"includes/compat-{index + 1}.php")
        compat.add(snippets.pixy_fatal_block(f"{slug.replace('-', '_')}_{index}"))
        compat.add(snippets.noise_helper_function(f"pf_{index}_{slug.replace('-', '_')}"))
    for index in range(warning_count):
        slug = slugs[(index * 11 + 5) % len(slugs)]
        builder = builders[slug]
        compat = builder.file(f"includes/compat-flags-{index + 1}.php")
        compat.add(snippets.pixy_warning_block(f"{slug.replace('-', '_')}_{index}"))
        compat.add(snippets.noise_loop_block(f"pw_{index}_{slug.replace('-', '_')}"))


def _pad_to_targets(
    builders: Dict[str, _PluginBuilder], version: str, scale: float
) -> None:
    """Add noise files/lines to hit the file-count and LOC targets."""
    slugs = [entry.slug for entry in PLUGINS]
    current_files = sum(len(builder.files) for builder in builders.values())
    missing = FILE_COUNT[version] - current_files
    if missing < 0:
        raise AssertionError(
            f"catalog produced {current_files} files, above the "
            f"{FILE_COUNT[version]} target for {version}"
        )
    padding_files: List[FileBuilder] = []
    for index in range(missing):
        slug = slugs[index % len(slugs)]
        builder = builders[slug]
        part = builder.file(f"templates/part-{index // len(slugs) + 1}.php")
        padding_files.append(part)

    target_loc = int(LOC_TARGET[version] * scale)
    current_loc = sum(
        sum(1 for line in fb.lines if line.strip())
        for builder in builders.values()
        for fb in builder.files.values()
    )
    deficit = max(0, target_loc - current_loc)
    fillers = padding_files or [
        builder.main_file() for builder in builders.values()
    ]
    index = 0
    while deficit > 0:
        target = fillers[index % len(fillers)]
        uid = f"{version}_{index:05d}"
        choice = index % 3
        if choice == 0:
            fragment = snippets.noise_helper_function(uid)
        elif choice == 1:
            fragment = snippets.noise_loop_block(uid)
        else:
            fragment = snippets.noise_sanitized_echo(uid)
        deficit -= sum(1 for line in fragment.lines if line.strip())
        target.add(fragment)
        index += 1


def build_corpus(version: str, scale: float = 0.25) -> GeneratedCorpus:
    """Generate one corpus version with its ground truth.

    ``scale`` shrinks/expands noise LOC relative to the paper's corpus
    size (89,560 LOC for 2012, 180,801 for 2014 at ``scale=1.0``).
    """
    specs = build_specs(version)
    builders = {
        entry.slug: _PluginBuilder(entry, version) for entry in PLUGINS
    }
    for builder in builders.values():
        builder.main_file()  # every plugin has its main file

    failed_file_of = _assign_failed_files(specs, version)
    _emit_failed_file_preamble(builders, version)

    truth = GroundTruth(version=version)
    # main-flow specs in failed files (region d) must precede the
    # uncalled ones (region f) for realistic layout; sort is stable
    ordered = sorted(specs, key=lambda spec: (spec.region, spec.spec_id))
    for spec in ordered:
        builder, file_builder = _spec_file(spec, builders, version, failed_file_of)
        sink_line = file_builder.add(_render_spec(spec))
        assert sink_line is not None, spec.spec_id
        truth.add(
            GroundTruthEntry(
                spec=spec,
                plugin=builder.slug,
                version=version,
                file=file_builder.path,
                line=sink_line,
            )
        )

    _emit_pixy_robustness_files(builders, version)
    _pad_to_targets(builders, version, scale)

    plugins = [builders[entry.slug].to_plugin() for entry in PLUGINS]
    return GeneratedCorpus(version=version, plugins=plugins, truth=truth, scale=scale)


def build_both(scale: float = 0.25) -> Tuple[GeneratedCorpus, GeneratedCorpus]:
    """Generate the 2012 and 2014 corpora (the paper's full dataset)."""
    return build_corpus("2012", scale), build_corpus("2014", scale)

"""Million-LOC stress tiers: the scale ceiling of the reproduction.

The paper-shaped corpus (:mod:`repro.corpus.generator`) tops out around
67k LOC at scale 0.25 — enough for Table I–III fidelity, far short of
the ROADMAP's "fast as the hardware allows" claim.  This module
synthesizes multi-million-LOC plugin sets with the three pathological
shapes that stress a scanner's memory behaviour differently:

- **thousands of tiny plugins** — report-accumulation overhead
  dominates; per-plugin fixed costs are the bottleneck;
- **deep call/include chains** — one tainted value threaded through a
  ``chain_depth``-file function chain, forcing transitive summaries far
  past the inline include-execution depth limit;
- **single huge files** — individual FileModels of several MB each,
  exactly the entries an entry-bounded LRU mistakes for cheap.

Generation is deterministic and **lazy**: :func:`iter_stress_plugins`
yields one :class:`~repro.plugin.Plugin` at a time, so the streaming
scanner never holds a tier's corpus in memory (materializing the 1M-LOC
tier as a list is itself a memory bug).  A ``seed`` parameter perturbs
only the noise payloads — seeded vulnerable flows are seed-invariant,
so expected-finding counts hold for any seed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..plugin import Plugin
from . import snippets
from .generator import FileBuilder, _noise_text


@dataclass(frozen=True)
class StressTier:
    """One point on the scale axis: shape counts plus the RSS contract.

    ``streaming_rss_mb`` is the tier's memory ceiling for streaming
    mode — the bound the ``scale-smoke`` CI job asserts and
    ``BENCH_scale.json`` records.  It is a *contract*, not a
    measurement: streaming evaluation must hold peak RSS under it at
    this tier regardless of corpus size, which accumulating mode cannot
    promise.  The catalog pins the same 256 MB budget on every tier
    deliberately — flat memory across a 16x corpus-size range is the
    streaming claim, and the entry-bounded accumulating path breaks
    the shared budget once the corpus crosses a million LOC.
    """

    name: str
    #: tiny-plugin shape: many plugins, trivial size
    tiny_plugins: int
    tiny_loc: int
    #: chain shape: files per chain and LOC per chain file
    chain_plugins: int
    chain_depth: int
    chain_loc: int
    #: huge-file shape: one multi-thousand-LOC file per plugin
    huge_plugins: int
    huge_loc: int
    #: streaming-mode peak-RSS ceiling, in MB
    streaming_rss_mb: int

    @property
    def plugin_count(self) -> int:
        return self.tiny_plugins + self.chain_plugins + self.huge_plugins

    @property
    def target_loc(self) -> int:
        """Nominal tier size (generated LOC lands within a few % of it)."""
        return (
            self.tiny_plugins * self.tiny_loc
            + self.chain_plugins * self.chain_depth * self.chain_loc
            + self.huge_plugins * self.huge_loc
        )

    @property
    def expected_findings(self) -> int:
        """Seeded vulnerable flows the analyzer must report under
        :func:`stress_options`: one XSS per tiny plugin, two per chain
        plugin (the sink in the deepest step file plus the main file
        echoing the chain's tainted return), three per huge plugin
        (start / middle / end of the file)."""
        return self.tiny_plugins + 2 * self.chain_plugins + 3 * self.huge_plugins


#: The scale axis.  ``scale-smoke`` is CI-sized (~1 minute on one
#: core); ``scale-quarter`` matches the paper corpus's 0.25-scale LOC
#: volume in stress shapes; ``scale-1m`` crosses a million LOC.
TIERS: Dict[str, StressTier] = {
    tier.name: tier
    for tier in (
        StressTier(
            name="scale-smoke",
            tiny_plugins=220,
            tiny_loc=100,
            chain_plugins=4,
            chain_depth=32,
            chain_loc=50,
            huge_plugins=4,
            huge_loc=9000,
            streaming_rss_mb=256,
        ),
        StressTier(
            name="scale-quarter",
            tiny_plugins=800,
            tiny_loc=100,
            chain_plugins=8,
            chain_depth=48,
            chain_loc=50,
            huge_plugins=18,
            huge_loc=9000,
            streaming_rss_mb=256,
        ),
        StressTier(
            name="scale-1m",
            tiny_plugins=3000,
            tiny_loc=100,
            chain_plugins=16,
            chain_depth=64,
            chain_loc=50,
            huge_plugins=60,
            huge_loc=12000,
            streaming_rss_mb=256,
        ),
    )
}


def get_tier(name: str) -> StressTier:
    try:
        return TIERS[name]
    except KeyError:
        known = ", ".join(sorted(TIERS))
        raise KeyError(f"unknown stress tier {name!r} (known: {known})")


#: per-file analysis budget for stress scans, in source bytes — the
#: default 120KB budget reproduces the paper's memory-exhaustion
#: failures by *skipping* oversized closures, which would turn every
#: huge-file plugin into a coverage hole instead of a memory stressor
STRESS_INCLUDE_BUDGET = 4_000_000


def stress_options():
    """Analyzer options for stress-tier scans.

    Identical to the defaults except the per-file analysis budget is
    raised so multi-hundred-KB single files are analyzed rather than
    skipped.  Both evaluation modes of the parity/bench harnesses must
    use these options — the comparison is streaming-vs-accumulating,
    not budget-vs-budget.
    """
    from ..core.phpsafe import PhpSafeOptions

    return PhpSafeOptions(include_budget=STRESS_INCLUDE_BUDGET)


def _uid(tier: StressTier, seed: int, *parts: object) -> str:
    """Deterministic identifier fragment for generated code entities."""
    tag = "_".join(str(part) for part in parts)
    return f"{tier.name.replace('-', '_')}_{seed}_{tag}"


def _pad_file(builder: FileBuilder, target_loc: int, uid: str) -> None:
    """Append noise fragments until the file holds ``target_loc``
    effective lines (same nonblank-line accounting as the paper
    corpus's padding pass)."""
    current = sum(1 for line in builder.lines if line.strip())
    index = 0
    while current < target_loc:
        choice = index % 3
        noise_uid = f"{uid}_{index}"
        if choice == 0:
            fragment = snippets.noise_helper_function(noise_uid)
        elif choice == 1:
            fragment = snippets.noise_loop_block(noise_uid)
        else:
            fragment = snippets.noise_sanitized_echo(noise_uid)
        builder.add(fragment)
        current += sum(1 for line in fragment.lines if line.strip())
        index += 1


def _tiny_plugin(tier: StressTier, seed: int, index: int) -> Plugin:
    """~``tiny_loc`` lines, one seeded XSS, one file."""
    uid = _uid(tier, seed, "tiny", index)
    name = f"stress-tiny-{index:05d}"
    builder = FileBuilder(f"{name}.php")
    # seed-invariant vulnerable flow: uid excludes the seed on purpose
    builder.add(
        snippets.direct_echo_main(
            f"tiny_{tier.name.replace('-', '_')}_{index}", _vector(index)
        )
    )
    _pad_file(builder, tier.tiny_loc, uid)
    plugin = Plugin(name=name, version="1.0")
    plugin.add_file(builder.path, builder.source())
    return plugin


def _vector(index: int):
    from ..config.vulnerability import InputVector

    cycle = (InputVector.GET, InputVector.POST, InputVector.COOKIE)
    return cycle[index % len(cycle)]


def _chain_plugin(tier: StressTier, seed: int, index: int) -> Plugin:
    """A ``chain_depth``-file call chain carrying one tainted value.

    File ``k`` defines ``step_k`` which returns ``step_{k+1}``'s result;
    the deepest file echoes its argument.  The main file feeds
    ``$_GET`` into ``step_0``, so the single seeded finding requires a
    transitive summary across every file of the chain.  ``require_once``
    links between neighbours give the chain its pathological *include*
    shape too — deeper than the engine's inline include-execution limit,
    which cross-file function resolution must not depend on.
    """
    base = f"chain_{tier.name.replace('-', '_')}_{index}"
    name = f"stress-chain-{index:03d}"
    plugin = Plugin(name=name, version="1.0")

    main = FileBuilder(f"{name}.php")
    main.lines.extend(
        [
            "require_once(dirname(__FILE__) . '/steps/step-0.php');",
            f"echo step_{base}_0($_GET['payload_{base}']);",
            "",
        ]
    )
    _pad_file(main, tier.chain_loc, _uid(tier, seed, "chainmain", index))
    plugin.add_file(main.path, main.source())

    for depth in range(tier.chain_depth):
        step = FileBuilder(f"steps/step-{depth}.php")
        if depth + 1 < tier.chain_depth:
            step.lines.append(
                f"require_once(dirname(__FILE__) . '/step-{depth + 1}.php');"
            )
            step.lines.extend(
                [
                    f"function step_{base}_{depth}($value) {{",
                    f"    return step_{base}_{depth + 1}($value);",
                    "}",
                    "",
                ]
            )
        else:
            step.lines.extend(
                [
                    f"function step_{base}_{depth}($value) {{",
                    "    echo $value;",
                    "    return $value;",
                    "}",
                    "",
                ]
            )
        _pad_file(step, tier.chain_loc, _uid(tier, seed, "chain", index, depth))
        plugin.add_file(step.path, step.source())
    return plugin


def _huge_plugin(tier: StressTier, seed: int, index: int) -> Plugin:
    """One file of ``huge_loc`` lines: a FileModel several MB deep.

    Three seeded flows sit at the start, middle and end so a scanner
    that truncates or windows the file loses findings detectably.
    Byte-heavy string constants (via :func:`_noise_text`) push the
    source-size-to-LOC ratio up, the shape that breaks entry-bounded
    caches.
    """
    base = f"huge_{tier.name.replace('-', '_')}_{index}"
    name = f"stress-huge-{index:03d}"
    builder = FileBuilder(f"{name}.php")

    third = tier.huge_loc // 3
    for section in range(3):
        builder.add(snippets.direct_echo_main(f"{base}_s{section}", _vector(index + section)))
        section_target = third * (section + 1) if section < 2 else tier.huge_loc
        # byte-heavy padding: every 6th fragment is a fat string constant
        current = sum(1 for line in builder.lines if line.strip())
        fragment_index = 0
        while current < section_target:
            uid = _uid(tier, seed, "huge", index, section, fragment_index)
            if fragment_index % 6 == 0:
                payload = _noise_text(uid, 400)
                fragment = snippets.biglib_function(base, section * 100_000 + fragment_index, payload)
            elif fragment_index % 3 == 0:
                fragment = snippets.noise_loop_block(uid)
            else:
                fragment = snippets.noise_helper_function(uid)
            builder.add(fragment)
            current += sum(1 for line in fragment.lines if line.strip())
            fragment_index += 1

    plugin = Plugin(name=name, version="1.0")
    plugin.add_file(builder.path, builder.source())
    return plugin


def iter_stress_plugins(tier: StressTier, seed: int = 0) -> Iterator[Plugin]:
    """Lazily yield every plugin of ``tier``, in deterministic order.

    The iterator owns no state beyond the next index — consuming it
    plugin-by-plugin (the streaming scanner's pattern) keeps at most one
    generated plugin alive at a time.
    """
    for index in range(tier.tiny_plugins):
        yield _tiny_plugin(tier, seed, index)
    for index in range(tier.chain_plugins):
        yield _chain_plugin(tier, seed, index)
    for index in range(tier.huge_plugins):
        yield _huge_plugin(tier, seed, index)


def materialize(tier: StressTier, seed: int = 0) -> List[Plugin]:
    """Eagerly build the whole tier (accumulating-mode benchmarks and
    small-tier tests only — deliberately *not* what streaming uses)."""
    return list(iter_stress_plugins(tier, seed))


def tier_summary(tier: StressTier, seed: int = 0) -> Dict[str, int]:
    """Generated (not nominal) size of a tier: plugins/files/LOC.

    Walks the generator once; used by tests and ``bench scale`` to
    report true LOC/s denominators.
    """
    plugins = files = loc = 0
    for plugin in iter_stress_plugins(tier, seed):
        plugins += 1
        files += plugin.file_count
        loc += plugin.loc
    return {"plugins": plugins, "files": files, "loc": loc}

"""The 35-plugin catalog and the per-version seeding plan.

This module encodes, as data, the corpus calibration that makes the
generated plugins reproduce the *measured* distributions of the paper:

- Table I    — per-tool TP/FP counts per version and vulnerability kind,
- Fig. 2     — the Venn regions of per-tool detection overlap,
- Table II   — the input-vector taxonomy of the union of vulnerabilities,
- Section V.D — the carried-over (fix-inertia) subset,
- Section V.E — per-tool robustness failures.

Every seeded flow is a :class:`~repro.corpus.spec.SeededSpec` drawn from
the allocation tables below.  The arithmetic is checked by asserts at
import time: region totals must reproduce the paper's per-tool TP/FP
counts exactly (up to the paper's own internal ±1 inconsistencies,
documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..config.vulnerability import InputVector, VulnKind
from .spec import SeededSpec

# ---------------------------------------------------------------------------
# Plugin roster: 35 plugins, 19 developed with OOP (paper Section V.A).
# Names follow real WordPress plugin slug conventions; the four slugs the
# paper quotes examples from are included.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PluginEntry:
    """Static catalog data for one plugin."""

    slug: str
    is_oop: bool
    #: Relative share of the corpus noise LOC given to this plugin.
    weight: int = 2
    version_2012: str = "1.2"
    version_2014: str = "2.4"


PLUGINS: Tuple[PluginEntry, ...] = (
    PluginEntry("mail-subscribe-list", True, 3),
    PluginEntry("wp-symposium", True, 5),
    PluginEntry("wp-photo-album-plus", True, 5),
    PluginEntry("qtranslate", False, 4),
    PluginEntry("wp-bulk-manager", True, 4),
    PluginEntry("wp-media-suite", True, 4),
    PluginEntry("simple-contact-widget", False, 1),
    PluginEntry("event-calendar-pro", True, 4),
    PluginEntry("easy-gallery-lite", False, 2),
    PluginEntry("wp-forum-server", True, 5),
    PluginEntry("newsletter-meister", True, 3),
    PluginEntry("social-share-bar", False, 1),
    PluginEntry("custom-sidebar-blocks", False, 2),
    PluginEntry("wp-quick-poll", True, 2),
    PluginEntry("download-tracker", True, 3),
    PluginEntry("seo-meta-booster", False, 2),
    PluginEntry("members-directory", True, 4),
    PluginEntry("wp-shoutbox-live", True, 2),
    PluginEntry("ad-rotator-basic", False, 1),
    PluginEntry("booking-sheet", True, 3),
    PluginEntry("faq-accordion", False, 1),
    PluginEntry("wp-guestbook-classic", True, 2),
    PluginEntry("related-posts-thumbs", False, 2),
    PluginEntry("price-table-builder", True, 2),
    PluginEntry("wp-feedback-box", True, 2),
    PluginEntry("slider-revamp-lite", False, 2),
    PluginEntry("user-notes-field", False, 1),
    PluginEntry("wp-stats-dashboard", True, 3),
    PluginEntry("contact-form-mini", False, 2),
    PluginEntry("video-embed-plus", False, 2),
    PluginEntry("wp-link-directory", True, 3),
    PluginEntry("testimonials-rotator", True, 2),
    PluginEntry("backup-scheduler-lite", False, 2),
    PluginEntry("wp-audit-trail", False, 2),
    PluginEntry("coming-soon-page", False, 1),
)

assert len(PLUGINS) == 35
assert sum(1 for plugin in PLUGINS if plugin.is_oop) == 19

#: Plugins carrying OOP-mediated vulnerabilities (paper: 10 plugins in
#: the 2012 versions, 7 in 2014 — a subset as some were fixed).
OOP_VULN_PLUGINS_2012: Tuple[str, ...] = (
    "mail-subscribe-list", "wp-symposium", "wp-photo-album-plus",
    "wp-forum-server", "event-calendar-pro", "members-directory",
    "newsletter-meister", "download-tracker", "booking-sheet",
    "wp-link-directory",
)
OOP_VULN_PLUGINS_2014: Tuple[str, ...] = OOP_VULN_PLUGINS_2012[:7]

#: Plugins with files that exhaust phpSAFE's analysis budget.  2012: one
#: file; 2014: three files across two plugins (paper Section V.E).
FAILED_FILES_2012: Tuple[Tuple[str, str], ...] = (
    ("wp-bulk-manager", "admin/legacy-panel.php"),
)
FAILED_FILES_2014: Tuple[Tuple[str, str], ...] = (
    ("wp-bulk-manager", "admin/legacy-panel.php"),
    ("wp-bulk-manager", "admin/legacy-export.php"),
    ("wp-media-suite", "admin/legacy-import.php"),
)

#: Per-version file-count targets (paper Section V.E).
FILE_COUNT = {"2012": 266, "2014": 356}
#: Per-version LOC targets at scale=1.0 (paper Section V.E).
LOC_TARGET = {"2012": 89_560, "2014": 180_801}
#: Pixy robustness plan: (fatal files, warning files) per version —
#: 1 error message in 2012; 37 in 2014 (31 fatal + 6 warnings); 32
#: skipped files in total.
PIXY_FAILURES = {"2012": (1, 0), "2014": (31, 6)}

# ---------------------------------------------------------------------------
# Seeding plan: region -> {vector: count} per version.  The arithmetic
# reproduces Table I / Fig. 2 / Table II; see DESIGN.md Section 3.
# ---------------------------------------------------------------------------

Allocation = Dict[str, Dict[InputVector, int]]

ALLOCATION_2012: Allocation = {
    "a": {InputVector.GET: 10, InputVector.POST: 5},
    "b": {
        InputVector.FILE: 41,
        InputVector.GET: 12,
        InputVector.POST: 7,
        InputVector.COOKIE: 5,
    },
    "d": {InputVector.GET: 10},
    "e_oop": {InputVector.DB: 127, InputVector.COOKIE: 12, InputVector.GET: 4},
    "e_wp": {InputVector.DB: 84},
    "e_sqli": {InputVector.GET: 8},
    "f": {InputVector.GET: 27, InputVector.POST: 10, InputVector.COOKIE: 7},
    "g": {InputVector.GET: 25},
    "fp_shared": {InputVector.POST: 40},
    "fp_ps": {InputVector.DB: 23},
    "fp_rips": {InputVector.GET: 39},
    "fp_pixy": {InputVector.GET: 185},
    "fp_sqli_ps": {InputVector.GET: 2},
}

ALLOCATION_2014: Allocation = {
    "a": {InputVector.GET: 4, InputVector.POST: 2},
    "b": {
        InputVector.FILE: 11,
        InputVector.GET: 35,
        InputVector.POST: 30,
        InputVector.COOKIE: 35,
    },
    "d": {InputVector.GET: 2},
    "e_oop": {InputVector.DB: 150, InputVector.GET: 5, InputVector.COOKIE: 15},
    "e_wp": {InputVector.DB: 91},
    "e_sqli": {InputVector.GET: 9},
    "f": {
        InputVector.DB: 122,
        InputVector.GET: 45,
        InputVector.POST: 11,
        InputVector.COOKIE: 7,
    },
    "g": {InputVector.GET: 12},
    "fp_shared": {InputVector.POST: 35},
    "fp_ps": {InputVector.DB: 22},
    "fp_rips": {InputVector.GET: 12},
    "fp_pixy": {InputVector.GET: 197},
    "fp_sqli_ps": {InputVector.GET: 5},
    "fp_sqli_rips": {InputVector.GET: 1},
}

#: Carried-over vulnerabilities: region -> {vector: count} present in
#: BOTH versions (Table II's "Both versions" column; 232 in total).
CARRIED: Allocation = {
    "a": {InputVector.GET: 4, InputVector.POST: 2},
    "b": {
        InputVector.FILE: 4,
        InputVector.GET: 12,
        InputVector.POST: 7,
        InputVector.COOKIE: 5,
    },
    "e_oop": {InputVector.DB: 110, InputVector.COOKIE: 10},
    "e_wp": {InputVector.DB: 52},
    "f": {InputVector.GET: 10, InputVector.POST: 2, InputVector.COOKIE: 4},
    "g": {InputVector.GET: 10},
}

_SQLI_REGIONS = frozenset({"e_sqli", "fp_sqli_ps", "fp_sqli_rips"})


def _total(allocation: Allocation, regions) -> int:
    return sum(
        count
        for region, vectors in allocation.items()
        if region in regions
        for count in vectors.values()
    )


# calibration checks against the paper's Table I / Fig. 2 numbers
_VULN_REGIONS = ("a", "b", "d", "e_oop", "e_wp", "e_sqli", "f", "g")
assert _total(ALLOCATION_2012, _VULN_REGIONS) == 394  # distinct vulns 2012
assert _total(ALLOCATION_2014, _VULN_REGIONS) == 586  # distinct vulns 2014
assert _total(ALLOCATION_2012, ("a", "b", "e_oop", "e_wp", "e_sqli")) == 315
assert _total(ALLOCATION_2014, ("a", "b", "e_oop", "e_wp", "e_sqli")) == 387
assert _total(ALLOCATION_2012, ("a", "b", "d", "f")) == 134  # RIPS TP
assert _total(ALLOCATION_2014, ("a", "b", "d", "f")) == 304
assert _total(ALLOCATION_2012, ("a", "d", "g")) == 50  # Pixy TP
assert _total(ALLOCATION_2014, ("a", "d", "g")) == 20
assert _total(ALLOCATION_2012, ("e_oop", "e_sqli")) == 151  # OOP vulns
assert _total(ALLOCATION_2014, ("e_oop", "e_sqli")) == 179
assert _total(CARRIED, _VULN_REGIONS) == 232  # Table II "Both versions"
for _region, _vectors in CARRIED.items():
    for _vector, _count in _vectors.items():
        assert _count <= ALLOCATION_2012[_region].get(_vector, 0), (_region, _vector)
        assert _count <= ALLOCATION_2014[_region].get(_vector, 0), (_region, _vector)


def build_specs(version: str) -> List[SeededSpec]:
    """Materialize the allocation tables into a deterministic spec list.

    Carried specs get version-independent ids (``c-...``) so the inertia
    analysis (Section V.D) can match them across versions; the rest get
    version-prefixed ids.
    """
    if version not in ("2012", "2014"):
        raise ValueError(f"unknown corpus version: {version!r}")
    allocation = ALLOCATION_2012 if version == "2012" else ALLOCATION_2014
    specs: List[SeededSpec] = []
    for region in sorted(allocation):
        vectors = allocation[region]
        kind = VulnKind.SQLI if region in _SQLI_REGIONS else VulnKind.XSS
        for vector in sorted(vectors, key=lambda item: item.value):
            total = vectors[vector]
            carried = CARRIED.get(region, {}).get(vector, 0)
            for index in range(total):
                if index < carried:
                    spec_id = f"c-{region}-{vector.value.lower()}-{index:03d}"
                    is_carried = True
                else:
                    spec_id = f"v{version[2:]}-{region}-{vector.value.lower()}-{index:03d}"
                    is_carried = False
                specs.append(
                    SeededSpec(
                        spec_id=spec_id,
                        kind=kind,
                        vector=vector,
                        region=region,
                        carried=is_carried,
                    )
                )
    return specs


def plugin_by_slug(slug: str) -> PluginEntry:
    for plugin in PLUGINS:
        if plugin.slug == slug:
            return plugin
    raise KeyError(slug)

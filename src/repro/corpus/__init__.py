"""Synthetic plugin corpus: the stand-in for the paper's 35 WordPress
plugins (2012 and 2014 snapshots) with exact ground truth.

See DESIGN.md Section 2 for the substitution rationale and
:mod:`repro.corpus.catalog` for the calibration tables.
"""

from .catalog import PLUGINS, PluginEntry, build_specs
from .generator import GeneratedCorpus, build_both, build_corpus
from .loader import load_corpus, load_truth, save_corpus
from .spec import GroundTruth, GroundTruthEntry, SeededSpec

__all__ = [
    "PLUGINS",
    "GeneratedCorpus",
    "GroundTruth",
    "GroundTruthEntry",
    "PluginEntry",
    "SeededSpec",
    "build_both",
    "build_corpus",
    "build_specs",
    "load_corpus",
    "load_truth",
    "save_corpus",
]
